//! Secure two-party query evaluation over the paper's circuits
//! (Sec. 1, "Secure multi-party query evaluation").
//!
//! GMW-style protocol over XOR secret shares: each bit of the (lowered)
//! query circuit's input is split into two shares whose XOR is the true
//! value. XOR and NOT gates are evaluated locally; each AND gate consumes
//! one precomputed *Beaver multiplication triple* and one round of share
//! exchange. The protocol transcript each party sees is independent of
//! the other party's data — which is exactly why the paper insists on
//! circuits: the circuit *is* the oblivious algorithm, and its
//!
//! * **size** (AND count) drives communication and computation,
//! * **depth** (AND depth) drives round complexity.
//!
//! The dealer generating triples is simulated in-process (the standard
//! "trusted dealer"/offline-phase model); the online phase is faithfully
//! message-passing between two [`Party`] states, with a transcript you
//! can inspect. No cryptographic hardness is claimed — this is the
//! evaluation substrate the paper's protocols plug into, with exact cost
//! accounting.

use qec_circuit::bitengine::{BitOp, CompiledBitCircuit};
use qec_circuit::lower::{BGate, BitCircuit};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One Beaver triple share: `(a, b, c)` with `c = a ∧ b` across parties.
#[derive(Clone, Copy, Debug)]
pub struct TripleShare {
    /// Share of `a`.
    pub a: bool,
    /// Share of `b`.
    pub b: bool,
    /// Share of `c = a ∧ b`.
    pub c: bool,
}

/// The trusted dealer's offline output: correlated triple shares.
pub struct Dealer {
    triples: (Vec<TripleShare>, Vec<TripleShare>),
}

impl Dealer {
    /// Prepares `n` multiplication triples (deterministic in `seed`).
    pub fn new(n: usize, seed: u64) -> Dealer {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut p0 = Vec::with_capacity(n);
        let mut p1 = Vec::with_capacity(n);
        for _ in 0..n {
            let (a, b) = (rng.gen::<bool>(), rng.gen::<bool>());
            let c = a & b;
            let (a0, b0, c0) = (rng.gen::<bool>(), rng.gen::<bool>(), rng.gen::<bool>());
            p0.push(TripleShare {
                a: a0,
                b: b0,
                c: c0,
            });
            p1.push(TripleShare {
                a: a ^ a0,
                b: b ^ b0,
                c: c ^ c0,
            });
        }
        Dealer { triples: (p0, p1) }
    }
}

/// Secret-shares a bit vector between the two parties.
pub fn share_bits(bits: &[bool], seed: u64) -> (Vec<bool>, Vec<bool>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let s0: Vec<bool> = bits.iter().map(|_| rng.gen()).collect();
    let s1: Vec<bool> = bits.iter().zip(s0.iter()).map(|(&v, &m)| v ^ m).collect();
    (s0, s1)
}

/// Per-party evaluation state.
struct Party {
    shares: Vec<bool>,
    triples: Vec<TripleShare>,
    input_shares: Vec<bool>,
}

impl Party {
    /// Local phase of one AND gate: masks the operand shares with the
    /// triple, returning `(d, e)` shares to be exchanged.
    fn and_open(&self, x: bool, y: bool, t: usize) -> (bool, bool) {
        let tr = self.triples[t];
        (x ^ tr.a, y ^ tr.b)
    }

    /// Completion of an AND gate after `(d, e)` are publicly
    /// reconstructed.
    fn and_close(&self, d: bool, e: bool, t: usize, party_id: bool) -> bool {
        let tr = self.triples[t];
        // z = c ⊕ d·b ⊕ e·a ⊕ d·e  (the d·e term added by one party only)
        let mut z = tr.c ^ (d & tr.b) ^ (e & tr.a);
        if party_id {
            z ^= d & e;
        }
        z
    }
}

/// Cost accounting of a protocol run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ProtocolStats {
    /// AND gates evaluated = triples consumed = 2-bit messages per party.
    pub and_gates: u64,
    /// Communication rounds (AND depth of the circuit when batched by
    /// level; here counted per sequential AND for simplicity of the
    /// reference implementation, with the levelized figure reported
    /// separately).
    pub messages_bits: u64,
    /// XOR/NOT gates (evaluated locally, no communication).
    pub free_gates: u64,
}

/// Errors during protocol evaluation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MpcError {
    /// Not enough Beaver triples were prepared.
    OutOfTriples,
    /// Input share vectors have the wrong length.
    InputLength {
        /// Bits the circuit expects.
        expected: usize,
        /// Bits supplied.
        got: usize,
    },
    /// An assertion gate in the circuit fired after reconstruction.
    AssertionFailed(usize),
}

impl std::fmt::Display for MpcError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MpcError::OutOfTriples => write!(f, "dealer did not prepare enough triples"),
            MpcError::InputLength { expected, got } => {
                write!(f, "expected {expected} input bit shares, got {got}")
            }
            MpcError::AssertionFailed(g) => write!(f, "circuit assertion {g} failed"),
        }
    }
}

impl std::error::Error for MpcError {}

/// Evaluates a lowered circuit under two-party XOR sharing. `shares0` and
/// `shares1` are the parties' input-bit shares (their XOR is the true
/// input). Returns the reconstructed output bits and the cost stats.
///
/// Assertion gates are reconstructed during evaluation (they are part of
/// the query's *declared* constraints, so revealing their single bit
/// leaks nothing beyond "the input conformed, as promised").
pub fn evaluate_shared(
    circuit: &BitCircuit,
    shares0: &[bool],
    shares1: &[bool],
    dealer: Dealer,
) -> Result<(Vec<bool>, ProtocolStats), MpcError> {
    if shares0.len() != circuit.num_inputs() || shares1.len() != circuit.num_inputs() {
        return Err(MpcError::InputLength {
            expected: circuit.num_inputs(),
            got: shares0.len().min(shares1.len()),
        });
    }
    let mut p0 = Party {
        shares: vec![false; circuit.gates().len()],
        triples: dealer.triples.0,
        input_shares: shares0.to_vec(),
    };
    let mut p1 = Party {
        shares: vec![false; circuit.gates().len()],
        triples: dealer.triples.1,
        input_shares: shares1.to_vec(),
    };
    let mut stats = ProtocolStats::default();
    let mut next_triple = 0usize;

    for (i, g) in circuit.gates().iter().enumerate() {
        match *g {
            BGate::Input(idx) => {
                p0.shares[i] = p0.input_shares[idx];
                p1.shares[i] = p1.input_shares[idx];
            }
            BGate::Const(v) => {
                // public constant: party 0 holds it, party 1 holds 0
                p0.shares[i] = v;
                p1.shares[i] = false;
            }
            BGate::Xor(a, b) => {
                p0.shares[i] = p0.shares[a as usize] ^ p0.shares[b as usize];
                p1.shares[i] = p1.shares[a as usize] ^ p1.shares[b as usize];
                stats.free_gates += 1;
            }
            BGate::Not(a) => {
                // negate on one side only
                p0.shares[i] = !p0.shares[a as usize];
                p1.shares[i] = p1.shares[a as usize];
                stats.free_gates += 1;
            }
            BGate::And(a, b) => {
                if next_triple >= p0.triples.len() {
                    return Err(MpcError::OutOfTriples);
                }
                let (d0, e0) =
                    p0.and_open(p0.shares[a as usize], p0.shares[b as usize], next_triple);
                let (d1, e1) =
                    p1.and_open(p1.shares[a as usize], p1.shares[b as usize], next_triple);
                // exchange: both parties learn d = d0^d1, e = e0^e1
                let (d, e) = (d0 ^ d1, e0 ^ e1);
                p0.shares[i] = p0.and_close(d, e, next_triple, false);
                p1.shares[i] = p1.and_close(d, e, next_triple, true);
                next_triple += 1;
                stats.and_gates += 1;
                stats.messages_bits += 4; // two bits each direction
            }
            BGate::AssertFalse(a) => {
                let v = p0.shares[a as usize] ^ p1.shares[a as usize];
                if v {
                    return Err(MpcError::AssertionFailed(i));
                }
            }
        }
    }
    let outputs = circuit
        .outputs()
        .iter()
        .map(|&w| p0.shares[w as usize] ^ p1.shares[w as usize])
        .collect();
    Ok((outputs, stats))
}

/// What every batched entry point returns: one `Result` per instance,
/// in input order, plus the aggregate protocol stats for the whole
/// batch.
pub type BatchedOutcome = (Vec<Result<Vec<bool>, MpcError>>, ProtocolStats);

/// The trusted dealer's offline output for the *batched* protocol:
/// transposed triple shares, `words` lane words per packed AND step
/// (64 triples per word — the dealer hands out `words × 64` scalar
/// triples every time the tape executes one AND instruction).
///
/// Layout per step `s` and party: `[a₀..a_w, b₀..b_w, c₀..c_w]` at
/// offset `s × 3 × words`, with `a ∧ b = c` lane-wise across parties.
pub struct PackedDealer {
    words: usize,
    p0: Vec<u64>,
    p1: Vec<u64>,
}

impl PackedDealer {
    /// Prepares `steps` packed AND steps of `words` lane words each
    /// (deterministic in `seed`). A batch of `B` instances over a
    /// circuit with `A` AND instructions needs
    /// `A × ceil(B / (words × 64))` steps — one fresh packed triple per
    /// AND per block; triples are never reused across blocks.
    pub fn new(steps: usize, words: usize, seed: u64) -> PackedDealer {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut p0 = Vec::with_capacity(steps * 3 * words);
        let mut p1 = Vec::with_capacity(steps * 3 * words);
        fn split(rng: &mut StdRng, plain: &[u64], p0: &mut Vec<u64>, p1: &mut Vec<u64>) {
            for &v in plain {
                let m = rng.gen::<u64>();
                p0.push(m);
                p1.push(v ^ m);
            }
        }
        let mut a = vec![0u64; words];
        let mut b = vec![0u64; words];
        let mut c = vec![0u64; words];
        for _ in 0..steps {
            for w in 0..words {
                a[w] = rng.gen::<u64>();
                b[w] = rng.gen::<u64>();
                c[w] = a[w] & b[w];
            }
            split(&mut rng, &a, &mut p0, &mut p1);
            split(&mut rng, &b, &mut p0, &mut p1);
            split(&mut rng, &c, &mut p0, &mut p1);
        }
        PackedDealer { words, p0, p1 }
    }

    /// Lane words per packed step.
    pub fn words(&self) -> usize {
        self.words
    }

    /// Packed AND steps prepared.
    pub fn steps(&self) -> usize {
        self.p0.len() / (3 * self.words)
    }
}

/// Evaluates a batch of secret-shared instances over the bitsliced
/// tape — the GMW local-computation inner loop running on
/// [`CompiledBitCircuit`]'s register-allocated schedule. Each party
/// holds one transposed register file (`num_regs × words` lane words);
/// XOR/NOT/Const steps are local word ops on both files, and every AND
/// instruction consumes one packed triple (`words × 64` scalar
/// triples) with a single `(d, e)` word exchange for all lanes at once.
///
/// Returns one `Result` per instance, in order, plus aggregate stats.
/// Stats count scalar-equivalent work at the dealer's full packed
/// width: a ragged final block still burns (and communicates) whole
/// lane words, exactly as a real deployment would.
pub fn evaluate_shared_batch(
    eng: &CompiledBitCircuit,
    shares0: &[Vec<bool>],
    shares1: &[Vec<bool>],
    dealer: &PackedDealer,
) -> Result<BatchedOutcome, MpcError> {
    if shares0.len() != shares1.len() {
        return Err(MpcError::InputLength {
            expected: shares0.len(),
            got: shares1.len(),
        });
    }
    let words = dealer.words;
    let lanes = words * 64;
    let num_inputs = eng.num_inputs();
    let nr = eng.num_regs() as usize;
    let mut results = Vec::with_capacity(shares0.len());
    let mut stats = ProtocolStats::default();
    let mut next_step = 0usize;

    let mut packed0 = vec![0u64; num_inputs * words];
    let mut packed1 = vec![0u64; num_inputs * words];
    let mut regs0 = vec![0u64; nr * words];
    let mut regs1 = vec![0u64; nr * words];
    let mut fail = vec![u32::MAX; lanes];
    let mut d_pub = vec![0u64; words];
    let mut e_pub = vec![0u64; words];

    for block_start in (0..shares0.len()).step_by(lanes) {
        let block_n = (shares0.len() - block_start).min(lanes);
        let block0 = &shares0[block_start..block_start + block_n];
        let block1 = &shares1[block_start..block_start + block_n];
        pack_share_block(block0, num_inputs, words, &mut packed0);
        pack_share_block(block1, num_inputs, words, &mut packed1);
        for f in fail.iter_mut() {
            *f = u32::MAX;
        }

        for op in eng.ops() {
            match *op {
                BitOp::Input { dst, idx } => {
                    let (d, s) = (dst as usize * words, idx as usize * words);
                    regs0[d..d + words].copy_from_slice(&packed0[s..s + words]);
                    regs1[d..d + words].copy_from_slice(&packed1[s..s + words]);
                }
                BitOp::Const { dst, v } => {
                    // public constant: party 0 holds it, party 1 holds 0
                    let d = dst as usize * words;
                    regs0[d..d + words].fill(if v { !0 } else { 0 });
                    regs1[d..d + words].fill(0);
                }
                BitOp::Xor { dst, a, b } => {
                    let (d, ra, rb) =
                        (dst as usize * words, a as usize * words, b as usize * words);
                    for w in 0..words {
                        regs0[d + w] = regs0[ra + w] ^ regs0[rb + w];
                        regs1[d + w] = regs1[ra + w] ^ regs1[rb + w];
                    }
                    stats.free_gates += lanes as u64;
                }
                BitOp::Not { dst, a } => {
                    // negate on one side only
                    let (d, ra) = (dst as usize * words, a as usize * words);
                    for w in 0..words {
                        regs0[d + w] = !regs0[ra + w];
                        regs1[d + w] = regs1[ra + w];
                    }
                    stats.free_gates += lanes as u64;
                }
                BitOp::And { dst, a, b } => {
                    if next_step >= dealer.steps() {
                        return Err(MpcError::OutOfTriples);
                    }
                    let base = next_step * 3 * words;
                    let (ta0, tb0, tc0) = (base, base + words, base + 2 * words);
                    let (d, ra, rb) =
                        (dst as usize * words, a as usize * words, b as usize * words);
                    // local phase: mask operand shares with the triple,
                    // then exchange (d, e) words — one message pair for
                    // all lanes of this AND step
                    for w in 0..words {
                        d_pub[w] = (regs0[ra + w] ^ dealer.p0[ta0 + w])
                            ^ (regs1[ra + w] ^ dealer.p1[ta0 + w]);
                        e_pub[w] = (regs0[rb + w] ^ dealer.p0[tb0 + w])
                            ^ (regs1[rb + w] ^ dealer.p1[tb0 + w]);
                    }
                    // z = c ⊕ d·b ⊕ e·a ⊕ d·e (d·e term on one party only)
                    for w in 0..words {
                        regs0[d + w] = dealer.p0[tc0 + w]
                            ^ (d_pub[w] & dealer.p0[tb0 + w])
                            ^ (e_pub[w] & dealer.p0[ta0 + w]);
                        regs1[d + w] = dealer.p1[tc0 + w]
                            ^ (d_pub[w] & dealer.p1[tb0 + w])
                            ^ (e_pub[w] & dealer.p1[ta0 + w])
                            ^ (d_pub[w] & e_pub[w]);
                    }
                    next_step += 1;
                    stats.and_gates += lanes as u64;
                    stats.messages_bits += 4 * lanes as u64; // two words each direction
                }
                BitOp::AssertFalse { dst, a, gate } => {
                    let (d, ra) = (dst as usize * words, a as usize * words);
                    for w in 0..words {
                        let lane_base = w * 64;
                        let valid = if block_n >= lane_base + 64 {
                            !0u64
                        } else if block_n <= lane_base {
                            0
                        } else {
                            (1u64 << (block_n - lane_base)) - 1
                        };
                        let mut m = (regs0[ra + w] ^ regs1[ra + w]) & valid;
                        while m != 0 {
                            let lane = lane_base + m.trailing_zeros() as usize;
                            if gate < fail[lane] {
                                fail[lane] = gate;
                            }
                            m &= m - 1;
                        }
                        regs0[d + w] = 0;
                        regs1[d + w] = 0;
                    }
                }
            }
        }

        for (l, (s0, s1)) in block0.iter().zip(block1).enumerate() {
            if s0.len() != num_inputs || s1.len() != num_inputs {
                results.push(Err(MpcError::InputLength {
                    expected: num_inputs,
                    got: s0.len().min(s1.len()),
                }));
                continue;
            }
            if fail[l] != u32::MAX {
                results.push(Err(MpcError::AssertionFailed(fail[l] as usize)));
                continue;
            }
            let out = eng
                .output_regs()
                .iter()
                .map(|&r| {
                    let i = r as usize * words + l / 64;
                    (regs0[i] ^ regs1[i]) >> (l % 64) & 1 == 1
                })
                .collect();
            results.push(Ok(out));
        }
    }
    Ok((results, stats))
}

/// Transposes one block of share vectors into input-major lane words.
/// Wrong-arity instances contribute zeros; their lanes are reported as
/// [`MpcError::InputLength`] and never read back.
fn pack_share_block(block: &[Vec<bool>], num_inputs: usize, words: usize, out: &mut [u64]) {
    out.fill(0);
    for (l, inst) in block.iter().enumerate() {
        if inst.len() != num_inputs {
            continue;
        }
        let (word, bit) = (l / 64, l % 64);
        for (idx, &b) in inst.iter().enumerate() {
            if b {
                out[idx * words + word] |= 1u64 << bit;
            }
        }
    }
}

/// Convenience: full offline + online batched pipeline on plain
/// instances at a packed width of `lanes` (rounded up to whole lane
/// words; 64, 256 and 512 are the natural sizes). Compiles the tape,
/// provisions exactly enough packed triples, shares every instance, and
/// returns per-instance results — each equal to what
/// [`run_two_party`] produces for that instance alone.
pub fn run_two_party_batched(
    circuit: &BitCircuit,
    instances: &[Vec<bool>],
    lanes: usize,
    seed: u64,
) -> Result<BatchedOutcome, MpcError> {
    let eng = CompiledBitCircuit::compile(circuit);
    run_two_party_batched_with(&eng, instances, lanes, seed)
}

/// [`run_two_party_batched`] against an already-compiled tape (the
/// shape benches want: compile once, batch many).
pub fn run_two_party_batched_with(
    eng: &CompiledBitCircuit,
    instances: &[Vec<bool>],
    lanes: usize,
    seed: u64,
) -> Result<BatchedOutcome, MpcError> {
    let words = lanes.max(1).div_ceil(64);
    let blocks = instances.len().div_ceil(words * 64).max(1);
    let steps = eng.stats().and_ops as usize * blocks;
    let dealer = PackedDealer::new(steps, words, seed);
    let mut rng = StdRng::seed_from_u64(seed.wrapping_add(1));
    let mut shares0 = Vec::with_capacity(instances.len());
    let mut shares1 = Vec::with_capacity(instances.len());
    for inst in instances {
        let s0: Vec<bool> = inst.iter().map(|_| rng.gen()).collect();
        let s1: Vec<bool> = inst.iter().zip(&s0).map(|(&v, &m)| v ^ m).collect();
        shares0.push(s0);
        shares1.push(s1);
    }
    evaluate_shared_batch(eng, &shares0, &shares1, &dealer)
}

/// Garbled-circuit (Yao) cost estimate for a lowered circuit under the
/// half-gates optimization: two 128-bit ciphertexts per AND gate, XOR and
/// NOT free, one round of communication total (the paper's Sec. 1: size
/// drives communication/computation, and garbling needs no interaction
/// beyond input/output transfer).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GarblingCost {
    /// AND gates garbled.
    pub and_gates: u64,
    /// Ciphertexts in the garbled table (2 per AND under half-gates).
    pub ciphertexts: u64,
    /// Table bytes at 128-bit security.
    pub table_bytes: u64,
    /// Wire labels transferred for the evaluator's inputs (one 16-byte
    /// label per input bit; via OT in a real deployment).
    pub input_label_bytes: u64,
}

/// Estimates Yao/half-gates garbling costs for `circuit`.
pub fn garbling_cost(circuit: &qec_circuit::lower::BitCircuit) -> GarblingCost {
    let and_gates = circuit.and_count();
    let ciphertexts = 2 * and_gates;
    GarblingCost {
        and_gates,
        ciphertexts,
        table_bytes: ciphertexts * 16,
        input_label_bytes: circuit.num_inputs() as u64 * 16,
    }
}

/// Convenience: run the full offline + online pipeline on plain inputs,
/// checking against plaintext evaluation. Returns outputs and stats.
pub fn run_two_party(
    circuit: &BitCircuit,
    input_bits: &[bool],
    seed: u64,
) -> Result<(Vec<bool>, ProtocolStats), MpcError> {
    let dealer = Dealer::new(circuit.and_count() as usize, seed);
    let (s0, s1) = share_bits(input_bits, seed.wrapping_add(1));
    evaluate_shared(circuit, &s0, &s1, dealer)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qec_circuit::lower::lower_with;
    use qec_circuit::{Builder, CompileOptions, Mode};

    fn adder_circuit() -> BitCircuit {
        let mut b = Builder::new(Mode::Build);
        let x = b.input();
        let y = b.input();
        let s = b.add(x, y);
        let lt = b.lt(x, y);
        let c = b.finish(vec![s, lt]);
        lower_with(&c, 16, &CompileOptions::sequential())
    }

    #[test]
    fn shared_evaluation_matches_plaintext() {
        let bc = adder_circuit();
        for (x, y) in [(3u64, 5u64), (100, 250), (65535, 1), (0, 0)] {
            let bits = bc.pack_inputs(&[x, y]);
            let plain = bc.evaluate(&bits).unwrap();
            let (shared, stats) = run_two_party(&bc, &bits, 42).unwrap();
            assert_eq!(shared, plain, "inputs ({x}, {y})");
            assert_eq!(stats.and_gates, bc.and_count());
        }
    }

    #[test]
    fn different_seeds_same_result() {
        let bc = adder_circuit();
        let bits = bc.pack_inputs(&[123, 456]);
        let (r1, _) = run_two_party(&bc, &bits, 1).unwrap();
        let (r2, _) = run_two_party(&bc, &bits, 999).unwrap();
        assert_eq!(r1, r2);
    }

    #[test]
    fn shares_alone_reveal_nothing_structural() {
        // sanity: a party's share vector differs across seeds even for the
        // same input (masking is doing something)
        let bc = adder_circuit();
        let bits = bc.pack_inputs(&[7, 9]);
        let (a0, _) = share_bits(&bits, 5);
        let (b0, _) = share_bits(&bits, 6);
        assert_ne!(a0, b0);
        // and shares XOR back to the input
        let (s0, s1) = share_bits(&bits, 7);
        let rec: Vec<bool> = s0.iter().zip(s1.iter()).map(|(&a, &b)| a ^ b).collect();
        assert_eq!(rec, bits);
    }

    #[test]
    fn out_of_triples_detected() {
        let bc = adder_circuit();
        let bits = bc.pack_inputs(&[1, 2]);
        let dealer = Dealer::new(1, 3); // far too few
        let (s0, s1) = share_bits(&bits, 4);
        assert_eq!(
            evaluate_shared(&bc, &s0, &s1, dealer).unwrap_err(),
            MpcError::OutOfTriples
        );
    }

    #[test]
    fn wrong_share_length_detected() {
        let bc = adder_circuit();
        let dealer = Dealer::new(10, 0);
        assert!(matches!(
            evaluate_shared(&bc, &[true], &[false], dealer),
            Err(MpcError::InputLength { .. })
        ));
    }

    #[test]
    fn assertion_gates_surface() {
        let mut b = Builder::new(Mode::Build);
        let x = b.input();
        b.assert_zero(x);
        let c = b.finish(vec![]);
        let bc = lower_with(&c, 4, &CompileOptions::sequential());
        let ok = run_two_party(&bc, &bc.pack_inputs(&[0]), 9);
        assert!(ok.is_ok());
        let bad = run_two_party(&bc, &bc.pack_inputs(&[5]), 9);
        assert!(matches!(bad, Err(MpcError::AssertionFailed(_))));
    }

    #[test]
    fn batched_matches_per_gate_demo() {
        let bc = adder_circuit();
        let instances: Vec<Vec<bool>> = (0..70u64)
            .map(|i| bc.pack_inputs(&[i * 37 % 1009, i * i % 997]))
            .collect();
        for lanes in [64usize, 256, 512] {
            let (batched, stats) = run_two_party_batched(&bc, &instances, lanes, 7).unwrap();
            assert_eq!(batched.len(), instances.len());
            for (inst, got) in instances.iter().zip(&batched) {
                let want = run_two_party(&bc, inst, 99).map(|(out, _)| out);
                assert_eq!(got, &want, "lanes {lanes}");
            }
            // one packed triple per AND per block, full width
            let blocks = instances.len().div_ceil(lanes.max(64));
            assert_eq!(
                stats.and_gates,
                bc.and_count() * (lanes.max(64) * blocks) as u64
            );
            assert_eq!(stats.messages_bits, 4 * stats.and_gates);
        }
    }

    #[test]
    fn batched_asserts_report_source_gate() {
        let mut b = Builder::new(Mode::Build);
        let x = b.input();
        let y = b.input();
        b.assert_zero(x);
        let s = b.add(x, y);
        let c = b.finish(vec![s]);
        let bc = lower_with(&c, 4, &CompileOptions::sequential());
        let instances: Vec<Vec<bool>> = (0..5u64).map(|i| bc.pack_inputs(&[i % 2, 3])).collect();
        let (results, _) = run_two_party_batched(&bc, &instances, 64, 3).unwrap();
        for (inst, got) in instances.iter().zip(&results) {
            assert_eq!(got, &run_two_party(&bc, inst, 3).map(|(o, _)| o));
        }
    }

    #[test]
    fn batched_out_of_triples_detected() {
        let bc = adder_circuit();
        let eng = qec_circuit::CompiledBitCircuit::compile(&bc);
        let inst = bc.pack_inputs(&[1, 2]);
        let dealer = PackedDealer::new(1, 1, 5); // far too few steps
        let (s0, s1) = share_bits(&inst, 6);
        assert_eq!(
            evaluate_shared_batch(&eng, &[s0], &[s1], &dealer).unwrap_err(),
            MpcError::OutOfTriples
        );
    }

    #[test]
    fn batched_flags_wrong_arity_lanes() {
        let bc = adder_circuit();
        let good = bc.pack_inputs(&[9, 10]);
        let (results, _) =
            run_two_party_batched(&bc, &[good.clone(), vec![true; 3], good], 64, 11).unwrap();
        assert!(results[0].is_ok() && results[2].is_ok());
        assert!(matches!(results[1], Err(MpcError::InputLength { .. })));
        assert_eq!(results[0], results[2]);
    }

    #[test]
    fn garbling_cost_accounting() {
        let bc = adder_circuit();
        let g = garbling_cost(&bc);
        assert_eq!(g.and_gates, bc.and_count());
        assert_eq!(g.ciphertexts, 2 * g.and_gates);
        assert_eq!(g.table_bytes, 32 * g.and_gates);
        assert_eq!(g.input_label_bytes, 16 * bc.num_inputs() as u64);
    }

    #[test]
    fn cost_scales_with_and_count() {
        let bc = adder_circuit();
        let bits = bc.pack_inputs(&[11, 22]);
        let (_, stats) = run_two_party(&bc, &bits, 12).unwrap();
        assert_eq!(stats.messages_bits, 4 * stats.and_gates);
        assert!(stats.free_gates > 0);
    }
}
