//! Secure two-party query evaluation over the paper's circuits
//! (Sec. 1, "Secure multi-party query evaluation").
//!
//! GMW-style protocol over XOR secret shares: each bit of the (lowered)
//! query circuit's input is split into two shares whose XOR is the true
//! value. XOR and NOT gates are evaluated locally; each AND gate consumes
//! one precomputed *Beaver multiplication triple* and one share exchange.
//! The protocol transcript each party sees is independent of the other
//! party's data — which is exactly why the paper insists on circuits:
//! the circuit *is* the oblivious algorithm, and its
//!
//! * **size** (AND count) drives communication and computation,
//! * **depth** (AND depth) drives round complexity.
//!
//! The crate is layered along that split:
//!
//! * [`share`](mod@share) — XOR sharing of inputs and the transposed
//!   lane-word packing of batches;
//! * [`dealer`] — the offline phase: Beaver triple generation behind
//!   the [`TripleSource`] streaming seam (in-memory, dealer files, or —
//!   later — OT extension);
//! * [`transport`] — framed, versioned, checksummed messages over the
//!   [`Transport`] trait: in-process [`Duplex`], blocking
//!   [`TcpTransport`], fault-injecting [`FaultTransport`];
//! * [`protocol`] — the online phase: a networked [`Session`] per
//!   party, exchanging **one message per AND level** of the compiled
//!   tape (`stats.rounds == AND depth` under
//!   [`CompiledBitCircuit::compile_gmw`]), plus single-process
//!   reference evaluators ([`evaluate_shared`],
//!   [`evaluate_shared_batch`]).
//!
//! The [`run_two_party`] / [`run_two_party_batched`] conveniences wire
//! two [`Duplex`]-connected sessions onto two threads — same code path
//! as a real deployment, minus the network. No cryptographic hardness
//! is claimed for the dealer (it is the standard trusted-dealer model);
//! the online phase is faithfully message-passing with exact cost
//! accounting.

use qec_circuit::bitengine::CompiledBitCircuit;
use qec_circuit::lower::BitCircuit;

pub mod dealer;
pub mod protocol;
pub mod share;
pub mod transport;

pub use dealer::{
    write_triple_files, write_triples, Dealer, InsecureSeedTriples, PackedDealer, TripleSource,
    TripleStream, TripleVec, TRIPLE_MAGIC, TRIPLE_VERSION,
};
pub use protocol::{evaluate_shared, evaluate_shared_batch, BatchedOutcome, Outcome, Session};
pub use share::{pack_bits, share_bits, share_instances, unpack_bits, TripleShare};
pub use transport::{
    Duplex, Fault, FaultTransport, Frame, FrameKind, Role, TcpTransport, Transport,
    DEFAULT_TIMEOUT, FRAME_HEADER_BYTES, FRAME_MAGIC, FRAME_TRAILER_BYTES, FRAME_VERSION,
    MAX_FRAME_PAYLOAD,
};

/// Cost accounting of a protocol run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ProtocolStats {
    /// AND gates evaluated = scalar triples consumed (counted at the
    /// full packed width in batched runs).
    pub and_gates: u64,
    /// Online-phase bits whose transfer the protocol fundamentally
    /// requires: 2 mask bits each direction per AND gate. The wire
    /// carries these packed per level, plus framing — see
    /// `bytes_sent`.
    pub messages_bits: u64,
    /// XOR/NOT gates (evaluated locally, no communication).
    pub free_gates: u64,
    /// AND-level message exchanges. Equals the tape's AND-bearing level
    /// count per block — and the circuit's AND *depth* under
    /// [`CompiledBitCircuit::compile_gmw`]'s schedule.
    pub rounds: u64,
    /// Non-AND exchanges: the `Hello` handshake and one `Open` per
    /// block (outputs + deferred asserts).
    pub open_rounds: u64,
    /// Bytes of encoded frames handed to the transport.
    pub bytes_sent: u64,
    /// Bytes of encoded frames received from the transport.
    pub bytes_recv: u64,
}

/// Errors during protocol evaluation — including every way a broken or
/// hostile wire can fail. The protocol never hangs past its transport
/// timeout and never returns a silently wrong answer: each failure mode
/// surfaces as one of these.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MpcError {
    /// Not enough Beaver triples were prepared.
    OutOfTriples,
    /// Input share vectors have the wrong length.
    InputLength {
        /// Bits the circuit expects.
        expected: usize,
        /// Bits supplied.
        got: usize,
    },
    /// An assertion gate in the circuit fired after reconstruction.
    AssertionFailed(usize),
    /// The triple source's packed width disagrees with the session's.
    TripleWidth {
        /// Lane words the session runs at.
        expected: usize,
        /// Lane words the source yields.
        got: usize,
    },
    /// A frame or file did not start with the expected magic bytes.
    BadMagic,
    /// A frame or file carried an unsupported version.
    BadVersion {
        /// The version encountered.
        got: u32,
    },
    /// A frame's FNV-1a-64 trailer did not match its contents.
    BadChecksum,
    /// A structurally malformed frame (impossible length, unknown kind,
    /// reserved bits set, payload shape disagreeing with the tape).
    BadFrame(&'static str),
    /// The peer's frame was for a different round than this party is in
    /// (a dropped, duplicated or reordered message).
    UnexpectedRound {
        /// Round this party is executing.
        expected: u32,
        /// Round the peer's frame claims.
        got: u32,
    },
    /// The peer's frame kind does not match the protocol phase.
    UnexpectedKind {
        /// Kind this phase calls for.
        expected: FrameKind,
        /// Kind received.
        got: FrameKind,
    },
    /// A frame claimed to come from the wrong party.
    RoleMismatch {
        /// The peer role this session expects.
        expected: Role,
        /// The role the frame carried.
        got: Role,
    },
    /// The two parties are not running the same tape/batch (handshake
    /// fingerprint or geometry disagreement).
    TapeMismatch(String),
    /// Fewer bytes than a whole frame (or triple record) before EOF.
    ShortRead,
    /// The peer went silent past the transport timeout.
    PeerTimeout,
    /// The peer closed the connection.
    PeerClosed,
    /// An underlying I/O failure (socket, dealer file).
    Io(String),
}

impl std::fmt::Display for MpcError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MpcError::OutOfTriples => write!(f, "dealer did not prepare enough triples"),
            MpcError::InputLength { expected, got } => {
                write!(f, "expected {expected} input bit shares, got {got}")
            }
            MpcError::AssertionFailed(g) => write!(f, "circuit assertion {g} failed"),
            MpcError::TripleWidth { expected, got } => {
                write!(
                    f,
                    "triple source yields {got} lane words, session needs {expected}"
                )
            }
            MpcError::BadMagic => write!(f, "bad magic bytes"),
            MpcError::BadVersion { got } => write!(f, "unsupported format version {got}"),
            MpcError::BadChecksum => write!(f, "frame checksum mismatch"),
            MpcError::BadFrame(why) => write!(f, "malformed frame: {why}"),
            MpcError::UnexpectedRound { expected, got } => {
                write!(f, "expected round {expected}, peer sent round {got}")
            }
            MpcError::UnexpectedKind { expected, got } => {
                write!(f, "expected {expected:?} frame, peer sent {got:?}")
            }
            MpcError::RoleMismatch { expected, got } => {
                write!(f, "expected frame from {expected}, got one from {got}")
            }
            MpcError::TapeMismatch(why) => write!(f, "parties disagree on the tape: {why}"),
            MpcError::ShortRead => write!(f, "short read: stream ended mid-record"),
            MpcError::PeerTimeout => write!(f, "peer went silent past the transport timeout"),
            MpcError::PeerClosed => write!(f, "peer closed the connection"),
            MpcError::Io(e) => write!(f, "transport i/o error: {e}"),
        }
    }
}

impl std::error::Error for MpcError {}

/// Convenience: full offline + online batched pipeline on plain
/// instances at a packed width of `lanes` (rounded up to whole lane
/// words; 64, 256 and 512 are the natural sizes). Compiles the tape
/// with the round-optimal GMW schedule, provisions exactly enough
/// packed triples, shares every instance, and runs **two
/// [`Session`]s over an in-process [`Duplex`] pair** — party 1 on its
/// own thread — returning party 0's view.
pub fn run_two_party_batched(
    circuit: &BitCircuit,
    instances: &[Vec<bool>],
    lanes: usize,
    seed: u64,
) -> Result<BatchedOutcome, MpcError> {
    let eng = CompiledBitCircuit::compile_gmw(circuit);
    run_two_party_batched_with(&eng, instances, lanes, seed)
}

/// [`run_two_party_batched`] against an already-compiled tape (the
/// shape benches want: compile once, batch many).
pub fn run_two_party_batched_with(
    eng: &CompiledBitCircuit,
    instances: &[Vec<bool>],
    lanes: usize,
    seed: u64,
) -> Result<BatchedOutcome, MpcError> {
    let words = lanes.max(1).div_ceil(64);
    let num_inputs = eng.num_inputs();
    let valid: Vec<&Vec<bool>> = instances.iter().filter(|i| i.len() == num_inputs).collect();
    let mut results: Vec<Result<Vec<bool>, MpcError>> = instances
        .iter()
        .map(|i| {
            Err(MpcError::InputLength {
                expected: num_inputs,
                got: i.len(),
            })
        })
        .collect();
    if valid.is_empty() {
        return Ok((results, ProtocolStats::default()));
    }
    let valid_insts: Vec<Vec<bool>> = valid.iter().map(|i| (*i).clone()).collect();
    let blocks = valid_insts.len().div_ceil(words * 64);
    let steps = eng.stats().and_ops as usize * blocks;
    let (t0, t1) = PackedDealer::new(steps, words, seed).split();
    let (s0, s1) = share_instances(&valid_insts, seed.wrapping_add(1));
    let (o0, o1) = run_duplex_sessions(eng, words, t0, t1, &s0, &s1)?;
    debug_assert_eq!(o0.results, o1.results);
    let mut it = o0.results.into_iter();
    for (slot, inst) in results.iter_mut().zip(instances) {
        if inst.len() == num_inputs {
            *slot = it.next().expect("one session result per valid instance");
        }
    }
    Ok((results, o0.stats))
}

/// Runs both parties of one batch over a fresh [`Duplex`] pair, party 1
/// on a scoped thread.
fn run_duplex_sessions<A: TripleSource + Send, B: TripleSource + Send>(
    eng: &CompiledBitCircuit,
    words: usize,
    t0: A,
    t1: B,
    s0: &[Vec<bool>],
    s1: &[Vec<bool>],
) -> Result<(Outcome, Outcome), MpcError> {
    let (d0, d1) = Duplex::pair();
    let (o0, o1) = std::thread::scope(|scope| {
        let h = scope.spawn(move || {
            Session::new(eng, Role::P1, d1, t1)
                .with_words(words)
                .run(s1)
        });
        let o0 = Session::new(eng, Role::P0, d0, t0)
            .with_words(words)
            .run(s0);
        (o0, h.join().expect("party 1 thread panicked"))
    });
    Ok((o0?, o1?))
}

/// Garbled-circuit (Yao) cost estimate for a lowered circuit under the
/// half-gates optimization: two 128-bit ciphertexts per AND gate, XOR and
/// NOT free, one round of communication total (the paper's Sec. 1: size
/// drives communication/computation, and garbling needs no interaction
/// beyond input/output transfer).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GarblingCost {
    /// AND gates garbled.
    pub and_gates: u64,
    /// Ciphertexts in the garbled table (2 per AND under half-gates).
    pub ciphertexts: u64,
    /// Table bytes at 128-bit security.
    pub table_bytes: u64,
    /// Wire labels transferred for the evaluator's inputs (one 16-byte
    /// label per input bit; via OT in a real deployment).
    pub input_label_bytes: u64,
}

/// Estimates Yao/half-gates garbling costs for `circuit`.
pub fn garbling_cost(circuit: &qec_circuit::lower::BitCircuit) -> GarblingCost {
    let and_gates = circuit.and_count();
    let ciphertexts = 2 * and_gates;
    GarblingCost {
        and_gates,
        ciphertexts,
        table_bytes: ciphertexts * 16,
        input_label_bytes: circuit.num_inputs() as u64 * 16,
    }
}

/// Convenience: run the full offline + online pipeline on one plain
/// input — two networked [`Session`]s over a [`Duplex`] pair at a
/// packed width of one lane word. Returns outputs and party 0's stats.
pub fn run_two_party(
    circuit: &BitCircuit,
    input_bits: &[bool],
    seed: u64,
) -> Result<(Vec<bool>, ProtocolStats), MpcError> {
    let eng = CompiledBitCircuit::compile_gmw(circuit);
    let (t0, t1) = PackedDealer::new(eng.stats().and_ops as usize, 1, seed).split();
    let (s0, s1) = share_bits(input_bits, seed.wrapping_add(1));
    let (o0, _) = run_duplex_sessions(&eng, 1, t0, t1, &[s0], &[s1])?;
    let out = o0.results.into_iter().next().expect("one instance")?;
    Ok((out, o0.stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use qec_circuit::lower::lower_with;
    use qec_circuit::{Builder, CompileOptions, Mode};

    fn adder_circuit() -> BitCircuit {
        let mut b = Builder::new(Mode::Build);
        let x = b.input();
        let y = b.input();
        let s = b.add(x, y);
        let lt = b.lt(x, y);
        let c = b.finish(vec![s, lt]);
        lower_with(&c, 16, &CompileOptions::sequential())
    }

    #[test]
    fn shared_evaluation_matches_plaintext() {
        let bc = adder_circuit();
        let eng = CompiledBitCircuit::compile_gmw(&bc);
        for (x, y) in [(3u64, 5u64), (100, 250), (65535, 1), (0, 0)] {
            let bits = bc.pack_inputs(&[x, y]);
            let plain = bc.evaluate(&bits).unwrap();
            let (shared, stats) = run_two_party(&bc, &bits, 42).unwrap();
            assert_eq!(shared, plain, "inputs ({x}, {y})");
            // one packed triple (64 lanes) per tape AND
            assert_eq!(stats.and_gates, bc.and_count() * 64);
            // one exchange per AND-bearing level == AND depth under
            // the GMW schedule
            assert_eq!(stats.rounds, eng.stats().and_levels as u64);
            assert_eq!(stats.open_rounds, 2); // hello + one block's open
            assert!(stats.bytes_sent > 0 && stats.bytes_sent == stats.bytes_recv);
        }
    }

    #[test]
    fn per_gate_reference_matches_plaintext() {
        let bc = adder_circuit();
        for (x, y) in [(3u64, 5u64), (100, 250), (65535, 1), (0, 0)] {
            let bits = bc.pack_inputs(&[x, y]);
            let plain = bc.evaluate(&bits).unwrap();
            let dealer = Dealer::new(bc.and_count() as usize, 42);
            let (s0, s1) = share_bits(&bits, 43);
            let (shared, stats) = evaluate_shared(&bc, &s0, &s1, dealer).unwrap();
            assert_eq!(shared, plain, "inputs ({x}, {y})");
            assert_eq!(stats.and_gates, bc.and_count());
        }
    }

    #[test]
    fn different_seeds_same_result() {
        let bc = adder_circuit();
        let bits = bc.pack_inputs(&[123, 456]);
        let (r1, _) = run_two_party(&bc, &bits, 1).unwrap();
        let (r2, _) = run_two_party(&bc, &bits, 999).unwrap();
        assert_eq!(r1, r2);
    }

    #[test]
    fn shares_alone_reveal_nothing_structural() {
        // sanity: a party's share vector differs across seeds even for the
        // same input (masking is doing something)
        let bc = adder_circuit();
        let bits = bc.pack_inputs(&[7, 9]);
        let (a0, _) = share_bits(&bits, 5);
        let (b0, _) = share_bits(&bits, 6);
        assert_ne!(a0, b0);
        // and shares XOR back to the input
        let (s0, s1) = share_bits(&bits, 7);
        let rec: Vec<bool> = s0.iter().zip(s1.iter()).map(|(&a, &b)| a ^ b).collect();
        assert_eq!(rec, bits);
    }

    #[test]
    fn out_of_triples_detected() {
        let bc = adder_circuit();
        let bits = bc.pack_inputs(&[1, 2]);
        let dealer = Dealer::new(1, 3); // far too few
        let (s0, s1) = share_bits(&bits, 4);
        assert_eq!(
            evaluate_shared(&bc, &s0, &s1, dealer).unwrap_err(),
            MpcError::OutOfTriples
        );
    }

    #[test]
    fn wrong_share_length_detected() {
        let bc = adder_circuit();
        let dealer = Dealer::new(10, 0);
        assert!(matches!(
            evaluate_shared(&bc, &[true], &[false], dealer),
            Err(MpcError::InputLength { .. })
        ));
        assert!(matches!(
            run_two_party(&bc, &[true, false], 3),
            Err(MpcError::InputLength { .. })
        ));
    }

    #[test]
    fn assertion_gates_surface() {
        let mut b = Builder::new(Mode::Build);
        let x = b.input();
        b.assert_zero(x);
        let c = b.finish(vec![]);
        let bc = lower_with(&c, 4, &CompileOptions::sequential());
        let ok = run_two_party(&bc, &bc.pack_inputs(&[0]), 9);
        assert!(ok.is_ok());
        let bad = run_two_party(&bc, &bc.pack_inputs(&[5]), 9);
        assert!(matches!(bad, Err(MpcError::AssertionFailed(_))));
    }

    #[test]
    fn batched_matches_per_gate_demo() {
        let bc = adder_circuit();
        let instances: Vec<Vec<bool>> = (0..70u64)
            .map(|i| bc.pack_inputs(&[i * 37 % 1009, i * i % 997]))
            .collect();
        for lanes in [64usize, 256, 512] {
            let (batched, stats) = run_two_party_batched(&bc, &instances, lanes, 7).unwrap();
            assert_eq!(batched.len(), instances.len());
            for (inst, got) in instances.iter().zip(&batched) {
                let want = run_two_party(&bc, inst, 99).map(|(out, _)| out);
                assert_eq!(got, &want, "lanes {lanes}");
            }
            // one packed triple per AND per block, full width
            let blocks = instances.len().div_ceil(lanes.max(64));
            assert_eq!(
                stats.and_gates,
                bc.and_count() * (lanes.max(64) * blocks) as u64
            );
            assert_eq!(stats.messages_bits, 4 * stats.and_gates);
        }
    }

    #[test]
    fn networked_sessions_match_in_process_reference() {
        let bc = adder_circuit();
        let eng = CompiledBitCircuit::compile_gmw(&bc);
        let instances: Vec<Vec<bool>> = (0..130u64)
            .map(|i| bc.pack_inputs(&[i * 31 % 777, i * 5 % 999]))
            .collect();
        let words = 1usize;
        let blocks = instances.len().div_ceil(words * 64);
        let dealer = PackedDealer::new(eng.stats().and_ops as usize * blocks, words, 21);
        let (s0, s1) = share_instances(&instances, 22);
        let reference = evaluate_shared_batch(&eng, &s0, &s1, &dealer).unwrap();
        let (t0, t1) = dealer.split();
        let (d0, d1) = Duplex::pair();
        let (o0, o1) = std::thread::scope(|scope| {
            let h = scope.spawn(|| {
                Session::new(&eng, Role::P1, d1, t1)
                    .with_words(words)
                    .run(&s1)
            });
            let o0 = Session::new(&eng, Role::P0, d0, t0)
                .with_words(words)
                .run(&s0);
            (o0.unwrap(), h.join().unwrap().unwrap())
        });
        assert_eq!(o0.results, reference.0);
        assert_eq!(o1.results, reference.0);
        assert_eq!(o0.stats.and_gates, reference.1.and_gates);
        assert_eq!(
            o0.stats.rounds,
            eng.stats().and_levels as u64 * blocks as u64
        );
        assert_eq!(o0.stats.bytes_sent, o1.stats.bytes_recv);
        assert_eq!(o0.level_ns.len(), eng.level_starts().len() - 1);
    }

    #[test]
    fn batched_asserts_report_source_gate() {
        let mut b = Builder::new(Mode::Build);
        let x = b.input();
        let y = b.input();
        b.assert_zero(x);
        let s = b.add(x, y);
        let c = b.finish(vec![s]);
        let bc = lower_with(&c, 4, &CompileOptions::sequential());
        let instances: Vec<Vec<bool>> = (0..5u64).map(|i| bc.pack_inputs(&[i % 2, 3])).collect();
        let (results, _) = run_two_party_batched(&bc, &instances, 64, 3).unwrap();
        for (inst, got) in instances.iter().zip(&results) {
            assert_eq!(got, &run_two_party(&bc, inst, 3).map(|(o, _)| o));
        }
    }

    #[test]
    fn batched_out_of_triples_detected() {
        let bc = adder_circuit();
        let eng = qec_circuit::CompiledBitCircuit::compile(&bc);
        let inst = bc.pack_inputs(&[1, 2]);
        let dealer = PackedDealer::new(1, 1, 5); // far too few steps
        let (s0, s1) = share_bits(&inst, 6);
        assert_eq!(
            evaluate_shared_batch(&eng, &[s0], &[s1], &dealer).unwrap_err(),
            MpcError::OutOfTriples
        );
    }

    #[test]
    fn batched_flags_wrong_arity_lanes() {
        let bc = adder_circuit();
        let good = bc.pack_inputs(&[9, 10]);
        let (results, _) =
            run_two_party_batched(&bc, &[good.clone(), vec![true; 3], good], 64, 11).unwrap();
        assert!(results[0].is_ok() && results[2].is_ok());
        assert!(matches!(results[1], Err(MpcError::InputLength { .. })));
        assert_eq!(results[0], results[2]);
    }

    #[test]
    fn garbling_cost_accounting() {
        let bc = adder_circuit();
        let g = garbling_cost(&bc);
        assert_eq!(g.and_gates, bc.and_count());
        assert_eq!(g.ciphertexts, 2 * g.and_gates);
        assert_eq!(g.table_bytes, 32 * g.and_gates);
        assert_eq!(g.input_label_bytes, 16 * bc.num_inputs() as u64);
    }

    #[test]
    fn cost_scales_with_and_count() {
        let bc = adder_circuit();
        let bits = bc.pack_inputs(&[11, 22]);
        let (_, stats) = run_two_party(&bc, &bits, 12).unwrap();
        assert_eq!(stats.messages_bits, 4 * stats.and_gates);
        assert!(stats.free_gates > 0);
    }

    #[test]
    fn handshake_rejects_mismatched_tapes() {
        let bc = adder_circuit();
        let mut b = Builder::new(Mode::Build);
        let x = b.input();
        let y = b.input();
        let s = b.mul(x, y);
        let other = lower_with(&b.finish(vec![s]), 16, &CompileOptions::sequential());
        let eng_a = CompiledBitCircuit::compile_gmw(&bc);
        let eng_b = CompiledBitCircuit::compile_gmw(&other);
        let (ta, _) = PackedDealer::new(eng_a.stats().and_ops as usize, 1, 1).split();
        let (tb, _) = PackedDealer::new(eng_b.stats().and_ops as usize, 1, 2).split();
        let bits_a = bc.pack_inputs(&[1, 2]);
        let bits_b = other.pack_inputs(&[3, 4]);
        let (sa, _) = share_bits(&bits_a, 5);
        let (sb, _) = share_bits(&bits_b, 6);
        let (d0, d1) = Duplex::pair();
        let (ra, rb) = std::thread::scope(|scope| {
            let h = scope.spawn(|| {
                Session::new(&eng_b, Role::P1, d1, tb)
                    .with_words(1)
                    .run(&[sb])
            });
            let ra = Session::new(&eng_a, Role::P0, d0, ta)
                .with_words(1)
                .run(&[sa]);
            (ra, h.join().unwrap())
        });
        assert!(matches!(ra.unwrap_err(), MpcError::TapeMismatch(_)));
        assert!(matches!(rb.unwrap_err(), MpcError::TapeMismatch(_)));
    }
}
