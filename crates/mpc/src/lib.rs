//! Secure two-party query evaluation over the paper's circuits
//! (Sec. 1, "Secure multi-party query evaluation").
//!
//! GMW-style protocol over XOR secret shares: each bit of the (lowered)
//! query circuit's input is split into two shares whose XOR is the true
//! value. XOR and NOT gates are evaluated locally; each AND gate consumes
//! one precomputed *Beaver multiplication triple* and one round of share
//! exchange. The protocol transcript each party sees is independent of
//! the other party's data — which is exactly why the paper insists on
//! circuits: the circuit *is* the oblivious algorithm, and its
//!
//! * **size** (AND count) drives communication and computation,
//! * **depth** (AND depth) drives round complexity.
//!
//! The dealer generating triples is simulated in-process (the standard
//! "trusted dealer"/offline-phase model); the online phase is faithfully
//! message-passing between two [`Party`] states, with a transcript you
//! can inspect. No cryptographic hardness is claimed — this is the
//! evaluation substrate the paper's protocols plug into, with exact cost
//! accounting.

use qec_circuit::lower::{BGate, BitCircuit};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One Beaver triple share: `(a, b, c)` with `c = a ∧ b` across parties.
#[derive(Clone, Copy, Debug)]
pub struct TripleShare {
    /// Share of `a`.
    pub a: bool,
    /// Share of `b`.
    pub b: bool,
    /// Share of `c = a ∧ b`.
    pub c: bool,
}

/// The trusted dealer's offline output: correlated triple shares.
pub struct Dealer {
    triples: (Vec<TripleShare>, Vec<TripleShare>),
}

impl Dealer {
    /// Prepares `n` multiplication triples (deterministic in `seed`).
    pub fn new(n: usize, seed: u64) -> Dealer {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut p0 = Vec::with_capacity(n);
        let mut p1 = Vec::with_capacity(n);
        for _ in 0..n {
            let (a, b) = (rng.gen::<bool>(), rng.gen::<bool>());
            let c = a & b;
            let (a0, b0, c0) = (rng.gen::<bool>(), rng.gen::<bool>(), rng.gen::<bool>());
            p0.push(TripleShare {
                a: a0,
                b: b0,
                c: c0,
            });
            p1.push(TripleShare {
                a: a ^ a0,
                b: b ^ b0,
                c: c ^ c0,
            });
        }
        Dealer { triples: (p0, p1) }
    }
}

/// Secret-shares a bit vector between the two parties.
pub fn share_bits(bits: &[bool], seed: u64) -> (Vec<bool>, Vec<bool>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let s0: Vec<bool> = bits.iter().map(|_| rng.gen()).collect();
    let s1: Vec<bool> = bits.iter().zip(s0.iter()).map(|(&v, &m)| v ^ m).collect();
    (s0, s1)
}

/// Per-party evaluation state.
struct Party {
    shares: Vec<bool>,
    triples: Vec<TripleShare>,
    input_shares: Vec<bool>,
}

impl Party {
    /// Local phase of one AND gate: masks the operand shares with the
    /// triple, returning `(d, e)` shares to be exchanged.
    fn and_open(&self, x: bool, y: bool, t: usize) -> (bool, bool) {
        let tr = self.triples[t];
        (x ^ tr.a, y ^ tr.b)
    }

    /// Completion of an AND gate after `(d, e)` are publicly
    /// reconstructed.
    fn and_close(&self, d: bool, e: bool, t: usize, party_id: bool) -> bool {
        let tr = self.triples[t];
        // z = c ⊕ d·b ⊕ e·a ⊕ d·e  (the d·e term added by one party only)
        let mut z = tr.c ^ (d & tr.b) ^ (e & tr.a);
        if party_id {
            z ^= d & e;
        }
        z
    }
}

/// Cost accounting of a protocol run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ProtocolStats {
    /// AND gates evaluated = triples consumed = 2-bit messages per party.
    pub and_gates: u64,
    /// Communication rounds (AND depth of the circuit when batched by
    /// level; here counted per sequential AND for simplicity of the
    /// reference implementation, with the levelized figure reported
    /// separately).
    pub messages_bits: u64,
    /// XOR/NOT gates (evaluated locally, no communication).
    pub free_gates: u64,
}

/// Errors during protocol evaluation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MpcError {
    /// Not enough Beaver triples were prepared.
    OutOfTriples,
    /// Input share vectors have the wrong length.
    InputLength {
        /// Bits the circuit expects.
        expected: usize,
        /// Bits supplied.
        got: usize,
    },
    /// An assertion gate in the circuit fired after reconstruction.
    AssertionFailed(usize),
}

impl std::fmt::Display for MpcError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MpcError::OutOfTriples => write!(f, "dealer did not prepare enough triples"),
            MpcError::InputLength { expected, got } => {
                write!(f, "expected {expected} input bit shares, got {got}")
            }
            MpcError::AssertionFailed(g) => write!(f, "circuit assertion {g} failed"),
        }
    }
}

impl std::error::Error for MpcError {}

/// Evaluates a lowered circuit under two-party XOR sharing. `shares0` and
/// `shares1` are the parties' input-bit shares (their XOR is the true
/// input). Returns the reconstructed output bits and the cost stats.
///
/// Assertion gates are reconstructed during evaluation (they are part of
/// the query's *declared* constraints, so revealing their single bit
/// leaks nothing beyond "the input conformed, as promised").
pub fn evaluate_shared(
    circuit: &BitCircuit,
    shares0: &[bool],
    shares1: &[bool],
    dealer: Dealer,
) -> Result<(Vec<bool>, ProtocolStats), MpcError> {
    if shares0.len() != circuit.num_inputs() || shares1.len() != circuit.num_inputs() {
        return Err(MpcError::InputLength {
            expected: circuit.num_inputs(),
            got: shares0.len().min(shares1.len()),
        });
    }
    let mut p0 = Party {
        shares: vec![false; circuit.gates().len()],
        triples: dealer.triples.0,
        input_shares: shares0.to_vec(),
    };
    let mut p1 = Party {
        shares: vec![false; circuit.gates().len()],
        triples: dealer.triples.1,
        input_shares: shares1.to_vec(),
    };
    let mut stats = ProtocolStats::default();
    let mut next_triple = 0usize;

    for (i, g) in circuit.gates().iter().enumerate() {
        match *g {
            BGate::Input(idx) => {
                p0.shares[i] = p0.input_shares[idx];
                p1.shares[i] = p1.input_shares[idx];
            }
            BGate::Const(v) => {
                // public constant: party 0 holds it, party 1 holds 0
                p0.shares[i] = v;
                p1.shares[i] = false;
            }
            BGate::Xor(a, b) => {
                p0.shares[i] = p0.shares[a as usize] ^ p0.shares[b as usize];
                p1.shares[i] = p1.shares[a as usize] ^ p1.shares[b as usize];
                stats.free_gates += 1;
            }
            BGate::Not(a) => {
                // negate on one side only
                p0.shares[i] = !p0.shares[a as usize];
                p1.shares[i] = p1.shares[a as usize];
                stats.free_gates += 1;
            }
            BGate::And(a, b) => {
                if next_triple >= p0.triples.len() {
                    return Err(MpcError::OutOfTriples);
                }
                let (d0, e0) =
                    p0.and_open(p0.shares[a as usize], p0.shares[b as usize], next_triple);
                let (d1, e1) =
                    p1.and_open(p1.shares[a as usize], p1.shares[b as usize], next_triple);
                // exchange: both parties learn d = d0^d1, e = e0^e1
                let (d, e) = (d0 ^ d1, e0 ^ e1);
                p0.shares[i] = p0.and_close(d, e, next_triple, false);
                p1.shares[i] = p1.and_close(d, e, next_triple, true);
                next_triple += 1;
                stats.and_gates += 1;
                stats.messages_bits += 4; // two bits each direction
            }
            BGate::AssertFalse(a) => {
                let v = p0.shares[a as usize] ^ p1.shares[a as usize];
                if v {
                    return Err(MpcError::AssertionFailed(i));
                }
            }
        }
    }
    let outputs = circuit
        .outputs()
        .iter()
        .map(|&w| p0.shares[w as usize] ^ p1.shares[w as usize])
        .collect();
    Ok((outputs, stats))
}

/// Garbled-circuit (Yao) cost estimate for a lowered circuit under the
/// half-gates optimization: two 128-bit ciphertexts per AND gate, XOR and
/// NOT free, one round of communication total (the paper's Sec. 1: size
/// drives communication/computation, and garbling needs no interaction
/// beyond input/output transfer).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GarblingCost {
    /// AND gates garbled.
    pub and_gates: u64,
    /// Ciphertexts in the garbled table (2 per AND under half-gates).
    pub ciphertexts: u64,
    /// Table bytes at 128-bit security.
    pub table_bytes: u64,
    /// Wire labels transferred for the evaluator's inputs (one 16-byte
    /// label per input bit; via OT in a real deployment).
    pub input_label_bytes: u64,
}

/// Estimates Yao/half-gates garbling costs for `circuit`.
pub fn garbling_cost(circuit: &qec_circuit::lower::BitCircuit) -> GarblingCost {
    let and_gates = circuit.and_count();
    let ciphertexts = 2 * and_gates;
    GarblingCost {
        and_gates,
        ciphertexts,
        table_bytes: ciphertexts * 16,
        input_label_bytes: circuit.num_inputs() as u64 * 16,
    }
}

/// Convenience: run the full offline + online pipeline on plain inputs,
/// checking against plaintext evaluation. Returns outputs and stats.
pub fn run_two_party(
    circuit: &BitCircuit,
    input_bits: &[bool],
    seed: u64,
) -> Result<(Vec<bool>, ProtocolStats), MpcError> {
    let dealer = Dealer::new(circuit.and_count() as usize, seed);
    let (s0, s1) = share_bits(input_bits, seed.wrapping_add(1));
    evaluate_shared(circuit, &s0, &s1, dealer)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qec_circuit::lower::lower_with;
    use qec_circuit::{Builder, CompileOptions, Mode};

    fn adder_circuit() -> BitCircuit {
        let mut b = Builder::new(Mode::Build);
        let x = b.input();
        let y = b.input();
        let s = b.add(x, y);
        let lt = b.lt(x, y);
        let c = b.finish(vec![s, lt]);
        lower_with(&c, 16, &CompileOptions::sequential())
    }

    #[test]
    fn shared_evaluation_matches_plaintext() {
        let bc = adder_circuit();
        for (x, y) in [(3u64, 5u64), (100, 250), (65535, 1), (0, 0)] {
            let bits = bc.pack_inputs(&[x, y]);
            let plain = bc.evaluate(&bits).unwrap();
            let (shared, stats) = run_two_party(&bc, &bits, 42).unwrap();
            assert_eq!(shared, plain, "inputs ({x}, {y})");
            assert_eq!(stats.and_gates, bc.and_count());
        }
    }

    #[test]
    fn different_seeds_same_result() {
        let bc = adder_circuit();
        let bits = bc.pack_inputs(&[123, 456]);
        let (r1, _) = run_two_party(&bc, &bits, 1).unwrap();
        let (r2, _) = run_two_party(&bc, &bits, 999).unwrap();
        assert_eq!(r1, r2);
    }

    #[test]
    fn shares_alone_reveal_nothing_structural() {
        // sanity: a party's share vector differs across seeds even for the
        // same input (masking is doing something)
        let bc = adder_circuit();
        let bits = bc.pack_inputs(&[7, 9]);
        let (a0, _) = share_bits(&bits, 5);
        let (b0, _) = share_bits(&bits, 6);
        assert_ne!(a0, b0);
        // and shares XOR back to the input
        let (s0, s1) = share_bits(&bits, 7);
        let rec: Vec<bool> = s0.iter().zip(s1.iter()).map(|(&a, &b)| a ^ b).collect();
        assert_eq!(rec, bits);
    }

    #[test]
    fn out_of_triples_detected() {
        let bc = adder_circuit();
        let bits = bc.pack_inputs(&[1, 2]);
        let dealer = Dealer::new(1, 3); // far too few
        let (s0, s1) = share_bits(&bits, 4);
        assert_eq!(
            evaluate_shared(&bc, &s0, &s1, dealer).unwrap_err(),
            MpcError::OutOfTriples
        );
    }

    #[test]
    fn wrong_share_length_detected() {
        let bc = adder_circuit();
        let dealer = Dealer::new(10, 0);
        assert!(matches!(
            evaluate_shared(&bc, &[true], &[false], dealer),
            Err(MpcError::InputLength { .. })
        ));
    }

    #[test]
    fn assertion_gates_surface() {
        let mut b = Builder::new(Mode::Build);
        let x = b.input();
        b.assert_zero(x);
        let c = b.finish(vec![]);
        let bc = lower_with(&c, 4, &CompileOptions::sequential());
        let ok = run_two_party(&bc, &bc.pack_inputs(&[0]), 9);
        assert!(ok.is_ok());
        let bad = run_two_party(&bc, &bc.pack_inputs(&[5]), 9);
        assert!(matches!(bad, Err(MpcError::AssertionFailed(_))));
    }

    #[test]
    fn garbling_cost_accounting() {
        let bc = adder_circuit();
        let g = garbling_cost(&bc);
        assert_eq!(g.and_gates, bc.and_count());
        assert_eq!(g.ciphertexts, 2 * g.and_gates);
        assert_eq!(g.table_bytes, 32 * g.and_gates);
        assert_eq!(g.input_label_bytes, 16 * bc.num_inputs() as u64);
    }

    #[test]
    fn cost_scales_with_and_count() {
        let bc = adder_circuit();
        let bits = bc.pack_inputs(&[11, 22]);
        let (_, stats) = run_two_party(&bc, &bits, 12).unwrap();
        assert_eq!(stats.messages_bits, 4 * stats.and_gates);
        assert!(stats.free_gates > 0);
    }
}
