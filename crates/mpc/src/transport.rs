//! The wire: framed, versioned, checksummed messages and the
//! [`Transport`] trait the protocol speaks through.
//!
//! A frame is laid out like `qec-circuit`'s tape container — magic,
//! version, fixed header, payload, FNV-1a-64 trailer — so a corrupted,
//! truncated, reordered or replayed message is always a **typed** error
//! at the receiver, never a hang or a silently wrong answer:
//!
//! ```text
//! offset  size  field
//!      0     8  FRAME_MAGIC ("QEC2PC\0\0")
//!      8     4  FRAME_VERSION (u32 LE)
//!     12     1  sender role (0 | 1)
//!     13     1  frame kind (Hello | AndLevel | Open)
//!     14     2  reserved (must be 0)
//!     16     4  round index (u32 LE, counts every exchange)
//!     20     4  payload length in bytes (u32 LE)
//!     24     n  payload (little-endian u64 lane words)
//!   24+n     8  FNV-1a-64 over bytes [0, 24+n)
//! ```
//!
//! Transports move whole frames; they never interpret payloads. The
//! in-process [`Duplex`] pair and the blocking [`TcpTransport`] are
//! interchangeable behind the trait, and [`FaultTransport`] wraps
//! either to inject faults for the failure-path test suite.

use crate::MpcError;
use qec_circuit::fnv1a64;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::sync::mpsc;
use std::time::{Duration, Instant};

/// Magic prefix of every wire frame.
pub const FRAME_MAGIC: [u8; 8] = *b"QEC2PC\0\0";
/// Version of the frame layout; bumped on any incompatible change.
pub const FRAME_VERSION: u32 = 1;
/// Fixed header bytes before the payload.
pub const FRAME_HEADER_BYTES: usize = 24;
/// Checksum trailer bytes after the payload.
pub const FRAME_TRAILER_BYTES: usize = 8;
/// Upper bound on a frame payload (1 GiB) — a length field beyond this
/// is treated as corruption, not as an allocation request.
pub const MAX_FRAME_PAYLOAD: u32 = 1 << 30;

/// Default time a party waits on its peer before giving up with
/// [`MpcError::PeerTimeout`].
pub const DEFAULT_TIMEOUT: Duration = Duration::from_secs(10);

/// Which of the two parties this endpoint is.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Role {
    /// Party 0: sends first in every exchange, holds public constants.
    P0,
    /// Party 1: receives first, applies the `d·e` completion term.
    P1,
}

impl Role {
    /// The other party.
    pub fn peer(self) -> Role {
        match self {
            Role::P0 => Role::P1,
            Role::P1 => Role::P0,
        }
    }

    /// 0 or 1.
    pub fn index(self) -> usize {
        match self {
            Role::P0 => 0,
            Role::P1 => 1,
        }
    }

    fn from_u8(v: u8) -> Option<Role> {
        match v {
            0 => Some(Role::P0),
            1 => Some(Role::P1),
            _ => None,
        }
    }
}

impl std::fmt::Display for Role {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "P{}", self.index())
    }
}

/// What a frame carries.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FrameKind {
    /// Session handshake: tape fingerprint and batch geometry.
    Hello,
    /// One AND level's packed `(d, e)` mask words — the per-round
    /// message of the GMW online phase.
    AndLevel,
    /// Output-share and deferred assert-share opening for one block.
    Open,
}

impl FrameKind {
    fn to_u8(self) -> u8 {
        match self {
            FrameKind::Hello => 0,
            FrameKind::AndLevel => 1,
            FrameKind::Open => 2,
        }
    }

    fn from_u8(v: u8) -> Option<FrameKind> {
        match v {
            0 => Some(FrameKind::Hello),
            1 => Some(FrameKind::AndLevel),
            2 => Some(FrameKind::Open),
            _ => None,
        }
    }
}

/// One decoded wire frame.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Frame {
    /// Sender's role.
    pub role: Role,
    /// Message kind.
    pub kind: FrameKind,
    /// Exchange counter (every send/recv pair increments it; both
    /// parties must agree at all times).
    pub round: u32,
    /// Payload lane words.
    pub words: Vec<u64>,
}

impl Frame {
    /// Builds a frame over `words` (copied).
    pub fn new(role: Role, kind: FrameKind, round: u32, words: &[u64]) -> Frame {
        Frame {
            role,
            kind,
            round,
            words: words.to_vec(),
        }
    }

    /// Serializes header + payload + checksum trailer.
    pub fn encode(&self) -> Vec<u8> {
        let payload_len = self.words.len() * 8;
        let mut out = Vec::with_capacity(FRAME_HEADER_BYTES + payload_len + FRAME_TRAILER_BYTES);
        out.extend_from_slice(&FRAME_MAGIC);
        out.extend_from_slice(&FRAME_VERSION.to_le_bytes());
        out.push(self.role.index() as u8);
        out.push(self.kind.to_u8());
        out.extend_from_slice(&[0u8; 2]);
        out.extend_from_slice(&self.round.to_le_bytes());
        out.extend_from_slice(&(payload_len as u32).to_le_bytes());
        for w in &self.words {
            out.extend_from_slice(&w.to_le_bytes());
        }
        let sum = fnv1a64(&out);
        out.extend_from_slice(&sum.to_le_bytes());
        out
    }

    /// Parses and fully validates an encoded frame: magic, version,
    /// reserved bytes, length consistency and checksum. Every corruption
    /// mode maps to a distinct [`MpcError`].
    pub fn decode(bytes: &[u8]) -> Result<Frame, MpcError> {
        if bytes.len() < FRAME_HEADER_BYTES + FRAME_TRAILER_BYTES {
            return Err(MpcError::ShortRead);
        }
        if bytes[..8] != FRAME_MAGIC {
            return Err(MpcError::BadMagic);
        }
        let version = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
        if version != FRAME_VERSION {
            return Err(MpcError::BadVersion { got: version });
        }
        let payload_len = u32::from_le_bytes(bytes[20..24].try_into().unwrap());
        if payload_len > MAX_FRAME_PAYLOAD {
            return Err(MpcError::BadFrame("payload length exceeds frame bound"));
        }
        if !(payload_len as usize).is_multiple_of(8) {
            return Err(MpcError::BadFrame("payload not whole lane words"));
        }
        let total = FRAME_HEADER_BYTES + payload_len as usize + FRAME_TRAILER_BYTES;
        if bytes.len() < total {
            return Err(MpcError::ShortRead);
        }
        if bytes.len() > total {
            return Err(MpcError::BadFrame("trailing bytes after frame"));
        }
        let body = &bytes[..total - FRAME_TRAILER_BYTES];
        let sum = u64::from_le_bytes(bytes[total - FRAME_TRAILER_BYTES..].try_into().unwrap());
        if fnv1a64(body) != sum {
            return Err(MpcError::BadChecksum);
        }
        if bytes[14] != 0 || bytes[15] != 0 {
            return Err(MpcError::BadFrame("reserved header bytes set"));
        }
        let role = Role::from_u8(bytes[12]).ok_or(MpcError::BadFrame("unknown sender role"))?;
        let kind = FrameKind::from_u8(bytes[13]).ok_or(MpcError::BadFrame("unknown frame kind"))?;
        let round = u32::from_le_bytes(bytes[16..20].try_into().unwrap());
        let words = bytes[FRAME_HEADER_BYTES..total - FRAME_TRAILER_BYTES]
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
            .collect();
        Ok(Frame {
            role,
            kind,
            round,
            words,
        })
    }
}

/// A synchronous, message-oriented pipe to the peer. Implementations
/// move opaque encoded frames; all interpretation (and all protocol
/// validation) happens above, in [`Frame::decode`] and the session.
pub trait Transport {
    /// Delivers one encoded frame to the peer.
    fn send(&mut self, frame: &[u8]) -> Result<(), MpcError>;

    /// Blocks for the peer's next frame, bounded by the transport's
    /// timeout ([`MpcError::PeerTimeout`] on expiry, never forever).
    fn recv(&mut self) -> Result<Vec<u8>, MpcError>;
}

impl<T: Transport + ?Sized> Transport for &mut T {
    fn send(&mut self, frame: &[u8]) -> Result<(), MpcError> {
        (**self).send(frame)
    }
    fn recv(&mut self) -> Result<Vec<u8>, MpcError> {
        (**self).recv()
    }
}

impl<T: Transport + ?Sized> Transport for Box<T> {
    fn send(&mut self, frame: &[u8]) -> Result<(), MpcError> {
        (**self).send(frame)
    }
    fn recv(&mut self) -> Result<Vec<u8>, MpcError> {
        (**self).recv()
    }
}

/// In-process transport: one end of a pair of bounded-wait channels.
/// The two halves returned by [`Duplex::pair`] are handed to the two
/// party threads; message boundaries are preserved exactly.
pub struct Duplex {
    tx: mpsc::Sender<Vec<u8>>,
    rx: mpsc::Receiver<Vec<u8>>,
    timeout: Duration,
}

impl Duplex {
    /// A connected pair of endpoints with the default peer timeout.
    pub fn pair() -> (Duplex, Duplex) {
        Duplex::pair_with_timeout(DEFAULT_TIMEOUT)
    }

    /// A connected pair with an explicit peer timeout.
    pub fn pair_with_timeout(timeout: Duration) -> (Duplex, Duplex) {
        let (tx_a, rx_b) = mpsc::channel();
        let (tx_b, rx_a) = mpsc::channel();
        (
            Duplex {
                tx: tx_a,
                rx: rx_a,
                timeout,
            },
            Duplex {
                tx: tx_b,
                rx: rx_b,
                timeout,
            },
        )
    }
}

impl Transport for Duplex {
    fn send(&mut self, frame: &[u8]) -> Result<(), MpcError> {
        self.tx
            .send(frame.to_vec())
            .map_err(|_| MpcError::PeerClosed)
    }

    fn recv(&mut self) -> Result<Vec<u8>, MpcError> {
        match self.rx.recv_timeout(self.timeout) {
            Ok(v) => Ok(v),
            Err(mpsc::RecvTimeoutError::Timeout) => Err(MpcError::PeerTimeout),
            Err(mpsc::RecvTimeoutError::Disconnected) => Err(MpcError::PeerClosed),
        }
    }
}

/// Blocking TCP transport. Frames are length-delimited by their own
/// header: `recv` reads the fixed header, validates magic and payload
/// bound, then reads exactly payload + trailer. Read/write timeouts on
/// the socket bound every wait.
pub struct TcpTransport {
    stream: TcpStream,
}

impl TcpTransport {
    /// Wraps an accepted/connected stream, arming its timeouts and
    /// disabling Nagle (the protocol is strictly request-response; a
    /// delayed small frame would stall a whole round).
    pub fn from_stream(stream: TcpStream, timeout: Duration) -> Result<TcpTransport, MpcError> {
        let io = |e: std::io::Error| MpcError::Io(e.to_string());
        stream.set_read_timeout(Some(timeout)).map_err(io)?;
        stream.set_write_timeout(Some(timeout)).map_err(io)?;
        stream.set_nodelay(true).map_err(io)?;
        Ok(TcpTransport { stream })
    }

    /// Connects to a listening peer, retrying until `timeout` so the
    /// two processes need not start in a fixed order.
    pub fn connect<A: ToSocketAddrs + Clone>(
        addr: A,
        timeout: Duration,
    ) -> Result<TcpTransport, MpcError> {
        let deadline = Instant::now() + timeout;
        loop {
            match TcpStream::connect(addr.clone()) {
                Ok(s) => return TcpTransport::from_stream(s, timeout),
                Err(e) => {
                    if Instant::now() >= deadline {
                        return Err(MpcError::Io(format!("connect: {e}")));
                    }
                    std::thread::sleep(Duration::from_millis(20));
                }
            }
        }
    }

    /// Accepts one peer connection on `listener`.
    pub fn accept(listener: &TcpListener, timeout: Duration) -> Result<TcpTransport, MpcError> {
        let (stream, _) = listener
            .accept()
            .map_err(|e| MpcError::Io(format!("accept: {e}")))?;
        TcpTransport::from_stream(stream, timeout)
    }

    fn read_full(&mut self, buf: &mut [u8], at_frame_start: bool) -> Result<(), MpcError> {
        let mut got = 0usize;
        while got < buf.len() {
            match self.stream.read(&mut buf[got..]) {
                Ok(0) => {
                    return Err(if got == 0 && at_frame_start {
                        MpcError::PeerClosed
                    } else {
                        MpcError::ShortRead
                    });
                }
                Ok(n) => got += n,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    return Err(MpcError::PeerTimeout);
                }
                Err(e) => return Err(MpcError::Io(e.to_string())),
            }
        }
        Ok(())
    }
}

impl Transport for TcpTransport {
    fn send(&mut self, frame: &[u8]) -> Result<(), MpcError> {
        self.stream.write_all(frame).map_err(|e| match e.kind() {
            std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => MpcError::PeerTimeout,
            std::io::ErrorKind::BrokenPipe | std::io::ErrorKind::ConnectionReset => {
                MpcError::PeerClosed
            }
            _ => MpcError::Io(e.to_string()),
        })
    }

    fn recv(&mut self) -> Result<Vec<u8>, MpcError> {
        let mut head = [0u8; FRAME_HEADER_BYTES];
        self.read_full(&mut head, true)?;
        if head[..8] != FRAME_MAGIC {
            return Err(MpcError::BadMagic);
        }
        let payload_len = u32::from_le_bytes(head[20..24].try_into().unwrap());
        if payload_len > MAX_FRAME_PAYLOAD {
            return Err(MpcError::BadFrame("payload length exceeds frame bound"));
        }
        let mut frame = vec![0u8; FRAME_HEADER_BYTES + payload_len as usize + FRAME_TRAILER_BYTES];
        frame[..FRAME_HEADER_BYTES].copy_from_slice(&head);
        self.read_full(&mut frame[FRAME_HEADER_BYTES..], false)?;
        Ok(frame)
    }
}

/// A single fault to inject at one point in the send stream.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Fault {
    /// Swallow the frame entirely.
    Drop,
    /// Deliver the frame twice.
    Duplicate,
    /// Deliver only the first `n` bytes.
    Truncate(usize),
    /// XOR `0x80` into the byte at this offset (mod frame length).
    Corrupt(usize),
    /// Hold this frame back and deliver it after the next one.
    Reorder,
}

/// Wraps any [`Transport`] and sabotages selected outgoing frames —
/// the adversary/flaky-network simulator for the fault test suite. The
/// receiving side must always fail with a typed [`MpcError`].
pub struct FaultTransport<T: Transport> {
    inner: T,
    faults: Vec<(u64, Fault)>,
    sent: u64,
    held: Option<Vec<u8>>,
}

impl<T: Transport> FaultTransport<T> {
    /// A transparent wrapper (no faults yet).
    pub fn new(inner: T) -> FaultTransport<T> {
        FaultTransport {
            inner,
            faults: Vec::new(),
            sent: 0,
            held: None,
        }
    }

    /// Schedules `fault` for the `at`-th outgoing frame (0-based).
    pub fn inject(mut self, at: u64, fault: Fault) -> FaultTransport<T> {
        self.faults.push((at, fault));
        self
    }
}

impl<T: Transport> Transport for FaultTransport<T> {
    fn send(&mut self, frame: &[u8]) -> Result<(), MpcError> {
        let idx = self.sent;
        self.sent += 1;
        let fault = self
            .faults
            .iter()
            .find(|(at, _)| *at == idx)
            .map(|(_, f)| *f);
        match fault {
            None => self.inner.send(frame)?,
            Some(Fault::Drop) => {}
            Some(Fault::Duplicate) => {
                self.inner.send(frame)?;
                self.inner.send(frame)?;
            }
            Some(Fault::Truncate(n)) => {
                self.inner.send(&frame[..n.min(frame.len())])?;
            }
            Some(Fault::Corrupt(off)) => {
                let mut bad = frame.to_vec();
                let i = off % bad.len();
                bad[i] ^= 0x80;
                self.inner.send(&bad)?;
            }
            Some(Fault::Reorder) => {
                self.held = Some(frame.to_vec());
                return Ok(());
            }
        }
        if let Some(held) = self.held.take() {
            self.inner.send(&held)?;
        }
        Ok(())
    }

    fn recv(&mut self) -> Result<Vec<u8>, MpcError> {
        self.inner.recv()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip() {
        let f = Frame::new(Role::P1, FrameKind::AndLevel, 7, &[1, u64::MAX, 42]);
        let bytes = f.encode();
        assert_eq!(bytes.len(), FRAME_HEADER_BYTES + 24 + FRAME_TRAILER_BYTES);
        assert_eq!(Frame::decode(&bytes).unwrap(), f);
        let empty = Frame::new(Role::P0, FrameKind::Hello, 0, &[]);
        assert_eq!(Frame::decode(&empty.encode()).unwrap(), empty);
    }

    #[test]
    fn decode_rejects_every_corruption_mode() {
        let good = Frame::new(Role::P0, FrameKind::Open, 3, &[5, 6]).encode();
        assert_eq!(Frame::decode(&good[..10]).unwrap_err(), MpcError::ShortRead);
        assert_eq!(
            Frame::decode(&good[..good.len() - 3]).unwrap_err(),
            MpcError::ShortRead
        );

        let mut bad = good.clone();
        bad[0] ^= 1;
        assert_eq!(Frame::decode(&bad).unwrap_err(), MpcError::BadMagic);

        let mut bad = good.clone();
        bad[8] = 9;
        assert_eq!(
            Frame::decode(&bad).unwrap_err(),
            MpcError::BadVersion { got: 9 }
        );

        let mut bad = good.clone();
        bad[30] ^= 0x40; // payload byte
        assert_eq!(Frame::decode(&bad).unwrap_err(), MpcError::BadChecksum);

        let mut bad = good.clone();
        let last = bad.len() - 1;
        bad[last] ^= 1; // trailer byte
        assert_eq!(Frame::decode(&bad).unwrap_err(), MpcError::BadChecksum);

        let mut long = good.clone();
        long.push(0);
        assert!(matches!(
            Frame::decode(&long).unwrap_err(),
            MpcError::BadFrame(_)
        ));
    }

    #[test]
    fn duplex_preserves_message_boundaries_and_times_out() {
        let (mut a, mut b) = Duplex::pair_with_timeout(Duration::from_millis(30));
        a.send(&[1, 2, 3]).unwrap();
        a.send(&[4]).unwrap();
        assert_eq!(b.recv().unwrap(), vec![1, 2, 3]);
        assert_eq!(b.recv().unwrap(), vec![4]);
        assert_eq!(b.recv().unwrap_err(), MpcError::PeerTimeout);
        drop(b);
        assert_eq!(a.recv().unwrap_err(), MpcError::PeerClosed);
    }

    #[test]
    fn tcp_round_trips_frames() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let timeout = Duration::from_secs(2);
        let t = std::thread::spawn(move || {
            let mut peer = TcpTransport::connect(addr, timeout).unwrap();
            let f = Frame::new(Role::P1, FrameKind::Hello, 0, &[9, 8, 7]);
            peer.send(&f.encode()).unwrap();
            Frame::decode(&peer.recv().unwrap()).unwrap()
        });
        let mut me = TcpTransport::accept(&listener, timeout).unwrap();
        let got = Frame::decode(&me.recv().unwrap()).unwrap();
        assert_eq!(got.words, vec![9, 8, 7]);
        let reply = Frame::new(Role::P0, FrameKind::Hello, 0, &[1]);
        me.send(&reply.encode()).unwrap();
        assert_eq!(t.join().unwrap(), reply);
    }

    #[test]
    fn tcp_peer_close_and_silence_are_typed() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let timeout = Duration::from_millis(50);
        let client = TcpStream::connect(addr).unwrap();
        let mut me = TcpTransport::accept(&listener, timeout).unwrap();
        assert_eq!(me.recv().unwrap_err(), MpcError::PeerTimeout);
        drop(client);
        assert_eq!(me.recv().unwrap_err(), MpcError::PeerClosed);
    }

    #[test]
    fn fault_transport_sabotages_selected_frames() {
        let (a, mut b) = Duplex::pair_with_timeout(Duration::from_millis(20));
        let mut a = FaultTransport::new(a)
            .inject(0, Fault::Drop)
            .inject(1, Fault::Truncate(5))
            .inject(2, Fault::Corrupt(3))
            .inject(3, Fault::Reorder);
        let f = Frame::new(Role::P0, FrameKind::AndLevel, 1, &[11]).encode();
        a.send(&f).unwrap(); // dropped
        assert_eq!(b.recv().unwrap_err(), MpcError::PeerTimeout);
        a.send(&f).unwrap(); // truncated
        assert_eq!(
            Frame::decode(&b.recv().unwrap()).unwrap_err(),
            MpcError::ShortRead
        );
        a.send(&f).unwrap(); // corrupted
        assert!(Frame::decode(&b.recv().unwrap()).is_err());
        a.send(&f).unwrap(); // held
        let g = Frame::new(Role::P0, FrameKind::AndLevel, 2, &[22]).encode();
        a.send(&g).unwrap(); // delivered before the held frame
        assert_eq!(Frame::decode(&b.recv().unwrap()).unwrap().round, 2);
        assert_eq!(Frame::decode(&b.recv().unwrap()).unwrap().round, 1);
    }
}
