//! The trusted dealer (offline phase): Beaver triple generation, the
//! [`TripleSource`] streaming-consumption seam, and a file format for
//! shipping each party its correlated triple shares.

use crate::share::TripleShare;
use crate::transport::Role;
use crate::MpcError;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::io::{Read, Write};

/// The trusted dealer's offline output: correlated triple shares.
pub struct Dealer {
    pub(crate) triples: (Vec<TripleShare>, Vec<TripleShare>),
}

impl Dealer {
    /// Prepares `n` multiplication triples (deterministic in `seed`).
    pub fn new(n: usize, seed: u64) -> Dealer {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut p0 = Vec::with_capacity(n);
        let mut p1 = Vec::with_capacity(n);
        for _ in 0..n {
            let (a, b) = (rng.gen::<bool>(), rng.gen::<bool>());
            let c = a & b;
            let (a0, b0, c0) = (rng.gen::<bool>(), rng.gen::<bool>(), rng.gen::<bool>());
            p0.push(TripleShare {
                a: a0,
                b: b0,
                c: c0,
            });
            p1.push(TripleShare {
                a: a ^ a0,
                b: b ^ b0,
                c: c ^ c0,
            });
        }
        Dealer { triples: (p0, p1) }
    }
}

/// The trusted dealer's offline output for the *batched* protocol:
/// transposed triple shares, `words` lane words per packed AND step
/// (64 triples per word — the dealer hands out `words × 64` scalar
/// triples every time the tape executes one AND instruction).
///
/// Layout per step `s` and party: `[a₀..a_w, b₀..b_w, c₀..c_w]` at
/// offset `s × 3 × words`, with `a ∧ b = c` lane-wise across parties.
pub struct PackedDealer {
    pub(crate) words: usize,
    pub(crate) p0: Vec<u64>,
    pub(crate) p1: Vec<u64>,
}

impl PackedDealer {
    /// Prepares `steps` packed AND steps of `words` lane words each
    /// (deterministic in `seed`). A batch of `B` instances over a
    /// circuit with `A` AND instructions needs
    /// `A × ceil(B / (words × 64))` steps — one fresh packed triple per
    /// AND per block; triples are never reused across blocks.
    pub fn new(steps: usize, words: usize, seed: u64) -> PackedDealer {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut p0 = Vec::with_capacity(steps * 3 * words);
        let mut p1 = Vec::with_capacity(steps * 3 * words);
        fn split(rng: &mut StdRng, plain: &[u64], p0: &mut Vec<u64>, p1: &mut Vec<u64>) {
            for &v in plain {
                let m = rng.gen::<u64>();
                p0.push(m);
                p1.push(v ^ m);
            }
        }
        let mut a = vec![0u64; words];
        let mut b = vec![0u64; words];
        let mut c = vec![0u64; words];
        for _ in 0..steps {
            for w in 0..words {
                a[w] = rng.gen::<u64>();
                b[w] = rng.gen::<u64>();
                c[w] = a[w] & b[w];
            }
            split(&mut rng, &a, &mut p0, &mut p1);
            split(&mut rng, &b, &mut p0, &mut p1);
            split(&mut rng, &c, &mut p0, &mut p1);
        }
        PackedDealer { words, p0, p1 }
    }

    /// Lane words per packed step.
    pub fn words(&self) -> usize {
        self.words
    }

    /// Packed AND steps prepared.
    pub fn steps(&self) -> usize {
        self.p0.len() / (3 * self.words)
    }

    /// Splits the dealer into the two parties' triple streams — what
    /// each [`Session`](crate::Session) consumes independently.
    pub fn split(self) -> (TripleVec, TripleVec) {
        (
            TripleVec {
                words: self.words,
                data: self.p0,
                pos: 0,
            },
            TripleVec {
                words: self.words,
                data: self.p1,
                pos: 0,
            },
        )
    }

    /// One party's triple stream, leaving the dealer intact (clones the
    /// share words).
    pub fn for_role(&self, role: Role) -> TripleVec {
        TripleVec {
            words: self.words,
            data: match role {
                Role::P0 => self.p0.clone(),
                Role::P1 => self.p1.clone(),
            },
            pos: 0,
        }
    }
}

/// A party-local stream of packed Beaver triples, consumed one AND step
/// at a time by the online protocol. Today's implementations come from
/// the trusted dealer (in memory or on disk); an OT-extension producer
/// plugs in behind the same seam without touching the protocol layer.
pub trait TripleSource {
    /// Lane words per packed step (every step yields `words() × 64`
    /// scalar triples).
    fn words(&self) -> usize;

    /// Copies this party's next packed triple step into `(a, b, c)` —
    /// each `words()` lane words long. Fails with
    /// [`MpcError::OutOfTriples`] when the stream is exhausted.
    fn next_step(&mut self, a: &mut [u64], b: &mut [u64], c: &mut [u64]) -> Result<(), MpcError>;
}

impl<S: TripleSource + ?Sized> TripleSource for Box<S> {
    fn words(&self) -> usize {
        (**self).words()
    }
    fn next_step(&mut self, a: &mut [u64], b: &mut [u64], c: &mut [u64]) -> Result<(), MpcError> {
        (**self).next_step(a, b, c)
    }
}

/// An in-memory [`TripleSource`]: one party's half of a
/// [`PackedDealer`].
pub struct TripleVec {
    words: usize,
    data: Vec<u64>,
    pos: usize,
}

impl TripleSource for TripleVec {
    fn words(&self) -> usize {
        self.words
    }

    fn next_step(&mut self, a: &mut [u64], b: &mut [u64], c: &mut [u64]) -> Result<(), MpcError> {
        let w = self.words;
        if self.pos + 3 * w > self.data.len() {
            return Err(MpcError::OutOfTriples);
        }
        a[..w].copy_from_slice(&self.data[self.pos..self.pos + w]);
        b[..w].copy_from_slice(&self.data[self.pos + w..self.pos + 2 * w]);
        c[..w].copy_from_slice(&self.data[self.pos + 2 * w..self.pos + 3 * w]);
        self.pos += 3 * w;
        Ok(())
    }
}

/// Magic prefix of a triple file (the dealer's on-disk hand-off).
pub const TRIPLE_MAGIC: [u8; 8] = *b"QECTRIP\0";
/// Version of the triple-file layout.
pub const TRIPLE_VERSION: u32 = 1;

/// Writes one party's triple stream: `TRIPLE_MAGIC`, version, `words`
/// (u32), `steps` (u64), then `steps × 3 × words` little-endian lane
/// words.
pub fn write_triples<W: Write>(out: &mut W, words: usize, shares: &[u64]) -> Result<(), MpcError> {
    let steps = shares.len() / (3 * words);
    let io = |e: std::io::Error| MpcError::Io(e.to_string());
    out.write_all(&TRIPLE_MAGIC).map_err(io)?;
    out.write_all(&TRIPLE_VERSION.to_le_bytes()).map_err(io)?;
    out.write_all(&(words as u32).to_le_bytes()).map_err(io)?;
    out.write_all(&(steps as u64).to_le_bytes()).map_err(io)?;
    for &w in shares {
        out.write_all(&w.to_le_bytes()).map_err(io)?;
    }
    Ok(())
}

/// Runs the dealer offline and writes both parties' triple files (the
/// two-terminal deployment: generate once, ship one file to each
/// party).
pub fn write_triple_files(
    path0: &std::path::Path,
    path1: &std::path::Path,
    steps: usize,
    words: usize,
    seed: u64,
) -> Result<(), MpcError> {
    let io = |e: std::io::Error| MpcError::Io(e.to_string());
    let dealer = PackedDealer::new(steps, words, seed);
    let mut f0 = std::io::BufWriter::new(std::fs::File::create(path0).map_err(io)?);
    let mut f1 = std::io::BufWriter::new(std::fs::File::create(path1).map_err(io)?);
    write_triples(&mut f0, words, &dealer.p0)?;
    write_triples(&mut f1, words, &dealer.p1)?;
    f0.flush().map_err(io)?;
    f1.flush().map_err(io)?;
    Ok(())
}

/// A [`TripleSource`] streaming packed triples from an `io::Read` (a
/// dealer file): only one step is resident at a time, so triple storage
/// never has to fit in memory.
pub struct TripleStream<R: Read> {
    reader: R,
    words: usize,
    remaining: u64,
}

impl<R: Read> TripleStream<R> {
    /// Parses the header and positions the stream at the first step.
    pub fn new(mut reader: R) -> Result<TripleStream<R>, MpcError> {
        let io = |e: std::io::Error| match e.kind() {
            std::io::ErrorKind::UnexpectedEof => MpcError::ShortRead,
            _ => MpcError::Io(e.to_string()),
        };
        let mut magic = [0u8; 8];
        reader.read_exact(&mut magic).map_err(io)?;
        if magic != TRIPLE_MAGIC {
            return Err(MpcError::BadMagic);
        }
        let mut b4 = [0u8; 4];
        reader.read_exact(&mut b4).map_err(io)?;
        let version = u32::from_le_bytes(b4);
        if version != TRIPLE_VERSION {
            return Err(MpcError::BadVersion { got: version });
        }
        reader.read_exact(&mut b4).map_err(io)?;
        let words = u32::from_le_bytes(b4) as usize;
        let mut b8 = [0u8; 8];
        reader.read_exact(&mut b8).map_err(io)?;
        let remaining = u64::from_le_bytes(b8);
        if words == 0 {
            return Err(MpcError::BadFrame("triple file with zero lane words"));
        }
        Ok(TripleStream {
            reader,
            words,
            remaining,
        })
    }

    /// Steps left in the stream.
    pub fn remaining(&self) -> u64 {
        self.remaining
    }

    fn read_words(&mut self, out: &mut [u64]) -> Result<(), MpcError> {
        let mut b8 = [0u8; 8];
        for w in out.iter_mut().take(self.words) {
            self.reader
                .read_exact(&mut b8)
                .map_err(|e| match e.kind() {
                    std::io::ErrorKind::UnexpectedEof => MpcError::ShortRead,
                    _ => MpcError::Io(e.to_string()),
                })?;
            *w = u64::from_le_bytes(b8);
        }
        Ok(())
    }
}

impl TripleStream<std::io::BufReader<std::fs::File>> {
    /// Opens a triple file written by [`write_triple_files`].
    pub fn open(path: &std::path::Path) -> Result<Self, MpcError> {
        let f = std::fs::File::open(path).map_err(|e| MpcError::Io(e.to_string()))?;
        TripleStream::new(std::io::BufReader::new(f))
    }
}

impl<R: Read> TripleSource for TripleStream<R> {
    fn words(&self) -> usize {
        self.words
    }

    fn next_step(&mut self, a: &mut [u64], b: &mut [u64], c: &mut [u64]) -> Result<(), MpcError> {
        if self.remaining == 0 {
            return Err(MpcError::OutOfTriples);
        }
        self.read_words(a)?;
        self.read_words(b)?;
        self.read_words(c)?;
        self.remaining -= 1;
        Ok(())
    }
}

/// An *insecure* triple source for demos and loopback benchmarking:
/// both parties derive correlated shares from a **common** seed, so no
/// dealer file transfer is needed — and anyone holding the seed can
/// reconstruct every triple. Never use outside a trust-both-ends test.
pub struct InsecureSeedTriples {
    rng: StdRng,
    words: usize,
    role: Role,
}

impl InsecureSeedTriples {
    /// Both parties must construct this with the **same** seed.
    pub fn new(words: usize, seed: u64, role: Role) -> InsecureSeedTriples {
        InsecureSeedTriples {
            rng: StdRng::seed_from_u64(seed),
            words,
            role,
        }
    }
}

impl TripleSource for InsecureSeedTriples {
    fn words(&self) -> usize {
        self.words
    }

    fn next_step(&mut self, a: &mut [u64], b: &mut [u64], c: &mut [u64]) -> Result<(), MpcError> {
        // Mirrors PackedDealer::new's per-step draw order so both
        // parties stay in lockstep: plain (a, b) then the mask of each
        // component in a/b/c order.
        let w = self.words;
        let mut pa = vec![0u64; w];
        let mut pb = vec![0u64; w];
        for i in 0..w {
            pa[i] = self.rng.gen::<u64>();
            pb[i] = self.rng.gen::<u64>();
        }
        for i in 0..w {
            let m = self.rng.gen::<u64>();
            a[i] = if self.role == Role::P0 { m } else { pa[i] ^ m };
        }
        for i in 0..w {
            let m = self.rng.gen::<u64>();
            b[i] = if self.role == Role::P0 { m } else { pb[i] ^ m };
        }
        for i in 0..w {
            let m = self.rng.gen::<u64>();
            let c_plain = pa[i] & pb[i];
            c[i] = if self.role == Role::P0 {
                m
            } else {
                c_plain ^ m
            };
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_streams_match_dealer_layout() {
        let dealer = PackedDealer::new(3, 2, 17);
        let (p0, p1) = (dealer.p0.clone(), dealer.p1.clone());
        let (mut t0, mut t1) = dealer.split();
        let (mut a, mut b, mut c) = (vec![0u64; 2], vec![0u64; 2], vec![0u64; 2]);
        for s in 0..3 {
            t0.next_step(&mut a, &mut b, &mut c).unwrap();
            assert_eq!(a, p0[s * 6..s * 6 + 2]);
            assert_eq!(c, p0[s * 6 + 4..s * 6 + 6]);
            t1.next_step(&mut a, &mut b, &mut c).unwrap();
            assert_eq!(b, p1[s * 6 + 2..s * 6 + 4]);
        }
        assert_eq!(
            t0.next_step(&mut a, &mut b, &mut c).unwrap_err(),
            MpcError::OutOfTriples
        );
    }

    #[test]
    fn triple_files_round_trip_and_stay_correlated() {
        let dir = std::env::temp_dir().join(format!("qec-triples-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let (f0, f1) = (dir.join("p0.triples"), dir.join("p1.triples"));
        write_triple_files(&f0, &f1, 4, 1, 99).unwrap();
        let mut s0 = TripleStream::open(&f0).unwrap();
        let mut s1 = TripleStream::open(&f1).unwrap();
        assert_eq!((s0.words(), s0.remaining()), (1, 4));
        let (mut a0, mut b0, mut c0) = ([0u64], [0u64], [0u64]);
        let (mut a1, mut b1, mut c1) = ([0u64], [0u64], [0u64]);
        for _ in 0..4 {
            s0.next_step(&mut a0, &mut b0, &mut c0).unwrap();
            s1.next_step(&mut a1, &mut b1, &mut c1).unwrap();
            assert_eq!((a0[0] ^ a1[0]) & (b0[0] ^ b1[0]), c0[0] ^ c1[0]);
        }
        assert_eq!(
            s0.next_step(&mut a0, &mut b0, &mut c0).unwrap_err(),
            MpcError::OutOfTriples
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn truncated_triple_file_is_a_short_read() {
        let dealer = PackedDealer::new(2, 1, 5);
        let mut buf = Vec::new();
        write_triples(&mut buf, 1, &dealer.p0).unwrap();
        buf.truncate(buf.len() - 4);
        let mut s = TripleStream::new(std::io::Cursor::new(buf)).unwrap();
        let (mut a, mut b, mut c) = ([0u64], [0u64], [0u64]);
        s.next_step(&mut a, &mut b, &mut c).unwrap();
        assert_eq!(
            s.next_step(&mut a, &mut b, &mut c).unwrap_err(),
            MpcError::ShortRead
        );
    }

    #[test]
    fn insecure_seed_triples_are_correlated() {
        let mut t0 = InsecureSeedTriples::new(2, 123, Role::P0);
        let mut t1 = InsecureSeedTriples::new(2, 123, Role::P1);
        let (mut a0, mut b0, mut c0) = (vec![0u64; 2], vec![0u64; 2], vec![0u64; 2]);
        let (mut a1, mut b1, mut c1) = (vec![0u64; 2], vec![0u64; 2], vec![0u64; 2]);
        for _ in 0..8 {
            t0.next_step(&mut a0, &mut b0, &mut c0).unwrap();
            t1.next_step(&mut a1, &mut b1, &mut c1).unwrap();
            for w in 0..2 {
                assert_eq!((a0[w] ^ a1[w]) & (b0[w] ^ b1[w]), c0[w] ^ c1[w]);
            }
        }
    }
}
