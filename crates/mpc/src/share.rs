//! XOR secret sharing of inputs and the transposed share packing the
//! batched protocol runs on.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One Beaver triple share: `(a, b, c)` with `c = a ∧ b` across parties.
#[derive(Clone, Copy, Debug)]
pub struct TripleShare {
    /// Share of `a`.
    pub a: bool,
    /// Share of `b`.
    pub b: bool,
    /// Share of `c = a ∧ b`.
    pub c: bool,
}

/// Secret-shares a bit vector between the two parties.
pub fn share_bits(bits: &[bool], seed: u64) -> (Vec<bool>, Vec<bool>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let s0: Vec<bool> = bits.iter().map(|_| rng.gen()).collect();
    let s1: Vec<bool> = bits.iter().zip(s0.iter()).map(|(&v, &m)| v ^ m).collect();
    (s0, s1)
}

/// [`share_bits`] over a whole batch: one `(share0, share1)` pair per
/// instance, masks drawn from a single seeded stream.
pub fn share_instances(instances: &[Vec<bool>], seed: u64) -> (Vec<Vec<bool>>, Vec<Vec<bool>>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut shares0 = Vec::with_capacity(instances.len());
    let mut shares1 = Vec::with_capacity(instances.len());
    for inst in instances {
        let s0: Vec<bool> = inst.iter().map(|_| rng.gen()).collect();
        let s1: Vec<bool> = inst.iter().zip(&s0).map(|(&v, &m)| v ^ m).collect();
        shares0.push(s0);
        shares1.push(s1);
    }
    (shares0, shares1)
}

/// Transposes one block of share vectors into input-major lane words.
/// Wrong-arity instances contribute zeros; their lanes are reported as
/// [`MpcError::InputLength`](crate::MpcError::InputLength) and never
/// read back.
pub(crate) fn pack_share_block(
    block: &[Vec<bool>],
    num_inputs: usize,
    words: usize,
    out: &mut [u64],
) {
    out.fill(0);
    for (l, inst) in block.iter().enumerate() {
        if inst.len() != num_inputs {
            continue;
        }
        let (word, bit) = (l / 64, l % 64);
        for (idx, &b) in inst.iter().enumerate() {
            if b {
                out[idx * words + word] |= 1u64 << bit;
            }
        }
    }
}

/// Packs a `bool` bit vector into LSB-first `u64` words (the wire
/// encoding of input-share transfers).
pub fn pack_bits(bits: &[bool]) -> Vec<u64> {
    let mut out = vec![0u64; bits.len().div_ceil(64)];
    for (i, &b) in bits.iter().enumerate() {
        if b {
            out[i / 64] |= 1u64 << (i % 64);
        }
    }
    out
}

/// Inverse of [`pack_bits`] for a known bit count.
pub fn unpack_bits(words: &[u64], n: usize) -> Vec<bool> {
    (0..n).map(|i| words[i / 64] >> (i % 64) & 1 == 1).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shares_xor_back_to_the_input() {
        let bits: Vec<bool> = (0..130).map(|i| i % 3 == 0).collect();
        let (s0, s1) = share_bits(&bits, 7);
        let rec: Vec<bool> = s0.iter().zip(&s1).map(|(&a, &b)| a ^ b).collect();
        assert_eq!(rec, bits);
    }

    #[test]
    fn bit_packing_round_trips() {
        let bits: Vec<bool> = (0..200).map(|i| (i * 7) % 5 == 0).collect();
        assert_eq!(unpack_bits(&pack_bits(&bits), bits.len()), bits);
        assert_eq!(pack_bits(&[]), Vec::<u64>::new());
    }
}
