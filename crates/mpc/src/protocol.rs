//! The GMW online phase: the per-gate reference evaluator, the
//! in-process batched evaluator, and the networked [`Session`] that
//! speaks the framed wire protocol with **one message exchange per AND
//! level** of the compiled tape.

use crate::dealer::{Dealer, PackedDealer, TripleSource};
use crate::share::pack_share_block;
use crate::transport::{Frame, FrameKind, Role, Transport};
use crate::{MpcError, ProtocolStats};
use qec_circuit::bitengine::{BitOp, CompiledBitCircuit};
use qec_circuit::lower::{BGate, BitCircuit};
use std::time::Instant;

/// Per-party evaluation state of the per-gate reference protocol.
struct Party {
    shares: Vec<bool>,
    triples: Vec<crate::TripleShare>,
    input_shares: Vec<bool>,
}

impl Party {
    /// Local phase of one AND gate: masks the operand shares with the
    /// triple, returning `(d, e)` shares to be exchanged.
    fn and_open(&self, x: bool, y: bool, t: usize) -> (bool, bool) {
        let tr = self.triples[t];
        (x ^ tr.a, y ^ tr.b)
    }

    /// Completion of an AND gate after `(d, e)` are publicly
    /// reconstructed.
    fn and_close(&self, d: bool, e: bool, t: usize, party_id: bool) -> bool {
        let tr = self.triples[t];
        // z = c ⊕ d·b ⊕ e·a ⊕ d·e  (the d·e term added by one party only)
        let mut z = tr.c ^ (d & tr.b) ^ (e & tr.a);
        if party_id {
            z ^= d & e;
        }
        z
    }
}

/// Evaluates a lowered circuit under two-party XOR sharing. `shares0` and
/// `shares1` are the parties' input-bit shares (their XOR is the true
/// input). Returns the reconstructed output bits and the cost stats.
///
/// This is the gate-at-a-time *reference* implementation (both parties
/// simulated in one loop); the deployable path is [`Session`].
///
/// Assertion gates are reconstructed during evaluation (they are part of
/// the query's *declared* constraints, so revealing their single bit
/// leaks nothing beyond "the input conformed, as promised").
pub fn evaluate_shared(
    circuit: &BitCircuit,
    shares0: &[bool],
    shares1: &[bool],
    dealer: Dealer,
) -> Result<(Vec<bool>, ProtocolStats), MpcError> {
    if shares0.len() != circuit.num_inputs() || shares1.len() != circuit.num_inputs() {
        return Err(MpcError::InputLength {
            expected: circuit.num_inputs(),
            got: shares0.len().min(shares1.len()),
        });
    }
    let mut p0 = Party {
        shares: vec![false; circuit.gates().len()],
        triples: dealer.triples.0,
        input_shares: shares0.to_vec(),
    };
    let mut p1 = Party {
        shares: vec![false; circuit.gates().len()],
        triples: dealer.triples.1,
        input_shares: shares1.to_vec(),
    };
    let mut stats = ProtocolStats::default();
    let mut next_triple = 0usize;

    for (i, g) in circuit.gates().iter().enumerate() {
        match *g {
            BGate::Input(idx) => {
                p0.shares[i] = p0.input_shares[idx];
                p1.shares[i] = p1.input_shares[idx];
            }
            BGate::Const(v) => {
                // public constant: party 0 holds it, party 1 holds 0
                p0.shares[i] = v;
                p1.shares[i] = false;
            }
            BGate::Xor(a, b) => {
                p0.shares[i] = p0.shares[a as usize] ^ p0.shares[b as usize];
                p1.shares[i] = p1.shares[a as usize] ^ p1.shares[b as usize];
                stats.free_gates += 1;
            }
            BGate::Not(a) => {
                // negate on one side only
                p0.shares[i] = !p0.shares[a as usize];
                p1.shares[i] = p1.shares[a as usize];
                stats.free_gates += 1;
            }
            BGate::And(a, b) => {
                if next_triple >= p0.triples.len() {
                    return Err(MpcError::OutOfTriples);
                }
                let (d0, e0) =
                    p0.and_open(p0.shares[a as usize], p0.shares[b as usize], next_triple);
                let (d1, e1) =
                    p1.and_open(p1.shares[a as usize], p1.shares[b as usize], next_triple);
                // exchange: both parties learn d = d0^d1, e = e0^e1
                let (d, e) = (d0 ^ d1, e0 ^ e1);
                p0.shares[i] = p0.and_close(d, e, next_triple, false);
                p1.shares[i] = p1.and_close(d, e, next_triple, true);
                next_triple += 1;
                stats.and_gates += 1;
                stats.messages_bits += 4; // two bits each direction
            }
            BGate::AssertFalse(a) => {
                let v = p0.shares[a as usize] ^ p1.shares[a as usize];
                if v {
                    return Err(MpcError::AssertionFailed(i));
                }
            }
        }
    }
    let outputs = circuit
        .outputs()
        .iter()
        .map(|&w| p0.shares[w as usize] ^ p1.shares[w as usize])
        .collect();
    Ok((outputs, stats))
}

/// What every batched entry point returns: one `Result` per instance,
/// in input order, plus the aggregate protocol stats for the whole
/// batch.
pub type BatchedOutcome = (Vec<Result<Vec<bool>, MpcError>>, ProtocolStats);

/// Evaluates a batch of secret-shared instances over the bitsliced
/// tape — the GMW local-computation inner loop running on
/// [`CompiledBitCircuit`]'s register-allocated schedule, with both
/// parties simulated in one loop. Each party holds one transposed
/// register file (`num_regs × words` lane words); XOR/NOT/Const steps
/// are local word ops on both files, and every AND instruction consumes
/// one packed triple (`words × 64` scalar triples) with a single
/// `(d, e)` word exchange for all lanes at once.
///
/// Returns one `Result` per instance, in order, plus aggregate stats.
/// Stats count scalar-equivalent work at the dealer's full packed
/// width: a ragged final block still burns (and communicates) whole
/// lane words, exactly as a real deployment would.
pub fn evaluate_shared_batch(
    eng: &CompiledBitCircuit,
    shares0: &[Vec<bool>],
    shares1: &[Vec<bool>],
    dealer: &PackedDealer,
) -> Result<BatchedOutcome, MpcError> {
    if shares0.len() != shares1.len() {
        return Err(MpcError::InputLength {
            expected: shares0.len(),
            got: shares1.len(),
        });
    }
    let words = dealer.words;
    let lanes = words * 64;
    let num_inputs = eng.num_inputs();
    let nr = eng.num_regs() as usize;
    let mut results = Vec::with_capacity(shares0.len());
    let mut stats = ProtocolStats::default();
    let mut next_step = 0usize;

    let mut packed0 = vec![0u64; num_inputs * words];
    let mut packed1 = vec![0u64; num_inputs * words];
    let mut regs0 = vec![0u64; nr * words];
    let mut regs1 = vec![0u64; nr * words];
    let mut fail = vec![u32::MAX; lanes];
    let mut d_pub = vec![0u64; words];
    let mut e_pub = vec![0u64; words];

    for block_start in (0..shares0.len()).step_by(lanes) {
        let block_n = (shares0.len() - block_start).min(lanes);
        let block0 = &shares0[block_start..block_start + block_n];
        let block1 = &shares1[block_start..block_start + block_n];
        pack_share_block(block0, num_inputs, words, &mut packed0);
        pack_share_block(block1, num_inputs, words, &mut packed1);
        for f in fail.iter_mut() {
            *f = u32::MAX;
        }

        for op in eng.ops() {
            match *op {
                BitOp::Input { dst, idx } => {
                    let (d, s) = (dst as usize * words, idx as usize * words);
                    regs0[d..d + words].copy_from_slice(&packed0[s..s + words]);
                    regs1[d..d + words].copy_from_slice(&packed1[s..s + words]);
                }
                BitOp::Const { dst, v } => {
                    // public constant: party 0 holds it, party 1 holds 0
                    let d = dst as usize * words;
                    regs0[d..d + words].fill(if v { !0 } else { 0 });
                    regs1[d..d + words].fill(0);
                }
                BitOp::Xor { dst, a, b } => {
                    let (d, ra, rb) =
                        (dst as usize * words, a as usize * words, b as usize * words);
                    for w in 0..words {
                        regs0[d + w] = regs0[ra + w] ^ regs0[rb + w];
                        regs1[d + w] = regs1[ra + w] ^ regs1[rb + w];
                    }
                    stats.free_gates += lanes as u64;
                }
                BitOp::Not { dst, a } => {
                    // negate on one side only
                    let (d, ra) = (dst as usize * words, a as usize * words);
                    for w in 0..words {
                        regs0[d + w] = !regs0[ra + w];
                        regs1[d + w] = regs1[ra + w];
                    }
                    stats.free_gates += lanes as u64;
                }
                BitOp::And { dst, a, b } => {
                    if next_step >= dealer.steps() {
                        return Err(MpcError::OutOfTriples);
                    }
                    let base = next_step * 3 * words;
                    let (ta0, tb0, tc0) = (base, base + words, base + 2 * words);
                    let (d, ra, rb) =
                        (dst as usize * words, a as usize * words, b as usize * words);
                    // local phase: mask operand shares with the triple,
                    // then exchange (d, e) words — one message pair for
                    // all lanes of this AND step
                    for w in 0..words {
                        d_pub[w] = (regs0[ra + w] ^ dealer.p0[ta0 + w])
                            ^ (regs1[ra + w] ^ dealer.p1[ta0 + w]);
                        e_pub[w] = (regs0[rb + w] ^ dealer.p0[tb0 + w])
                            ^ (regs1[rb + w] ^ dealer.p1[tb0 + w]);
                    }
                    // z = c ⊕ d·b ⊕ e·a ⊕ d·e (d·e term on one party only)
                    for w in 0..words {
                        regs0[d + w] = dealer.p0[tc0 + w]
                            ^ (d_pub[w] & dealer.p0[tb0 + w])
                            ^ (e_pub[w] & dealer.p0[ta0 + w]);
                        regs1[d + w] = dealer.p1[tc0 + w]
                            ^ (d_pub[w] & dealer.p1[tb0 + w])
                            ^ (e_pub[w] & dealer.p1[ta0 + w])
                            ^ (d_pub[w] & e_pub[w]);
                    }
                    next_step += 1;
                    stats.and_gates += lanes as u64;
                    stats.messages_bits += 4 * lanes as u64; // two words each direction
                }
                BitOp::AssertFalse { dst, a, gate } => {
                    let (d, ra) = (dst as usize * words, a as usize * words);
                    for w in 0..words {
                        let valid = valid_mask(block_n, w);
                        let mut m = (regs0[ra + w] ^ regs1[ra + w]) & valid;
                        while m != 0 {
                            let lane = w * 64 + m.trailing_zeros() as usize;
                            if gate < fail[lane] {
                                fail[lane] = gate;
                            }
                            m &= m - 1;
                        }
                        regs0[d + w] = 0;
                        regs1[d + w] = 0;
                    }
                }
            }
        }

        for (l, (s0, s1)) in block0.iter().zip(block1).enumerate() {
            if s0.len() != num_inputs || s1.len() != num_inputs {
                results.push(Err(MpcError::InputLength {
                    expected: num_inputs,
                    got: s0.len().min(s1.len()),
                }));
                continue;
            }
            if fail[l] != u32::MAX {
                results.push(Err(MpcError::AssertionFailed(fail[l] as usize)));
                continue;
            }
            let out = eng
                .output_regs()
                .iter()
                .map(|&r| {
                    let i = r as usize * words + l / 64;
                    (regs0[i] ^ regs1[i]) >> (l % 64) & 1 == 1
                })
                .collect();
            results.push(Ok(out));
        }
    }
    Ok((results, stats))
}

/// Lanes of word `w` that hold real instances when the block carries
/// `block_n` of them.
fn valid_mask(block_n: usize, w: usize) -> u64 {
    let lane_base = w * 64;
    if block_n >= lane_base + 64 {
        !0
    } else if block_n <= lane_base {
        0
    } else {
        (1u64 << (block_n - lane_base)) - 1
    }
}

/// What one party's [`Session::run`] produces. Both parties compute the
/// **same** `results` (outputs are publicly reconstructed in the final
/// `Open` round); `stats` and `level_ns` are this party's view.
#[derive(Clone, Debug)]
pub struct Outcome {
    /// One result per instance, in input order: the reconstructed
    /// output bits, or [`MpcError::AssertionFailed`] for instances
    /// whose declared constraints fired.
    pub results: Vec<Result<Vec<bool>, MpcError>>,
    /// This party's cost accounting for the whole run.
    pub stats: ProtocolStats,
    /// Wall-clock nanoseconds per tape level, summed over blocks
    /// (network wait included — AND levels show the round latency).
    pub level_ns: Vec<u64>,
}

/// One party of the networked two-party protocol, generic over the
/// [`Transport`] to the peer and the [`TripleSource`] feeding its
/// offline material.
///
/// ```text
/// Session::new(&tape, Role::P0, transport, triples).run(&shares)?
/// ```
///
/// The run opens with a `Hello` exchange pinning the tape fingerprint
/// and batch geometry, then sends **exactly one `AndLevel` frame per
/// AND-bearing level** of the compiled tape (all lanes of all ANDs in
/// the level packed into one payload), and closes each block with one
/// `Open` frame carrying output shares and deferred assert shares.
/// Under [`CompiledBitCircuit::compile_gmw`]'s schedule the AND-bearing
/// level count equals the circuit's AND depth, so `stats.rounds` meets
/// the GMW lower bound.
pub struct Session<'a, T: Transport, S: TripleSource> {
    eng: &'a CompiledBitCircuit,
    role: Role,
    transport: T,
    triples: S,
    words: Option<usize>,
    recorder: Option<qec_obs::Recorder>,
}

impl<'a, T: Transport, S: TripleSource> Session<'a, T, S> {
    /// A session over `eng` for `role`, talking through `transport` and
    /// consuming `triples`. Packed width defaults to one block covering
    /// the whole batch; fix it with [`with_words`](Session::with_words).
    pub fn new(eng: &'a CompiledBitCircuit, role: Role, transport: T, triples: S) -> Self {
        Session {
            eng,
            role,
            transport,
            triples,
            words: None,
            recorder: None,
        }
    }

    /// Pins the packed width to `words` lane words (the batch is split
    /// into blocks of `words × 64` instances).
    pub fn with_words(mut self, words: usize) -> Self {
        self.words = Some(words.max(1));
        self
    }

    /// Exports session metrics (`mpc.rounds`, `mpc.bytes_sent`, …) into
    /// a `qec-obs` recorder.
    pub fn with_recorder(mut self, recorder: &qec_obs::Recorder) -> Self {
        self.recorder = Some(recorder.clone());
        self
    }

    /// Runs the protocol over this party's input shares (one vector per
    /// instance). Fails fast — before any message — if an instance has
    /// the wrong arity or the triple source's width disagrees.
    pub fn run(mut self, shares: &[Vec<bool>]) -> Result<Outcome, MpcError> {
        let eng = self.eng;
        let num_inputs = eng.num_inputs();
        for s in shares {
            if s.len() != num_inputs {
                return Err(MpcError::InputLength {
                    expected: num_inputs,
                    got: s.len(),
                });
            }
        }
        let words = self
            .words
            .unwrap_or_else(|| shares.len().div_ceil(64))
            .max(1);
        if self.triples.words() != words {
            return Err(MpcError::TripleWidth {
                expected: words,
                got: self.triples.words(),
            });
        }
        let lanes = words * 64;
        let starts = eng.level_starts();
        let num_levels = starts.len().saturating_sub(1);
        let span = self.recorder.as_ref().map(|r| r.span("mpc.session"));

        let mut stats = ProtocolStats::default();
        let mut level_ns = vec![0u64; num_levels];
        let mut round: u32 = 0;

        // Handshake: both ends must run the identical tape with the
        // identical batch geometry, or fail loudly before any secret
        // share moves.
        let hello = [
            eng.fingerprint(),
            num_inputs as u64,
            shares.len() as u64,
            words as u64,
            eng.stats().and_ops,
            num_levels as u64,
        ];
        let peer = self.exchange(FrameKind::Hello, round, &hello, &mut stats)?;
        round += 1;
        stats.open_rounds += 1;
        if peer.words.len() != hello.len() {
            return Err(MpcError::TapeMismatch("hello payload shape".into()));
        }
        for (i, what) in [
            "tape fingerprint",
            "input count",
            "batch size",
            "packed width",
            "AND instruction count",
            "level count",
        ]
        .iter()
        .enumerate()
        {
            if peer.words[i] != hello[i] {
                return Err(MpcError::TapeMismatch(format!(
                    "{what}: ours {} vs peer {}",
                    hello[i], peer.words[i]
                )));
            }
        }

        let p1 = self.role == Role::P1;
        let nr = eng.num_regs() as usize;
        let mut packed = vec![0u64; num_inputs * words];
        let mut regs = vec![0u64; nr * words];
        let mut fail = vec![u32::MAX; lanes];
        let mut results = Vec::with_capacity(shares.len());
        let (mut ta, mut tb, mut tc) = (vec![0u64; words], vec![0u64; words], vec![0u64; words]);
        let mut and_dst: Vec<u32> = Vec::new();
        let mut and_tr: Vec<u64> = Vec::new(); // a·b·c per AND
        let mut my_de: Vec<u64> = Vec::new(); // d·e mask words per AND
        let mut assert_gates: Vec<u32> = Vec::new();
        let mut assert_words: Vec<u64> = Vec::new();

        for block_start in (0..shares.len()).step_by(lanes) {
            let block_n = (shares.len() - block_start).min(lanes);
            let block = &shares[block_start..block_start + block_n];
            pack_share_block(block, num_inputs, words, &mut packed);
            fail.fill(u32::MAX);
            assert_gates.clear();
            assert_words.clear();

            for li in 0..num_levels {
                let t0 = Instant::now();
                and_dst.clear();
                and_tr.clear();
                my_de.clear();
                let ops = &eng.ops()[starts[li] as usize..starts[li + 1] as usize];
                for op in ops {
                    match *op {
                        BitOp::Input { dst, idx } => {
                            let (d, s) = (dst as usize * words, idx as usize * words);
                            regs[d..d + words].copy_from_slice(&packed[s..s + words]);
                        }
                        BitOp::Const { dst, v } => {
                            let d = dst as usize * words;
                            // public constant: party 0 holds it, party 1 holds 0
                            regs[d..d + words].fill(if v && !p1 { !0 } else { 0 });
                        }
                        BitOp::Xor { dst, a, b } => {
                            let (d, ra, rb) =
                                (dst as usize * words, a as usize * words, b as usize * words);
                            for w in 0..words {
                                regs[d + w] = regs[ra + w] ^ regs[rb + w];
                            }
                            stats.free_gates += lanes as u64;
                        }
                        BitOp::Not { dst, a } => {
                            // negate on one side only
                            let (d, ra) = (dst as usize * words, a as usize * words);
                            for w in 0..words {
                                regs[d + w] = if p1 { regs[ra + w] } else { !regs[ra + w] };
                            }
                            stats.free_gates += lanes as u64;
                        }
                        BitOp::And { dst, a, b } => {
                            self.triples.next_step(&mut ta, &mut tb, &mut tc)?;
                            let (ra, rb) = (a as usize * words, b as usize * words);
                            and_tr.extend_from_slice(&ta);
                            and_tr.extend_from_slice(&tb);
                            and_tr.extend_from_slice(&tc);
                            for w in 0..words {
                                my_de.push(regs[ra + w] ^ ta[w]);
                            }
                            for w in 0..words {
                                my_de.push(regs[rb + w] ^ tb[w]);
                            }
                            and_dst.push(dst);
                        }
                        BitOp::AssertFalse { dst, a, gate } => {
                            let (d, ra) = (dst as usize * words, a as usize * words);
                            assert_gates.push(gate);
                            for w in 0..words {
                                assert_words.push(regs[ra + w]);
                            }
                            regs[d..d + words].fill(0);
                        }
                    }
                }
                if !and_dst.is_empty() {
                    let peer = self.exchange(FrameKind::AndLevel, round, &my_de, &mut stats)?;
                    round += 1;
                    if peer.words.len() != my_de.len() {
                        return Err(MpcError::BadFrame("AND level payload width mismatch"));
                    }
                    for (i, &dst) in and_dst.iter().enumerate() {
                        let tr = &and_tr[i * 3 * words..(i + 1) * 3 * words];
                        let de = &my_de[i * 2 * words..(i + 1) * 2 * words];
                        let pde = &peer.words[i * 2 * words..(i + 1) * 2 * words];
                        let d = dst as usize * words;
                        // z = c ⊕ d·b ⊕ e·a ⊕ d·e (d·e on party 1 only)
                        for w in 0..words {
                            let dp = de[w] ^ pde[w];
                            let ep = de[words + w] ^ pde[words + w];
                            let mut z = tr[2 * words + w] ^ (dp & tr[words + w]) ^ (ep & tr[w]);
                            if p1 {
                                z ^= dp & ep;
                            }
                            regs[d + w] = z;
                        }
                    }
                    stats.rounds += 1;
                    stats.and_gates += (lanes * and_dst.len()) as u64;
                    stats.messages_bits += (4 * lanes * and_dst.len()) as u64;
                }
                level_ns[li] += t0.elapsed().as_nanos() as u64;
            }

            // Open round: output shares plus the deferred assert
            // openings (assert bits are declared constraints; see
            // `evaluate_shared`). One exchange per block, no matter how
            // many asserts the tape carries.
            let out_regs = eng.output_regs();
            let mut open: Vec<u64> = Vec::with_capacity(
                (out_regs.len() + assert_gates.len()) * words + assert_gates.len(),
            );
            for &r in out_regs {
                let o = r as usize * words;
                open.extend_from_slice(&regs[o..o + words]);
            }
            for (i, &g) in assert_gates.iter().enumerate() {
                open.push(g as u64);
                open.extend_from_slice(&assert_words[i * words..(i + 1) * words]);
            }
            let peer = self.exchange(FrameKind::Open, round, &open, &mut stats)?;
            round += 1;
            stats.open_rounds += 1;
            if peer.words.len() != open.len() {
                return Err(MpcError::BadFrame("open payload width mismatch"));
            }
            let out_words = out_regs.len() * words;
            let pub_out: Vec<u64> = open[..out_words]
                .iter()
                .zip(&peer.words[..out_words])
                .map(|(&m, &p)| m ^ p)
                .collect();
            let mut off = out_words;
            for (i, &g) in assert_gates.iter().enumerate() {
                if peer.words[off] != g as u64 {
                    return Err(MpcError::TapeMismatch(format!(
                        "assert schedule disagrees at entry {i}"
                    )));
                }
                off += 1;
                for w in 0..words {
                    let valid = valid_mask(block_n, w);
                    let mut m = (assert_words[i * words + w] ^ peer.words[off + w]) & valid;
                    while m != 0 {
                        let lane = w * 64 + m.trailing_zeros() as usize;
                        if g < fail[lane] {
                            fail[lane] = g;
                        }
                        m &= m - 1;
                    }
                }
                off += words;
            }

            for l in 0..block_n {
                if fail[l] != u32::MAX {
                    results.push(Err(MpcError::AssertionFailed(fail[l] as usize)));
                    continue;
                }
                let out = (0..out_regs.len())
                    .map(|o| pub_out[o * words + l / 64] >> (l % 64) & 1 == 1)
                    .collect();
                results.push(Ok(out));
            }
        }

        if let Some(rec) = &self.recorder {
            rec.add("mpc.rounds", stats.rounds);
            rec.add("mpc.open_rounds", stats.open_rounds);
            rec.add("mpc.bytes_sent", stats.bytes_sent);
            rec.add("mpc.bytes_recv", stats.bytes_recv);
            rec.add("mpc.and_gates", stats.and_gates);
            rec.add("mpc.free_gates", stats.free_gates);
            rec.gauge_max(
                "mpc.level_ns_max",
                level_ns.iter().copied().max().unwrap_or(0),
            );
        }
        drop(span);

        Ok(Outcome {
            results,
            stats,
            level_ns,
        })
    }

    /// Role-ordered frame exchange: P0 sends then receives, P1 receives
    /// then sends — so two blocking endpoints never deadlock — followed
    /// by full validation of the peer frame against what this round
    /// expects.
    fn exchange(
        &mut self,
        kind: FrameKind,
        round: u32,
        words: &[u64],
        stats: &mut ProtocolStats,
    ) -> Result<Frame, MpcError> {
        let bytes = Frame::new(self.role, kind, round, words).encode();
        let peer_bytes = match self.role {
            Role::P0 => {
                self.transport.send(&bytes)?;
                self.transport.recv()?
            }
            Role::P1 => {
                let r = self.transport.recv()?;
                self.transport.send(&bytes)?;
                r
            }
        };
        stats.bytes_sent += bytes.len() as u64;
        stats.bytes_recv += peer_bytes.len() as u64;
        let peer = Frame::decode(&peer_bytes)?;
        if peer.role != self.role.peer() {
            return Err(MpcError::RoleMismatch {
                expected: self.role.peer(),
                got: peer.role,
            });
        }
        if peer.kind != kind {
            return Err(MpcError::UnexpectedKind {
                expected: kind,
                got: peer.kind,
            });
        }
        if peer.round != round {
            return Err(MpcError::UnexpectedRound {
                expected: round,
                got: peer.round,
            });
        }
        Ok(peer)
    }
}
