//! The RAM reference: semi-naive fixpoint evaluation over an abstract
//! semiring algebra, instantiated twice — with `u64` semiring values
//! (the differ's ground truth) and with [`ProvCircuit`] node ids (the
//! provenance output mode).
//!
//! The iteration scheme here is *the same scheme* [`crate::compile`]
//! unrolls into circuit gates: round 0 fires the non-recursive rules;
//! round `r ≥ 1` fires one delta instance per (recursive rule, IDB body
//! position), reading the previous round's delta at that position and
//! the accumulated relations elsewhere; contributions are `⊕`-merged
//! per head. Keeping the schemes identical is what makes the circuit
//! bit-comparable to this reference.

use std::collections::BTreeMap;

use crate::program::DatalogProgram;
use crate::DatalogError;
use qec_circuit::{ProvCircuit, ProvId};
use qec_query::{ProgramAtom, ProgramRule};
use qec_relation::{Database, Relation};

type Key = Vec<u64>;
type Rel<V> = BTreeMap<Key, V>;

/// A semiring-like algebra the evaluator folds derivations through.
/// `⊕` has no explicit zero — an absent tuple is the zero.
pub(crate) trait Algebra {
    /// Tuple annotation values.
    type V: Clone + Eq;
    /// The value of one stored tuple (`weight` for annotated EDBs).
    fn leaf(&mut self, rel: &str, key: &[u64], weight: Option<u64>) -> Self::V;
    /// The `⊗`-identity (value of an unannotated body atom).
    fn one(&mut self) -> Self::V;
    /// `a ⊕ b`.
    fn plus(&mut self, a: Self::V, b: Self::V) -> Self::V;
    /// `a ⊗ b`.
    fn times(&mut self, a: Self::V, b: Self::V) -> Self::V;
}

struct U64Algebra(qec_core::Semiring);

impl Algebra for U64Algebra {
    type V = u64;
    fn leaf(&mut self, _rel: &str, _key: &[u64], weight: Option<u64>) -> u64 {
        weight.unwrap_or_else(|| self.0.one())
    }
    fn one(&mut self) -> u64 {
        self.0.one()
    }
    fn plus(&mut self, a: u64, b: u64) -> u64 {
        self.0.plus(a, b)
    }
    fn times(&mut self, a: u64, b: u64) -> u64 {
        self.0.times(a, b)
    }
}

struct ProvAlgebra {
    pc: ProvCircuit,
    /// Leaf id → (predicate, key tuple, stored weight).
    leaves: Vec<(String, Key, Option<u64>)>,
}

impl Algebra for ProvAlgebra {
    type V = ProvId;
    fn leaf(&mut self, rel: &str, key: &[u64], weight: Option<u64>) -> ProvId {
        let id = self.leaves.len() as u32;
        self.leaves.push((rel.to_string(), key.to_vec(), weight));
        self.pc.leaf(id)
    }
    fn one(&mut self) -> ProvId {
        self.pc.one()
    }
    fn plus(&mut self, a: ProvId, b: ProvId) -> ProvId {
        self.pc.plus([a, b])
    }
    fn times(&mut self, a: ProvId, b: ProvId) -> ProvId {
        self.pc.times([a, b])
    }
}

/// Builds a [`Database`] over the program's canonical EDB schemas (keys
/// `Var(0..arity)`, plus [`ANNOT`] for annotated predicates) from plain
/// row lists. Rows for predicates the program never reads are ignored.
pub fn database(
    dp: &DatalogProgram,
    rels: &[(&str, Vec<Vec<u64>>)],
) -> Result<Database, DatalogError> {
    let mut db = Database::new();
    for p in dp.edbs() {
        let rows = rels
            .iter()
            .find(|(n, _)| *n == p.name)
            .map(|(_, r)| r.clone())
            .ok_or_else(|| DatalogError::MissingRelation(p.name.clone()))?;
        let width = p.arity + usize::from(p.annotated);
        for row in &rows {
            if row.len() != width {
                return Err(DatalogError::SchemaMismatch {
                    name: p.name.clone(),
                    expected: p.schema().to_vec(),
                });
            }
            // ∞ (u64::MAX) is the circuit layer's dummy-slot sentinel;
            // a stored weight of ∞ means "absent" and must be expressed
            // by leaving the tuple out.
            if p.annotated && row[p.arity] == u64::MAX {
                return Err(DatalogError::BadValue {
                    name: p.name.clone(),
                    value: u64::MAX,
                });
            }
        }
        db.insert(
            p.name.clone(),
            Relation::from_rows(p.schema().to_vec(), rows),
        );
    }
    Ok(db)
}

/// Loads the EDB maps (key → leaf value), `⊕`-merging duplicate keys of
/// annotated relations.
fn load_edbs<A: Algebra>(
    dp: &DatalogProgram,
    db: &Database,
    alg: &mut A,
) -> Result<BTreeMap<String, Rel<A::V>>, DatalogError> {
    let mut out = BTreeMap::new();
    for p in dp.edbs() {
        let r = db
            .get(&p.name)
            .ok_or_else(|| DatalogError::MissingRelation(p.name.clone()))?;
        if r.vars() != p.schema() {
            return Err(DatalogError::SchemaMismatch {
                name: p.name.clone(),
                expected: p.schema().to_vec(),
            });
        }
        let mut m: Rel<A::V> = BTreeMap::new();
        for row in r.iter() {
            let key: Key = row[..p.arity].to_vec();
            let v = alg.leaf(&p.name, &key, p.annotated.then(|| row[p.arity]));
            match m.remove(&key) {
                None => {
                    m.insert(key, v);
                }
                Some(prev) => {
                    let merged = alg.plus(prev, v);
                    m.insert(key, merged);
                }
            }
        }
        out.insert(p.name.clone(), m);
    }
    Ok(out)
}

/// One rule instance: a backtracking join over the body atoms (each
/// bound to `sources[j]`), `⊗`-folding tuple values left to right and
/// `⊕`-merging per head key into `out`.
fn eval_rule<A: Algebra>(
    rule: &ProgramRule,
    sources: &[&Rel<A::V>],
    alg: &mut A,
    out: &mut Rel<A::V>,
) {
    #[allow(clippy::too_many_arguments)] // the full join state: body cursor + env + fold acc + sink
    fn rec<A: Algebra>(
        body: &[ProgramAtom],
        sources: &[&Rel<A::V>],
        j: usize,
        env: &mut Vec<(String, u64)>,
        acc: A::V,
        alg: &mut A,
        head: &ProgramAtom,
        out: &mut Rel<A::V>,
    ) {
        if j == body.len() {
            let key: Key = head
                .vars
                .iter()
                .map(|v| {
                    env.iter()
                        .find(|(n, _)| n == v)
                        .expect("range-restricted head var")
                        .1
                })
                .collect();
            let v = match out.remove(&key) {
                None => acc,
                Some(prev) => alg.plus(prev, acc),
            };
            out.insert(key, v);
            return;
        }
        let atom = &body[j];
        for (key, tv) in sources[j] {
            let mark = env.len();
            let mut ok = true;
            for (name, &val) in atom.vars.iter().zip(key.iter()) {
                match env.iter().find(|(n, _)| n == name) {
                    Some((_, bound)) if *bound != val => {
                        ok = false;
                        break;
                    }
                    Some(_) => {}
                    None => env.push((name.clone(), val)),
                }
            }
            if ok {
                let acc2 = alg.times(acc.clone(), tv.clone());
                rec(body, sources, j + 1, env, acc2, alg, head, out);
            }
            env.truncate(mark);
        }
    }
    let one = alg.one();
    let mut env = Vec::new();
    rec(&rule.body, sources, 0, &mut env, one, alg, &rule.head, out);
}

struct Fixpoint<V> {
    cur: BTreeMap<String, Rel<V>>,
    converged_at: Option<usize>,
}

/// Runs round 0 plus `rounds` delta rounds; see the module docs for the
/// scheme.
fn run<A: Algebra>(
    dp: &DatalogProgram,
    edb: &BTreeMap<String, Rel<A::V>>,
    rounds: usize,
    alg: &mut A,
) -> Fixpoint<A::V> {
    let is_rec = |r: &ProgramRule| r.body.iter().any(|a| dp.is_idb(&a.name));
    let empty: Rel<A::V> = BTreeMap::new();

    // Round 0: non-recursive rules only.
    let mut cur: BTreeMap<String, Rel<A::V>> = dp
        .preds
        .iter()
        .filter(|p| p.is_idb)
        .map(|p| (p.name.clone(), BTreeMap::new()))
        .collect();
    for rule in dp.program.rules.iter().filter(|r| !is_rec(r)) {
        let sources: Vec<&Rel<A::V>> = rule
            .body
            .iter()
            .map(|a| edb.get(&a.name).expect("edb loaded"))
            .collect();
        let out = cur.get_mut(&rule.head.name).expect("idb head");
        eval_rule(rule, &sources, alg, out);
    }
    let mut delta: BTreeMap<String, Rel<A::V>> = cur.clone();
    let mut converged_at = None;

    for round in 1..=rounds {
        // Contributions of this round, ⊕-merged per head predicate.
        let mut contrib: BTreeMap<String, Rel<A::V>> = BTreeMap::new();
        for rule in dp.program.rules.iter().filter(|r| is_rec(r)) {
            let idb_positions: Vec<usize> = (0..rule.body.len())
                .filter(|&j| dp.is_idb(&rule.body[j].name))
                .collect();
            for &jd in &idb_positions {
                if delta.get(&rule.body[jd].name).is_none_or(Rel::is_empty) {
                    continue;
                }
                let sources: Vec<&Rel<A::V>> = rule
                    .body
                    .iter()
                    .enumerate()
                    .map(|(j, a)| {
                        if j == jd {
                            &delta[&a.name]
                        } else if dp.is_idb(&a.name) {
                            &cur[&a.name]
                        } else {
                            &edb[&a.name]
                        }
                    })
                    .collect();
                let out = contrib.entry(rule.head.name.clone()).or_default();
                eval_rule(rule, &sources, alg, out);
            }
        }
        // Merge into cur; the merged contributions become the new delta.
        let mut changed = false;
        for (pred, rel) in cur.iter_mut() {
            let c = contrib.get(pred).unwrap_or(&empty);
            for (key, v) in c {
                let merged = match rel.remove(key) {
                    None => {
                        changed = true;
                        v.clone()
                    }
                    Some(prev) => {
                        let m = alg.plus(prev.clone(), v.clone());
                        changed |= m != prev;
                        m
                    }
                };
                rel.insert(key.clone(), merged);
            }
        }
        delta = contrib;
        if !changed && converged_at.is_none() {
            converged_at = Some(round);
        }
    }
    Fixpoint { cur, converged_at }
}

/// A fixpoint computed on RAM relations with concrete semiring values.
#[derive(Clone, Debug)]
pub struct FixpointResult {
    /// Output-predicate tuples (key → annotation; annotation is
    /// `one()` for Boolean programs).
    pub tuples: BTreeMap<Vec<u64>, u64>,
    /// Every IDB's fixpoint relation.
    pub all: BTreeMap<String, BTreeMap<Vec<u64>, u64>>,
    /// First delta round after which nothing changed, if any round
    /// stabilized within the bound.
    pub converged_at: Option<usize>,
}

/// Reference semi-naive evaluation: round 0 plus `rounds` delta rounds
/// over `dp.semiring` — the scheme [`crate::compile`] unrolls, so the
/// two agree tuple-for-tuple at equal `rounds`.
pub fn seminaive(
    dp: &DatalogProgram,
    db: &Database,
    rounds: usize,
) -> Result<FixpointResult, DatalogError> {
    let mut alg = U64Algebra(dp.semiring);
    let edb = load_edbs(dp, db, &mut alg)?;
    let fx = run(dp, &edb, rounds, &mut alg);
    Ok(FixpointResult {
        tuples: fx.cur[&dp.output].clone(),
        all: fx.cur,
        converged_at: fx.converged_at,
    })
}

/// Renders the output predicate of a [`FixpointResult`] as a
/// canonical-schema [`Relation`] (the exact shape the compiled
/// circuit's output decodes to).
pub fn result_relation(dp: &DatalogProgram, fr: &FixpointResult) -> Relation {
    let p = dp.pred(&dp.output).expect("output is a predicate");
    let rows: Vec<Vec<u64>> = fr
        .tuples
        .iter()
        .map(|(k, &v)| {
            let mut row = k.clone();
            if p.annotated {
                row.push(v);
            }
            row
        })
        .collect();
    Relation::from_rows(p.schema().to_vec(), rows)
}

/// A fixpoint computed in the free semiring: every output tuple's
/// derivation polynomial as a node of a hash-consed DAG.
#[derive(Clone, Debug)]
pub struct ProvResult {
    /// The provenance DAG.
    pub circuit: ProvCircuit,
    /// Output-predicate tuples and their polynomial roots.
    pub outputs: BTreeMap<Vec<u64>, ProvId>,
    /// Leaf id → (predicate, key, stored weight).
    pub leaves: Vec<(String, Vec<u64>, Option<u64>)>,
}

/// Provenance extraction: the same bounded fixpoint, evaluated in the
/// free semiring over tuple leaves. Hash-consing collapses
/// re-derivations, so converged iterations add no nodes; `⊕`-dedup is
/// sound because the supported semirings are idempotent.
pub fn provenance(
    dp: &DatalogProgram,
    db: &Database,
    rounds: usize,
) -> Result<ProvResult, DatalogError> {
    let mut alg = ProvAlgebra {
        pc: ProvCircuit::new(),
        leaves: Vec::new(),
    };
    let edb = load_edbs(dp, db, &mut alg)?;
    let fx = run(dp, &edb, rounds, &mut alg);
    Ok(ProvResult {
        outputs: fx.cur[&dp.output].clone(),
        circuit: alg.pc,
        leaves: alg.leaves,
    })
}

/// Evaluates a [`ProvResult`] under the program's concrete semiring
/// (leaves take their stored weights). Must reproduce
/// [`seminaive`]'s annotations — the validation hook the tests and the
/// differ use.
pub fn eval_provenance(dp: &DatalogProgram, pr: &ProvResult) -> BTreeMap<Vec<u64>, u64> {
    let sr = dp.semiring;
    let vals = pr.circuit.eval(
        sr.zero(),
        sr.one(),
        |a, b| sr.plus(a, b),
        |a, b| sr.times(a, b),
        |leaf| pr.leaves[leaf as usize].2.unwrap_or_else(|| sr.one()),
    );
    pr.outputs
        .iter()
        .map(|(k, &id)| (k.clone(), vals[id as usize]))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads;

    fn diamond() -> Vec<Vec<u64>> {
        // 0→1→3, 0→2→3, 3→0 (a cycle through a diamond)
        vec![vec![0, 1], vec![1, 3], vec![0, 2], vec![2, 3], vec![3, 0]]
    }

    #[test]
    fn boolean_tc_reaches_everything_on_a_cycle() {
        let dp = DatalogProgram::parse(workloads::TRANSITIVE_CLOSURE).unwrap();
        let db = database(&dp, &[("edge", diamond())]).unwrap();
        let fr = seminaive(&dp, &db, 6).unwrap();
        // every node on the 0→{1,2}→3→0 cycle reaches every node
        for a in [0u64, 1, 2, 3] {
            for b in [0u64, 1, 2, 3] {
                assert!(fr.tuples.contains_key(&vec![a, b]), "path({a},{b}) missing");
            }
        }
        assert!(fr.converged_at.is_some());
    }

    #[test]
    fn tropical_shortest_paths_match_by_hand() {
        let dp = DatalogProgram::parse(workloads::SHORTEST_PATH).unwrap();
        // 0→1 (1), 1→2 (1), 0→2 (5): the two-hop route wins
        let edges = vec![vec![0, 1, 1], vec![1, 2, 1], vec![0, 2, 5]];
        let db = database(&dp, &[("edge", edges)]).unwrap();
        let fr = seminaive(&dp, &db, 4).unwrap();
        assert_eq!(fr.tuples[&vec![0, 2]], 2, "min(5, 1+1)");
        assert_eq!(fr.tuples[&vec![0, 1]], 1);
        assert_eq!(fr.tuples[&vec![1, 2]], 1);
    }

    #[test]
    fn provenance_evaluates_back_to_the_reference() {
        let dp = DatalogProgram::parse(workloads::SHORTEST_PATH).unwrap();
        let edges = workloads::random_weighted_edges(6, 12, 7, 0xfeed);
        let db = database(&dp, &[("edge", edges)]).unwrap();
        let fr = seminaive(&dp, &db, 6).unwrap();
        let pr = provenance(&dp, &db, 6).unwrap();
        assert_eq!(eval_provenance(&dp, &pr), fr.tuples);
        let roots: Vec<ProvId> = pr.outputs.values().copied().collect();
        assert!(pr.circuit.dag_size(&roots) >= roots.len());
    }

    #[test]
    fn bounded_rounds_cut_the_fixpoint_short() {
        let dp = DatalogProgram::parse(workloads::TRANSITIVE_CLOSURE).unwrap();
        // a 5-chain needs 4 hops; 1 delta round only finds 2-hop paths
        let chain = vec![vec![0, 1], vec![1, 2], vec![2, 3], vec![3, 4]];
        let db = database(&dp, &[("edge", chain)]).unwrap();
        let short = seminaive(&dp, &db, 1).unwrap();
        assert!(!short.tuples.contains_key(&vec![0u64, 4]));
        assert!(short.converged_at.is_none());
        let full = seminaive(&dp, &db, 4).unwrap();
        assert!(full.tuples.contains_key(&vec![0u64, 4]));
    }
}
