//! Program analysis: IDB/EDB split, semiring resolution, and the
//! canonical per-predicate schemas shared by the compiler, the RAM
//! reference, and the database builder.

use crate::DatalogError;
use qec_core::Semiring;
use qec_query::{parse_program, Program, SemiringAnnot};
use qec_relation::{Var, VarSet};

use crate::compile::ANNOT;

/// The number of annotation scratch columns available per rule
/// (`Var(48..=60)`; 61/62 are the core's reserved `TMP`/`ANNOT`).
pub(crate) const MAX_ANNOTATED_ATOMS: usize = 13;

/// One predicate of an analyzed program.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PredInfo {
    /// Predicate name.
    pub name: String,
    /// Number of key columns.
    pub arity: usize,
    /// `true` when the predicate appears in some rule head.
    pub is_idb: bool,
    /// `true` when the stored relation carries an annotation column:
    /// `*`-marked EDBs, and every IDB of a non-Boolean program.
    pub annotated: bool,
}

impl PredInfo {
    /// Canonical key columns `Var(0..arity)`.
    pub fn keys(&self) -> VarSet {
        VarSet::full(self.arity as u32)
    }

    /// Canonical stored schema: keys plus [`ANNOT`] when annotated.
    pub fn schema(&self) -> VarSet {
        if self.annotated {
            self.keys().with(ANNOT)
        } else {
            self.keys()
        }
    }
}

/// An analyzed Datalog program: the parsed rules plus the derived facts
/// every consumer needs (predicate table, resolved semiring, output
/// predicate).
#[derive(Clone, Debug)]
pub struct DatalogProgram {
    /// The parsed rules.
    pub program: Program,
    /// All predicates, IDBs first in first-head order, then EDBs in
    /// first-use order.
    pub preds: Vec<PredInfo>,
    /// The single semiring every rule is evaluated under (`Boolean`
    /// when no rule is annotated).
    pub semiring: Semiring,
    /// The output predicate: the head of the first rule.
    pub output: String,
}

fn resolve_semiring(p: &Program) -> Result<Semiring, DatalogError> {
    let mut chosen: Option<SemiringAnnot> = None;
    for r in &p.rules {
        if let Some(sr) = r.semiring {
            match chosen {
                None => chosen = Some(sr),
                Some(prev) if prev != sr => {
                    return Err(DatalogError::ConflictingSemirings(
                        annot_name(prev),
                        annot_name(sr),
                    ))
                }
                Some(_) => {}
            }
        }
    }
    Ok(match chosen {
        None | Some(SemiringAnnot::Boolean) => Semiring::Boolean,
        Some(SemiringAnnot::Natural) => Semiring::Natural,
        Some(SemiringAnnot::MinTropical) => Semiring::MinTropical,
        Some(SemiringAnnot::MaxTropical) => Semiring::MaxTropical,
    })
}

fn annot_name(a: SemiringAnnot) -> &'static str {
    match a {
        SemiringAnnot::Boolean => "bool",
        SemiringAnnot::Natural => "nat",
        SemiringAnnot::MinTropical => "min",
        SemiringAnnot::MaxTropical => "max",
    }
}

impl DatalogProgram {
    /// Parses and [`analyze`](Self::analyze)s `src` in one step.
    pub fn parse(src: &str) -> Result<DatalogProgram, DatalogError> {
        Self::analyze(parse_program(src)?)
    }

    /// Analyzes a parsed program: splits IDB/EDB, resolves the single
    /// program semiring, and rejects the combinations the fixpoint
    /// compiler cannot handle (recursion under `ℕ`, annotated EDBs in a
    /// Boolean program, IDBs without a base case, rules with more
    /// annotated atoms than scratch columns).
    pub fn analyze(program: Program) -> Result<DatalogProgram, DatalogError> {
        let semiring = resolve_semiring(&program)?;
        let idbs: Vec<String> = program
            .idb_names()
            .into_iter()
            .map(str::to_string)
            .collect();
        let is_idb = |n: &str| idbs.iter().any(|i| i == n);

        let mut preds: Vec<PredInfo> = idbs
            .iter()
            .map(|n| {
                let arity = program
                    .rules
                    .iter()
                    .find(|r| &r.head.name == n)
                    .expect("idb has a head")
                    .head
                    .vars
                    .len();
                PredInfo {
                    name: n.clone(),
                    arity,
                    is_idb: true,
                    annotated: semiring != Semiring::Boolean,
                }
            })
            .collect();
        for r in &program.rules {
            for a in &r.body {
                if !is_idb(&a.name) && !preds.iter().any(|p| p.name == a.name) {
                    if a.annotated && semiring == Semiring::Boolean {
                        return Err(DatalogError::AnnotatedEdbInBoolean(a.name.clone()));
                    }
                    preds.push(PredInfo {
                        name: a.name.clone(),
                        arity: a.vars.len(),
                        is_idb: false,
                        annotated: a.annotated,
                    });
                }
            }
        }

        let recursive = program
            .rules
            .iter()
            .any(|r| r.body.iter().any(|a| is_idb(&a.name)));
        if recursive && semiring == Semiring::Natural {
            return Err(DatalogError::NonIdempotent(semiring));
        }

        for idb in &idbs {
            let has_base = program
                .rules
                .iter()
                .any(|r| &r.head.name == idb && !r.body.iter().any(|a| is_idb(&a.name)));
            if !has_base {
                return Err(DatalogError::NoBaseCase(idb.clone()));
            }
        }

        if semiring != Semiring::Boolean {
            for r in &program.rules {
                let annotated = r
                    .body
                    .iter()
                    .filter(|a| a.annotated || is_idb(&a.name))
                    .count();
                if annotated > MAX_ANNOTATED_ATOMS {
                    return Err(DatalogError::TooManyAnnotated(r.head.name.clone()));
                }
            }
        }

        let output = program.rules[0].head.name.clone();
        Ok(DatalogProgram {
            program,
            preds,
            semiring,
            output,
        })
    }

    /// Looks up a predicate.
    pub fn pred(&self, name: &str) -> Option<&PredInfo> {
        self.preds.iter().find(|p| p.name == name)
    }

    /// The EDB predicates, in first-use order.
    pub fn edbs(&self) -> impl Iterator<Item = &PredInfo> {
        self.preds.iter().filter(|p| !p.is_idb)
    }

    /// Whether `name` appears in some rule head.
    pub fn is_idb(&self, name: &str) -> bool {
        self.pred(name).is_some_and(|p| p.is_idb)
    }

    /// Whether a body atom reads an annotation: `*`-marked EDBs and
    /// (in non-Boolean programs) every IDB atom.
    pub(crate) fn atom_annotated(&self, atom: &qec_query::ProgramAtom) -> bool {
        self.pred(&atom.name).is_some_and(|p| p.annotated)
    }
}

/// Scratch column for the `j`-th body atom's annotation during rule
/// compilation (and the `Var` a derived annotation is folded into).
pub(crate) fn scratch(j: usize) -> Var {
    debug_assert!(j < MAX_ANNOTATED_ATOMS);
    Var(48 + j as u32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads;

    #[test]
    fn analyzes_transitive_closure() {
        let dp = DatalogProgram::parse(workloads::TRANSITIVE_CLOSURE).unwrap();
        assert_eq!(dp.semiring, Semiring::Boolean);
        assert_eq!(dp.output, "path");
        let path = dp.pred("path").unwrap();
        assert!(path.is_idb && !path.annotated && path.arity == 2);
        let edge = dp.pred("edge").unwrap();
        assert!(!edge.is_idb && !edge.annotated);
        assert_eq!(edge.schema().to_vec(), vec![Var(0), Var(1)]);
    }

    #[test]
    fn analyzes_shortest_path() {
        let dp = DatalogProgram::parse(workloads::SHORTEST_PATH).unwrap();
        assert_eq!(dp.semiring, Semiring::MinTropical);
        let dist = dp.pred("dist").unwrap();
        assert!(dist.is_idb && dist.annotated);
        assert_eq!(dist.schema().to_vec(), vec![Var(0), Var(1), ANNOT]);
        let edge = dp.pred("edge").unwrap();
        assert!(edge.annotated, "starred EDB carries a weight column");
    }

    #[test]
    fn rejects_unsupported_programs() {
        // counting semiring + recursion: no finite fixpoint
        let e = DatalogProgram::parse("p(x) :- e(x). p(x) :- p(y), e2(y, x) @nat.")
            .expect_err("nat recursion rejected");
        assert_eq!(e, DatalogError::NonIdempotent(Semiring::Natural));
        // non-recursive counting is fine
        assert!(DatalogProgram::parse("p(x) :- e(x, y) @nat.").is_ok());
        // conflicting annotations
        let e = DatalogProgram::parse("p(x) :- e(x) @min. q(x) :- e(x) @max.")
            .expect_err("conflict rejected");
        assert_eq!(e, DatalogError::ConflictingSemirings("min", "max"));
        // starred EDB without a semiring
        let e = DatalogProgram::parse("p(x) :- e*(x, y).").expect_err("boolean star rejected");
        assert_eq!(e, DatalogError::AnnotatedEdbInBoolean("e".into()));
        // IDB with only recursive rules
        let e = DatalogProgram::parse("p(x) :- q(x). q(x) :- p(x). p(x) :- e(x).")
            .expect_err("no base case rejected");
        assert_eq!(e, DatalogError::NoBaseCase("q".into()));
    }
}
