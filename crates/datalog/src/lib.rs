//! Recursive Datalog over semirings, compiled to bounded-fixpoint
//! circuits.
//!
//! A Datalog program (parsed by `qec-query`'s [`qec_query::parse_program`])
//! is evaluated to its `N`-bounded fixpoint by **unrolling semi-naive
//! evaluation**: iteration 0 fires the non-recursive rules, and each
//! subsequent round fires, for every recursive rule and every IDB body
//! position, one *delta instance* of the rule — the chosen position reads
//! the previous round's delta, the other IDB positions read the
//! accumulated relation. Each round's contributions are `⊕`-merged per
//! head predicate and capped at the trivial output bound `d^arity` over a
//! domain of size `d`.
//!
//! Three consumers share that one scheme, so they agree tuple-for-tuple:
//!
//! * [`compile`] emits it as a [`qec_core::RelationalCircuit`] — every
//!   round is ordinary operator gates (`rename`/`join_degree`/
//!   `aggregate`/`union`/`truncate`), so the existing lowering and its
//!   online hash-consing collapse the cross-iteration redundancy;
//! * [`seminaive`] runs it directly on RAM relations (the reference the
//!   differ compares circuits against);
//! * [`provenance`] runs it in the *free* semiring, recording each output
//!   tuple's derivation polynomial as a hash-consed
//!   [`qec_circuit::ProvCircuit`] DAG (the factorised representation).
//!
//! Fixpoint semantics require an **idempotent** `⊕` (the delta scheme
//! re-derives facts freely, and `x ⊕ x = x` makes that harmless):
//! Boolean and the two tropical semirings qualify; recursion under the
//! counting semiring `ℕ` is rejected with a typed error — with cycles it
//! has no finite fixpoint at all.

mod compile;
mod program;
mod seminaive;
pub mod workloads;

pub use compile::{compile, FixpointBounds, FixpointCircuit, ANNOT, MAX_SLOTS};
pub use program::{DatalogProgram, PredInfo};
pub use seminaive::{
    database, eval_provenance, provenance, result_relation, seminaive, FixpointResult, ProvResult,
};

use qec_core::Semiring;
use qec_query::CqError;
use qec_relation::Var;

/// Everything that can go wrong between program text and fixpoint.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DatalogError {
    /// The program text failed to parse.
    Parse(CqError),
    /// Two rules name different semirings.
    ConflictingSemirings(&'static str, &'static str),
    /// Recursion under a non-idempotent `⊕` (the counting semiring):
    /// the delta scheme is unsound and cyclic programs have no finite
    /// fixpoint.
    NonIdempotent(Semiring),
    /// A `*`-annotated EDB atom in a Boolean program — there is no
    /// annotation column to read.
    AnnotatedEdbInBoolean(String),
    /// An IDB predicate with no non-recursive rule: its fixpoint starts
    /// empty and the unrolling has no base relation to seed it with.
    NoBaseCase(String),
    /// A rule with more annotated body atoms than the scratch columns
    /// (`Var(48..=60)`) can hold.
    TooManyAnnotated(String),
    /// A circuit wire would exceed [`MAX_SLOTS`] slots; shrink the
    /// domain or the rule bodies.
    TooLarge {
        /// The offending capacity.
        capacity: u64,
        /// The limit it exceeded.
        limit: u64,
    },
    /// The database lacks a relation for this EDB predicate.
    MissingRelation(String),
    /// A stored relation's schema does not match the predicate's
    /// canonical schema.
    SchemaMismatch {
        /// The predicate.
        name: String,
        /// What the program requires.
        expected: Vec<Var>,
    },
    /// A tuple carries a key value outside `0..domain` (or the reserved
    /// `u64::MAX` as an annotation weight).
    BadValue {
        /// The predicate holding the tuple.
        name: String,
        /// The offending field value.
        value: u64,
    },
}

impl std::fmt::Display for DatalogError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DatalogError::Parse(e) => write!(f, "parse error: {e}"),
            DatalogError::ConflictingSemirings(a, b) => {
                write!(f, "rules name conflicting semirings @{a} and @{b}")
            }
            DatalogError::NonIdempotent(sr) => write!(
                f,
                "recursion under {sr:?} is unsupported: its ⊕ is not idempotent, \
                 so cyclic programs have no finite fixpoint"
            ),
            DatalogError::AnnotatedEdbInBoolean(p) => write!(
                f,
                "EDB predicate {p} is *-annotated but the program is Boolean \
                 (no @min/@max rule annotation)"
            ),
            DatalogError::NoBaseCase(p) => {
                write!(f, "IDB predicate {p} has no non-recursive rule")
            }
            DatalogError::TooManyAnnotated(r) => write!(
                f,
                "rule {r} has more annotated body atoms than scratch columns (13)"
            ),
            DatalogError::TooLarge { capacity, limit } => write!(
                f,
                "a circuit wire would need {capacity} slots (limit {limit}); \
                 shrink the domain or the rule bodies"
            ),
            DatalogError::MissingRelation(p) => write!(f, "no relation for EDB predicate {p}"),
            DatalogError::SchemaMismatch { name, expected } => {
                write!(
                    f,
                    "relation {name} does not match canonical schema {expected:?}"
                )
            }
            DatalogError::BadValue { name, value } => {
                write!(f, "relation {name} holds out-of-range value {value}")
            }
        }
    }
}

impl std::error::Error for DatalogError {}

impl From<CqError> for DatalogError {
    fn from(e: CqError) -> Self {
        DatalogError::Parse(e)
    }
}
