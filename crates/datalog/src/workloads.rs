//! The three graph workloads of X24, plus deterministic random-graph
//! generators (a local splitmix64; no external RNG).

/// Transitive closure under the Boolean semiring: which pairs are
/// connected by a directed path?
pub const TRANSITIVE_CLOSURE: &str =
    "path(x, y) :- edge(x, y). path(x, z) :- path(x, y), edge(y, z).";

/// Single-source reachability under the Boolean semiring (`start` holds
/// the source vertices).
pub const REACHABILITY: &str = "reach(y) :- start(y). reach(z) :- reach(y), edge(y, z).";

/// All-pairs shortest path under the min-tropical semiring: `edge*`
/// carries a weight column, `⊗` adds along a path, `⊕` keeps the
/// minimum over paths.
pub const SHORTEST_PATH: &str =
    "dist(x, y) :- edge*(x, y) @min. dist(x, z) :- dist(x, y), edge*(y, z) @min.";

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// Up to `m` distinct directed edges (no self-loops) over vertices
/// `0..domain`, deterministically from `seed`.
pub fn random_edges(domain: u64, m: usize, seed: u64) -> Vec<Vec<u64>> {
    let mut state = seed ^ 0xd1a70c0de;
    let mut seen = std::collections::BTreeSet::new();
    let mut out = Vec::new();
    for _ in 0..8 * m.max(1) {
        if out.len() >= m {
            break;
        }
        let a = splitmix64(&mut state) % domain;
        let b = splitmix64(&mut state) % domain;
        if a != b && seen.insert((a, b)) {
            out.push(vec![a, b]);
        }
    }
    out
}

/// Like [`random_edges`], with a weight column in `1..=max_w`.
pub fn random_weighted_edges(domain: u64, m: usize, max_w: u64, seed: u64) -> Vec<Vec<u64>> {
    let mut state = seed ^ 0x77e19;
    random_edges(domain, m, seed)
        .into_iter()
        .map(|mut e| {
            e.push(1 + splitmix64(&mut state) % max_w.max(1));
            e
        })
        .collect()
}

/// Vertices `0..k` as unary rows — the `start` relation of
/// [`REACHABILITY`].
pub fn start_rows(k: u64) -> Vec<Vec<u64>> {
    (0..k).map(|v| vec![v]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_are_deterministic_and_in_range() {
        let a = random_edges(8, 12, 42);
        let b = random_edges(8, 12, 42);
        assert_eq!(a, b);
        assert!(a.iter().all(|e| e[0] < 8 && e[1] < 8 && e[0] != e[1]));
        let w = random_weighted_edges(8, 12, 5, 42);
        assert!(w.iter().all(|e| (1..=5).contains(&e[2])));
        assert_ne!(random_edges(8, 12, 43), a, "seed matters");
    }
}
