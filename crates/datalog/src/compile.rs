//! Bounded-fixpoint compilation: unrolls the semi-naive scheme of
//! [`crate::seminaive`] into a [`RelationalCircuit`], one operator-gate
//! subgraph per (round, rule, delta position) instance.
//!
//! Everything is expressed with the existing relational gates, so the
//! word-level lowering — and crucially its online hash-consing — sees
//! the unrolled rounds as ordinary circuitry and collapses the
//! cross-iteration redundancy (converged rounds re-derive identical
//! subcircuits). X24 measures that collapse by lowering the same
//! circuit with and without consing.
//!
//! Capacity discipline: over a domain of size `d`, an IDB of arity `k`
//! is capped at `d^k` slots (the trivial output bound), and every join
//! is a [`RelationalCircuit::join_degree`] with
//! `deg = d^{#fresh key vars}` — sound because stored relations are
//! key-distinct (annotations are functionally determined by keys; the
//! compiler normalizes annotated EDB inputs with a `⊕`-aggregation on
//! entry to make that hold for arbitrary inputs).

use std::collections::BTreeMap;

use crate::program::{scratch, DatalogProgram};
use crate::DatalogError;
use qec_core::{NodeId, RelationalCircuit, Semiring};
use qec_query::ProgramRule;
use qec_relation::{Var, VarSet};

/// The canonical annotation column, shared with `qec-core`'s
/// annotated-query pipeline (`Var(62)`).
pub const ANNOT: Var = Var(62);

/// `qec-core`'s reserved aggregation scratch column (`Var(61)`).
const TMP: Var = Var(61);

/// Hard ceiling on any wire's slot capacity; circuits past this are
/// rejected with [`DatalogError::TooLarge`] before lowering.
pub const MAX_SLOTS: u64 = 1 << 13;

/// Sizing parameters for the bounded fixpoint.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FixpointBounds {
    /// Key values range over `0..domain`.
    pub domain: u64,
    /// Slot capacity of each EDB input relation.
    pub edb_rows: u64,
    /// Number of delta rounds unrolled after round 0. With
    /// `rounds = domain`, Boolean and min-tropical fixpoints are exact
    /// (every simple path fits in `domain` hops).
    pub rounds: usize,
}

impl FixpointBounds {
    /// `rounds = domain`: exact for Boolean / min-tropical programs.
    pub fn for_domain(domain: u64, edb_rows: u64) -> FixpointBounds {
        FixpointBounds {
            domain,
            edb_rows,
            rounds: domain as usize,
        }
    }
}

/// A compiled bounded fixpoint: the relational circuit plus the output
/// predicate's canonical schema.
#[derive(Clone, Debug)]
pub struct FixpointCircuit {
    /// The circuit; its single output is the output predicate after the
    /// last round.
    pub rc: RelationalCircuit,
    /// Canonical output schema (keys `Var(0..arity)`, plus [`ANNOT`]
    /// for annotated programs).
    pub schema: Vec<Var>,
    /// Delta rounds unrolled.
    pub rounds: usize,
}

fn pow_capped(d: u64, k: u32) -> u64 {
    d.checked_pow(k).unwrap_or(u64::MAX)
}

struct Compiler<'a> {
    dp: &'a DatalogProgram,
    rc: RelationalCircuit,
    sr: Semiring,
    d: u64,
}

impl Compiler<'_> {
    /// `⊕`-merges same-schema contribution nodes and caps the result at
    /// the predicate's trivial bound `d^arity`.
    fn combine(&mut self, nodes: &[NodeId], keys: VarSet, annotated: bool, cap: u64) -> NodeId {
        let mut u = nodes[0];
        for &n in &nodes[1..] {
            u = self.rc.union(u, n);
        }
        if annotated && nodes.len() > 1 {
            let agg = self.rc.aggregate(u, keys, self.sr.plus_agg(ANNOT), TMP);
            u = self.rc.rename(agg, &[(TMP, ANNOT)]);
        }
        if self.rc.nodes[u].capacity > cap {
            u = self.rc.truncate(u, cap);
        }
        u
    }

    /// Compiles one rule instance: body atoms renamed into rule-variable
    /// space, joined left to right under degree bounds, annotations
    /// `⊗`-folded, and the head `⊕`-aggregated back into canonical
    /// schema.
    fn rule_instance(&mut self, rule: &ProgramRule, sources: &[NodeId]) -> NodeId {
        // Rule variables → column indices, in order of first occurrence
        // (head variables occur in the body by range restriction).
        let mut order: Vec<&str> = Vec::new();
        for a in &rule.body {
            for v in &a.vars {
                if !order.iter().any(|x| x == v) {
                    order.push(v);
                }
            }
        }
        let idx =
            |n: &str| -> u32 { order.iter().position(|x| *x == n).expect("body-bound var") as u32 };

        // Rename each source into rule space; annotations go to
        // per-atom scratch columns.
        let mut ann_cols: Vec<Var> = Vec::new();
        let mut acc: Option<(NodeId, VarSet)> = None;
        for (j, atom) in rule.body.iter().enumerate() {
            let mut map: Vec<(Var, Var)> = atom
                .vars
                .iter()
                .enumerate()
                .map(|(c, v)| (Var(c as u32), Var(idx(v))))
                .collect();
            if self.dp.atom_annotated(atom) {
                map.push((ANNOT, scratch(j)));
                ann_cols.push(scratch(j));
            }
            let node = self.rc.rename(sources[j], &map);
            let keys: VarSet = atom.vars.iter().map(|v| Var(idx(v))).collect();
            acc = Some(match acc {
                None => (node, keys),
                Some((prev, prev_keys)) => {
                    let fresh = keys.minus(prev_keys).len();
                    let deg = pow_capped(self.d, fresh)
                        .min(self.rc.nodes[node].capacity)
                        .max(1);
                    let mut joined = self.rc.join_degree(prev, node, deg);
                    let all_keys = prev_keys.union(keys);
                    let bound = pow_capped(self.d, all_keys.len());
                    if self.rc.nodes[joined].capacity > bound {
                        joined = self.rc.truncate(joined, bound);
                    }
                    (joined, all_keys)
                }
            });
        }
        let (mut node, _) = acc.expect("non-empty body");

        // Head: canonical key columns, plus the ⊕-aggregated annotation.
        let head_map: Vec<(Var, Var)> = rule
            .head
            .vars
            .iter()
            .enumerate()
            .map(|(c, v)| (Var(idx(v)), Var(c as u32)))
            .collect();
        let head_keys: VarSet = head_map.iter().map(|&(from, _)| from).collect();
        let out = self.dp.pred(&rule.head.name).expect("idb head");
        if self.sr == Semiring::Boolean {
            node = self.rc.project(node, head_keys);
            node = self.rc.rename(node, &head_map);
        } else {
            if ann_cols.is_empty() {
                node = self.rc.attach_const(node, scratch(0), self.sr.one());
                ann_cols.push(scratch(0));
            }
            let ann = ann_cols[0];
            for &c in &ann_cols[1..] {
                node = self.rc.map_bin(node, ann, c, ann, self.sr.times_op());
            }
            node = self
                .rc
                .aggregate(node, head_keys, self.sr.plus_agg(ann), TMP);
            let mut map = head_map;
            map.push((TMP, ANNOT));
            node = self.rc.rename(node, &map);
        }
        let cap = pow_capped(self.d, out.arity as u32);
        if self.rc.nodes[node].capacity > cap {
            node = self.rc.truncate(node, cap);
        }
        node
    }
}

/// Compiles `dp` to a bounded-fixpoint circuit under `bounds`. The
/// circuit's one output is the output predicate's relation after the
/// last round, in canonical schema; evaluate it with
/// [`RelationalCircuit::evaluate_ram`] or lower it to a word circuit.
pub fn compile(
    dp: &DatalogProgram,
    bounds: &FixpointBounds,
) -> Result<FixpointCircuit, DatalogError> {
    assert!(bounds.domain >= 1 && bounds.edb_rows >= 1);
    let mut c = Compiler {
        dp,
        rc: RelationalCircuit::new(),
        sr: dp.semiring,
        d: bounds.domain,
    };
    let is_rec = |r: &ProgramRule| r.body.iter().any(|a| dp.is_idb(&a.name));

    // EDB inputs, ⊕-normalized to key-distinct form on entry.
    let mut edb: BTreeMap<&str, NodeId> = BTreeMap::new();
    for p in dp.edbs() {
        let mut n = c.rc.input(p.name.clone(), p.schema(), bounds.edb_rows);
        if p.annotated {
            let agg = c.rc.aggregate(n, p.keys(), c.sr.plus_agg(ANNOT), TMP);
            n = c.rc.rename(agg, &[(TMP, ANNOT)]);
        }
        edb.insert(&p.name, n);
    }

    // Round 0: non-recursive rules.
    let mut cur: BTreeMap<&str, NodeId> = BTreeMap::new();
    for p in dp.preds.iter().filter(|p| p.is_idb) {
        let contribs: Vec<NodeId> = dp
            .program
            .rules
            .iter()
            .filter(|r| r.head.name == p.name && !is_rec(r))
            .map(|r| {
                let sources: Vec<NodeId> = r.body.iter().map(|a| edb[a.name.as_str()]).collect();
                c.rule_instance(r, &sources)
            })
            .collect();
        debug_assert!(!contribs.is_empty(), "analyze enforces a base case");
        let cap = pow_capped(bounds.domain, p.arity as u32);
        let node = c.combine(&contribs, p.keys(), p.annotated, cap);
        cur.insert(&p.name, node);
    }
    let mut delta: BTreeMap<&str, Option<NodeId>> =
        cur.iter().map(|(&n, &id)| (n, Some(id))).collect();

    // Delta rounds.
    for _ in 0..bounds.rounds {
        let mut contrib: BTreeMap<&str, Vec<NodeId>> = BTreeMap::new();
        for rule in dp.program.rules.iter().filter(|r| is_rec(r)) {
            for jd in (0..rule.body.len()).filter(|&j| dp.is_idb(&rule.body[j].name)) {
                let Some(dnode) = delta[rule.body[jd].name.as_str()] else {
                    continue;
                };
                let sources: Vec<NodeId> = rule
                    .body
                    .iter()
                    .enumerate()
                    .map(|(j, a)| {
                        if j == jd {
                            dnode
                        } else if dp.is_idb(&a.name) {
                            cur[a.name.as_str()]
                        } else {
                            edb[a.name.as_str()]
                        }
                    })
                    .collect();
                let node = c.rule_instance(rule, &sources);
                contrib.entry(&rule.head.name).or_default().push(node);
            }
        }
        for p in dp.preds.iter().filter(|p| p.is_idb) {
            let cap = pow_capped(bounds.domain, p.arity as u32);
            match contrib.get(p.name.as_str()) {
                Some(nodes) => {
                    let dnode = c.combine(nodes, p.keys(), p.annotated, cap);
                    let merged =
                        c.combine(&[cur[p.name.as_str()], dnode], p.keys(), p.annotated, cap);
                    delta.insert(&p.name, Some(dnode));
                    cur.insert(&p.name, merged);
                }
                None => {
                    delta.insert(&p.name, None);
                }
            }
        }
    }

    let out = cur[dp.output.as_str()];
    c.rc.mark_output(out);

    if let Some(n) = c.rc.nodes.iter().find(|n| n.capacity > MAX_SLOTS) {
        return Err(DatalogError::TooLarge {
            capacity: n.capacity,
            limit: MAX_SLOTS,
        });
    }
    let schema = dp.pred(&dp.output).expect("output predicate").schema();
    Ok(FixpointCircuit {
        rc: c.rc,
        schema: schema.to_vec(),
        rounds: bounds.rounds,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seminaive::{database, result_relation, seminaive};
    use crate::workloads;

    #[test]
    fn compiled_tc_matches_the_reference_on_ram() {
        let dp = DatalogProgram::parse(workloads::TRANSITIVE_CLOSURE).unwrap();
        let edges = workloads::random_edges(6, 10, 0xabcd);
        let db = database(&dp, &[("edge", edges)]).unwrap();
        let bounds = FixpointBounds::for_domain(6, 16);
        let fx = compile(&dp, &bounds).unwrap();
        let got = fx.rc.evaluate_ram(&db).unwrap().pop().unwrap();
        let want = result_relation(&dp, &seminaive(&dp, &db, bounds.rounds).unwrap());
        assert_eq!(got, want);
    }

    #[test]
    fn compiled_shortest_path_matches_the_reference_on_ram() {
        let dp = DatalogProgram::parse(workloads::SHORTEST_PATH).unwrap();
        let edges = workloads::random_weighted_edges(5, 9, 6, 0x5eed);
        let db = database(&dp, &[("edge", edges)]).unwrap();
        let bounds = FixpointBounds::for_domain(5, 16);
        let fx = compile(&dp, &bounds).unwrap();
        let got = fx.rc.evaluate_ram(&db).unwrap().pop().unwrap();
        let want = result_relation(&dp, &seminaive(&dp, &db, bounds.rounds).unwrap());
        assert_eq!(got, want);
    }

    #[test]
    fn oversized_fixpoints_are_rejected() {
        let dp = DatalogProgram::parse(workloads::TRANSITIVE_CLOSURE).unwrap();
        let bounds = FixpointBounds::for_domain(1 << 20, 4);
        let e = compile(&dp, &bounds).expect_err("too large");
        assert!(matches!(e, DatalogError::TooLarge { .. }));
    }
}
