//! End-to-end: Datalog text → bounded-fixpoint relational circuit →
//! word-level oblivious circuit, bit-compared against the RAM
//! semi-naive reference (and the provenance evaluation) on seeded
//! random graphs.

use qec_circuit::Mode;
use qec_datalog::workloads;
use qec_datalog::{
    compile, database, eval_provenance, provenance, result_relation, seminaive, DatalogProgram,
    FixpointBounds,
};

#[test]
fn lowered_transitive_closure_is_bit_identical_to_the_reference() {
    let dp = DatalogProgram::parse(workloads::TRANSITIVE_CLOSURE).unwrap();
    for seed in [1u64, 2, 3] {
        let edges = workloads::random_edges(4, 6, seed);
        let db = database(&dp, &[("edge", edges)]).unwrap();
        let bounds = FixpointBounds::for_domain(4, 8);
        let fx = compile(&dp, &bounds).unwrap();
        let want = result_relation(&dp, &seminaive(&dp, &db, bounds.rounds).unwrap());
        let ram = fx.rc.evaluate_ram(&db).unwrap().pop().unwrap();
        assert_eq!(ram, want, "RAM interpretation of the circuit (seed {seed})");
        let lowered = fx.rc.lower(Mode::Build);
        let got = lowered.run(&db).unwrap().pop().unwrap();
        assert_eq!(got, want, "word-level circuit (seed {seed})");
    }
}

#[test]
fn lowered_shortest_path_is_bit_identical_to_the_reference() {
    let dp = DatalogProgram::parse(workloads::SHORTEST_PATH).unwrap();
    let edges = workloads::random_weighted_edges(4, 6, 5, 0xbead);
    let db = database(&dp, &[("edge", edges)]).unwrap();
    let bounds = FixpointBounds::for_domain(4, 8);
    let fx = compile(&dp, &bounds).unwrap();
    let reference = seminaive(&dp, &db, bounds.rounds).unwrap();
    let want = result_relation(&dp, &reference);
    let got = fx.rc.lower(Mode::Build).run(&db).unwrap().pop().unwrap();
    assert_eq!(got, want);
    // and the provenance DAG evaluates back to the same annotations
    let pr = provenance(&dp, &db, bounds.rounds).unwrap();
    assert_eq!(eval_provenance(&dp, &pr), reference.tuples);
}

#[test]
fn reachability_works_with_a_second_edb() {
    let dp = DatalogProgram::parse(workloads::REACHABILITY).unwrap();
    let edges = workloads::random_edges(5, 8, 77);
    let db = database(&dp, &[("edge", edges), ("start", workloads::start_rows(1))]).unwrap();
    let bounds = FixpointBounds::for_domain(5, 8);
    let fx = compile(&dp, &bounds).unwrap();
    let want = result_relation(&dp, &seminaive(&dp, &db, bounds.rounds).unwrap());
    let got = fx.rc.evaluate_ram(&db).unwrap().pop().unwrap();
    assert_eq!(got, want);
}

#[test]
fn cross_iteration_consing_collapses_gates() {
    // The same circuit, lowered with and without online hash-consing:
    // the unrolled rounds must share structure (measured, not assumed).
    let dp = DatalogProgram::parse(workloads::TRANSITIVE_CLOSURE).unwrap();
    let fx = compile(&dp, &FixpointBounds::for_domain(4, 8)).unwrap();
    let consed = fx.rc.lower(Mode::Count).circuit.size();
    let naive = fx.rc.lower_without_cse(Mode::Count).circuit.size();
    assert!(
        consed < naive,
        "consing must collapse cross-iteration redundancy ({consed} vs {naive})"
    );
}
