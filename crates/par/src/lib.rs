//! A minimal scoped work-stealing thread pool for the circuit compile
//! pipeline.
//!
//! The build environment is offline (no rayon), so this crate implements
//! the one scheduling primitive the pipeline needs: run `n` independent
//! index-addressed tasks across a bounded set of workers, with chunked
//! deal-out and back-steals so uneven task costs (a huge sort network next
//! to a trivial mux column) still balance. It follows the
//! `std::thread::scope` pattern already proven by the evaluation engine's
//! level-parallel interpreter: no persistent threads, no unsafe lifetime
//! extension — every parallel region owns its workers and joins them
//! before returning, so borrowed closures are sound by construction.
//!
//! Scheduling model: each worker owns a deque of chunk ranges, dealt out
//! contiguously (worker 0 gets the first block, etc., which keeps index
//! locality). Workers pop their own deque from the front and steal from
//! the *back* of a victim's deque when empty. No tasks are injected after
//! the region starts, so "all deques empty" is a correct termination
//! condition. The calling thread participates as worker 0; a pool with
//! one thread (or one task) degrades to a plain inline loop with zero
//! synchronization, which is what keeps single-threaded determinism
//! trivially byte-identical.

use std::collections::VecDeque;
use std::mem::MaybeUninit;
use std::ops::Range;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Environment variable controlling the default worker count used by
/// [`Pool::from_env`] (and therefore by every pool-aware entry point that
/// defaults its pool): unset or unparsable means
/// `std::thread::available_parallelism()`.
pub const THREADS_ENV: &str = "QEC_THREADS";

/// A worker-count handle. `Pool` is deliberately trivial to copy and keep
/// around: it owns no threads. Each parallel region ([`Pool::run_chunks`],
/// [`Pool::map`]) spawns scoped workers for just that region.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Pool {
    threads: usize,
}

type ChunkQueue = Mutex<VecDeque<Range<usize>>>;

impl Pool {
    /// A pool running `threads` workers (clamped to at least 1).
    pub fn new(threads: usize) -> Self {
        Pool {
            threads: threads.max(1),
        }
    }

    /// The single-threaded pool: every operation runs inline on the
    /// calling thread.
    pub fn sequential() -> Self {
        Pool { threads: 1 }
    }

    /// Worker count from the environment: `QEC_THREADS` if set to a
    /// positive integer (surrounding whitespace tolerated), otherwise
    /// `std::thread::available_parallelism()` (1 if even that is
    /// unavailable).
    ///
    /// A set-but-invalid value (`"0"`, `"abc"`, the empty string) also
    /// falls back — but loudly: one stderr note per process plus a
    /// `pool.threads_env_invalid` counter on the global recorder, so a
    /// typo in a job script can't silently grab every core (or silently
    /// serialize a sweep).
    pub fn from_env() -> Self {
        let threads = match std::env::var(THREADS_ENV) {
            Ok(raw) => match parse_threads(&raw) {
                Some(n) => n,
                None => {
                    warn_invalid_threads(&raw);
                    default_threads()
                }
            },
            Err(_) => default_threads(),
        };
        Pool::new(threads)
    }

    /// The number of workers this pool runs.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// True when every operation runs inline (one worker).
    pub fn is_sequential(&self) -> bool {
        self.threads == 1
    }

    /// The default chunk size for `n` tasks: ~8 chunks per worker so
    /// back-steals have something to grab, but never below 1.
    pub fn grain_for(&self, n: usize) -> usize {
        (n / (self.threads * 8)).max(1)
    }

    /// Runs `f` over every index range covering `0..n`, split into chunks
    /// of ~`grain` indices, across the pool's workers. Each index is
    /// covered exactly once. Blocks until all chunks are done; panics in
    /// any worker propagate.
    pub fn run_chunks<F>(&self, n: usize, grain: usize, f: F)
    where
        F: Fn(Range<usize>) + Sync,
    {
        if n == 0 {
            return;
        }
        let grain = grain.max(1);
        let chunks: Vec<Range<usize>> = (0..n)
            .step_by(grain)
            .map(|s| s..(s + grain).min(n))
            .collect();
        let workers = self.threads.min(chunks.len());
        if workers <= 1 {
            for c in chunks {
                f(c);
            }
            return;
        }
        // Contiguous deal-out: worker w owns chunks [w*per .. (w+1)*per).
        // Rounding can leave fewer blocks than workers; spawn one worker
        // per block, never more.
        let per = chunks.len().div_ceil(workers);
        let num_chunks = chunks.len();
        let queues: Vec<ChunkQueue> = chunks
            .chunks(per)
            .map(|block| Mutex::new(block.iter().cloned().collect()))
            .collect();
        let workers = queues.len();
        // Observability: when the process-global recorder is live, count
        // tasks/steals and accumulate per-worker busy nanoseconds. The
        // untraced path pays exactly one recorder-enabled check per
        // parallel region — nothing per chunk.
        let rec = qec_obs::global();
        let traced = rec.is_enabled();
        let busy_ns: Vec<AtomicU64> = (0..workers).map(|_| AtomicU64::new(0)).collect();
        let steals: Vec<AtomicU64> = (0..workers).map(|_| AtomicU64::new(0)).collect();
        let region_start = Instant::now();
        let work = |me: usize| loop {
            let mine = queues[me].lock().unwrap().pop_front();
            let job = match mine {
                Some(j) => j,
                None => {
                    let mut stolen = None;
                    for off in 1..queues.len() {
                        let victim = (me + off) % queues.len();
                        if let Some(j) = queues[victim].lock().unwrap().pop_back() {
                            stolen = Some(j);
                            break;
                        }
                    }
                    match stolen {
                        Some(j) => {
                            if traced {
                                steals[me].fetch_add(1, Ordering::Relaxed);
                            }
                            j
                        }
                        None => return,
                    }
                }
            };
            if traced {
                let t0 = Instant::now();
                f(job);
                busy_ns[me].fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
            } else {
                f(job);
            }
        };
        std::thread::scope(|s| {
            for w in 1..workers {
                let work = &work;
                s.spawn(move || work(w));
            }
            work(0);
        });
        if traced {
            rec.add("pool.regions", 1);
            rec.add("pool.tasks", num_chunks as u64);
            let total_steals: u64 = steals.iter().map(|s| s.load(Ordering::Relaxed)).sum();
            rec.add("pool.steals", total_steals);
            for (w, busy) in busy_ns.iter().enumerate() {
                let ns = busy.load(Ordering::Relaxed);
                rec.add(&format!("pool.worker.{w}.busy_ns"), ns);
                rec.add("pool.busy_ns", ns);
            }
            rec.record_span(
                "pool.region",
                region_start,
                region_start.elapsed().as_nanos() as u64,
            );
        }
    }

    /// Computes `f(i)` for every `i in 0..n` across the pool's workers and
    /// returns the results in index order. Each slot is written exactly
    /// once (the chunk ranges partition `0..n`), so the uninitialized
    /// buffer is fully initialized when `run_chunks` returns.
    pub fn map<R, F>(&self, n: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        if self.threads <= 1 || n <= 1 {
            return (0..n).map(f).collect();
        }
        let mut out: Vec<MaybeUninit<R>> = Vec::with_capacity(n);
        out.resize_with(n, MaybeUninit::uninit);
        let ptr = SendPtr(out.as_mut_ptr());
        self.run_chunks(n, self.grain_for(n), |range| {
            let p = &ptr;
            for i in range {
                // SAFETY: ranges from run_chunks are disjoint and cover
                // 0..n, so each slot is written exactly once, and `out`
                // outlives the scoped workers.
                unsafe { (*p.0.add(i)).write(f(i)) };
            }
        });
        out.into_iter()
            .map(|m| {
                // SAFETY: every index was written above.
                unsafe { m.assume_init() }
            })
            .collect()
    }
}

impl Default for Pool {
    fn default() -> Self {
        Pool::from_env()
    }
}

/// What `QEC_THREADS` accepts: a positive integer, ignoring surrounding
/// whitespace. `None` for anything else — zero, garbage, empty.
pub(crate) fn parse_threads(raw: &str) -> Option<usize> {
    raw.trim().parse::<usize>().ok().filter(|&n| n >= 1)
}

fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// One-time (per process) diagnostic for an invalid `QEC_THREADS`: a
/// stderr note and a `pool.threads_env_invalid` bump on the global
/// recorder. `from_env` can run thousands of times in a sweep, so the
/// note must not repeat; the counter fires with it.
fn warn_invalid_threads(raw: &str) {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        eprintln!(
            "warning: {THREADS_ENV}={raw:?} is not a positive integer; \
             falling back to available_parallelism()"
        );
        qec_obs::global().add("pool.threads_env_invalid", 1);
    });
}

/// Raw-pointer wrapper so disjoint-index writers can share the output
/// buffer across scoped threads.
struct SendPtr<T>(*mut T);
unsafe impl<T> Send for SendPtr<T> {}
unsafe impl<T> Sync for SendPtr<T> {}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn clamps_to_one_worker() {
        assert_eq!(Pool::new(0).threads(), 1);
        assert!(Pool::new(0).is_sequential());
        assert_eq!(Pool::new(7).threads(), 7);
    }

    #[test]
    fn covers_every_index_exactly_once() {
        for threads in [1, 2, 3, 8] {
            for n in [0, 1, 2, 7, 64, 1000] {
                let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
                Pool::new(threads).run_chunks(n, 3, |r| {
                    for i in r {
                        hits[i].fetch_add(1, Ordering::Relaxed);
                    }
                });
                assert!(
                    hits.iter().all(|h| h.load(Ordering::Relaxed) == 1),
                    "threads={threads} n={n}"
                );
            }
        }
    }

    #[test]
    fn map_returns_results_in_index_order() {
        for threads in [1, 2, 4, 16] {
            let got = Pool::new(threads).map(513, |i| i * i);
            let want: Vec<usize> = (0..513).map(|i| i * i).collect();
            assert_eq!(got, want, "threads={threads}");
        }
    }

    #[test]
    fn map_handles_unsized_work() {
        // wildly uneven task costs still produce ordered, complete output
        let got = Pool::new(4).map(97, |i| {
            if i % 13 == 0 {
                (0..50_000u64).sum::<u64>().wrapping_add(i as u64)
            } else {
                i as u64
            }
        });
        for (i, &v) in got.iter().enumerate() {
            let want = if i % 13 == 0 {
                (0..50_000u64).sum::<u64>().wrapping_add(i as u64)
            } else {
                i as u64
            };
            assert_eq!(v, want);
        }
    }

    // Note: a panic on a spawned worker surfaces as the scope's own
    // "a scoped thread panicked" payload, so no `expected` message here —
    // the property under test is propagation, not the payload.
    #[test]
    #[should_panic]
    fn worker_panics_propagate() {
        Pool::new(4).run_chunks(64, 1, |r| {
            if r.start == 33 {
                panic!("boom");
            }
        });
    }

    /// Serializes the tests that mutate `QEC_THREADS` (cargo runs tests
    /// on several threads in one process).
    static ENV_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn parse_threads_accepts_positive_integers_only() {
        // The satellite quartet: "0", "abc", " 4 ", and empty.
        assert_eq!(parse_threads("0"), None);
        assert_eq!(parse_threads("abc"), None);
        assert_eq!(parse_threads(" 4 "), Some(4), "whitespace stays tolerated");
        assert_eq!(parse_threads(""), None);
        assert_eq!(parse_threads("1"), Some(1));
        assert_eq!(parse_threads("16"), Some(16));
        assert_eq!(parse_threads("-3"), None);
        assert_eq!(parse_threads("4.0"), None);
    }

    /// One test (not several) because the invalid-env warning is gated by
    /// a per-process `Once`: the recorder must be installed before the
    /// first garbage `from_env` call in the process.
    #[test]
    fn from_env_honors_padded_value_and_warns_once_on_garbage() {
        let _guard = ENV_LOCK.lock().unwrap();
        let rec = qec_obs::Recorder::new(true);
        let old = qec_obs::install(rec.clone());
        let prior = std::env::var(THREADS_ENV).ok();

        std::env::set_var(THREADS_ENV, " 4 ");
        assert_eq!(Pool::from_env().threads(), 4);
        let fallback = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        for bad in ["0", "abc", ""] {
            std::env::set_var(THREADS_ENV, bad);
            assert_eq!(Pool::from_env().threads(), fallback, "input {bad:?}");
        }

        match prior {
            Some(v) => std::env::set_var(THREADS_ENV, v),
            None => std::env::remove_var(THREADS_ENV),
        }
        qec_obs::install(old);
        assert_eq!(
            rec.snapshot()
                .counters
                .get("pool.threads_env_invalid")
                .copied(),
            Some(1),
            "exactly one warning per process, even across three bad values"
        );
    }

    #[test]
    fn grain_never_zero() {
        assert_eq!(Pool::new(8).grain_for(0), 1);
        assert_eq!(Pool::new(8).grain_for(3), 1);
        assert!(Pool::new(2).grain_for(1_000) >= 1);
    }
}
