//! Circuit-construction benchmarks: the operator circuits of Sec. 5 and
//! 6.3 in count mode (size/depth accounting without materialization) —
//! the regime the scaling experiments X5–X8 and X12 sweep.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qec_circuit::{
    aggregate, encode_relation, join_degree_bounded, join_output_bounded, join_pk, project,
    sort_slots, AggOp, Builder, Mode, SortKey,
};
use qec_relation::{Var, VarSet};

fn bench_sort(c: &mut Criterion) {
    let mut g = c.benchmark_group("sort_network");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_secs(3));
    g.warm_up_time(std::time::Duration::from_millis(500));
    for e in [8u32, 10] {
        let k = 1usize << e;
        g.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            b.iter(|| {
                let mut bld = Builder::new(Mode::Count);
                let w = encode_relation(&mut bld, vec![Var(0), Var(1)], k);
                let s = sort_slots(&mut bld, &w, &SortKey::Columns(vec![Var(0)]));
                bld.finish(s.flatten()).size()
            })
        });
    }
    g.finish();
}

fn bench_unary_ops(c: &mut Criterion) {
    let mut g = c.benchmark_group("unary_ops");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_secs(3));
    g.warm_up_time(std::time::Duration::from_millis(500));
    let k = 1usize << 10;
    g.bench_function("project/K=1024", |b| {
        b.iter(|| {
            let mut bld = Builder::new(Mode::Count);
            let w = encode_relation(&mut bld, vec![Var(0), Var(1)], k);
            let p = project(&mut bld, &w, VarSet::singleton(Var(0)));
            bld.finish(p.flatten()).size()
        })
    });
    g.bench_function("aggregate/K=1024", |b| {
        b.iter(|| {
            let mut bld = Builder::new(Mode::Count);
            let w = encode_relation(&mut bld, vec![Var(0), Var(1)], k);
            let a = aggregate(
                &mut bld,
                &w,
                VarSet::singleton(Var(0)),
                AggOp::Sum(Var(1)),
                Var(5),
            );
            bld.finish(a.flatten()).size()
        })
    });
    g.finish();
}

fn bench_joins(c: &mut Criterion) {
    let mut g = c.benchmark_group("join_circuits");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_secs(3));
    g.warm_up_time(std::time::Duration::from_millis(500));
    let m = 1usize << 8;
    g.bench_function("pk_join/M=256", |b| {
        b.iter(|| {
            let mut bld = Builder::new(Mode::Count);
            let r = encode_relation(&mut bld, vec![Var(0), Var(1)], m);
            let s = encode_relation(&mut bld, vec![Var(1), Var(2)], 2 * m);
            let j = join_pk(&mut bld, &r, &s);
            bld.finish(j.flatten()).size()
        })
    });
    g.bench_function("degree_join/M=256,deg=8", |b| {
        b.iter(|| {
            let mut bld = Builder::new(Mode::Count);
            let r = encode_relation(&mut bld, vec![Var(0), Var(1)], m);
            let s = encode_relation(&mut bld, vec![Var(1), Var(2)], 2 * m);
            let j = join_degree_bounded(&mut bld, &r, &s, 8);
            bld.finish(j.flatten()).size()
        })
    });
    g.bench_function("output_join/M=256,OUT=64", |b| {
        b.iter(|| {
            let mut bld = Builder::new(Mode::Count);
            let r = encode_relation(&mut bld, vec![Var(0), Var(1)], m);
            let s = encode_relation(&mut bld, vec![Var(1), Var(2)], m);
            let j = join_output_bounded(&mut bld, &r, &s, 64);
            bld.finish(j.flatten()).size()
        })
    });
    g.finish();
}

criterion_group!(benches, bench_sort, bench_unary_ops, bench_joins);
criterion_main!(benches);
