//! End-to-end benchmarks: evaluating compiled circuits on instances and
//! the secure two-party protocol, against the RAM baselines.

use criterion::{criterion_group, criterion_main, Criterion};
use qec_circuit::{encode_relation, join_pk, lower_with, Builder, CompileOptions, Mode};
use qec_core::compile_fcq;
use qec_query::baseline::{evaluate_pairwise, generic_join};
use qec_query::triangle;
use qec_relation::{random_relation, Database, DcSet, DegreeConstraint, Var};

fn triangle_setup(n: usize) -> (qec_query::Cq, DcSet, Database) {
    let q = triangle();
    let dc = DcSet::from_vec(
        q.atoms
            .iter()
            .map(|a| DegreeConstraint::cardinality(a.vars, n as u64))
            .collect(),
    );
    let mut db = Database::new();
    db.insert("R", random_relation(vec![Var(0), Var(1)], n - 2, 1));
    db.insert("S", random_relation(vec![Var(1), Var(2)], n - 2, 2));
    db.insert("T", random_relation(vec![Var(0), Var(2)], n - 2, 3));
    (q, dc, db)
}

fn bench_triangle_eval(c: &mut Criterion) {
    let mut g = c.benchmark_group("triangle_eval");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_secs(3));
    g.warm_up_time(std::time::Duration::from_millis(500));
    let (q, dc, db) = triangle_setup(32);
    let p = compile_fcq(&q, &dc).unwrap();
    g.bench_function("ram_interpreter/N=32", |b| {
        b.iter(|| p.rc.evaluate_ram(&db).unwrap())
    });
    let lowered = p.rc.lower(Mode::Build);
    let inputs = lowered.layout.values(&db).unwrap();
    g.bench_function("word_circuit/N=32", |b| {
        b.iter(|| lowered.circuit.evaluate(&inputs).unwrap())
    });
    g.bench_function("baseline_pairwise/N=32", |b| {
        b.iter(|| evaluate_pairwise(&q, &db).unwrap())
    });
    g.bench_function("baseline_generic_join/N=32", |b| {
        b.iter(|| generic_join(&q, &db).unwrap())
    });
    g.finish();
}

fn bench_mpc(c: &mut Criterion) {
    let mut g = c.benchmark_group("mpc_protocol");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_secs(3));
    g.warm_up_time(std::time::Duration::from_millis(500));
    let m = 8usize;
    let mut b = Builder::new(Mode::Build);
    let r = encode_relation(&mut b, vec![Var(0), Var(1)], m);
    let s = encode_relation(&mut b, vec![Var(1), Var(2)], m);
    let j = join_pk(&mut b, &r, &s);
    let circ = b.finish(j.flatten());
    let bc = lower_with(&circ, 16, &CompileOptions::from_env());
    let rr = random_relation(vec![Var(0), Var(1)], m, 7);
    let ss = qec_relation::random_degree_bounded(Var(1), Var(2), m, 1, 8);
    let mut inputs = qec_circuit::relation_to_values(&rr, m).unwrap();
    inputs.extend(qec_circuit::relation_to_values(&ss, m).unwrap());
    let bits = bc.pack_inputs(&inputs);
    g.bench_function("two_party_pk_join/M=8", |bch| {
        bch.iter(|| qec_mpc::run_two_party(&bc, &bits, 42).unwrap())
    });
    g.bench_function("plaintext_bits/M=8", |bch| b_iter_plain(bch, &bc, &bits));
    g.finish();
}

fn b_iter_plain(bch: &mut criterion::Bencher, bc: &qec_circuit::lower::BitCircuit, bits: &[bool]) {
    bch.iter(|| bc.evaluate(bits).unwrap());
}

criterion_group!(benches, bench_triangle_eval, bench_mpc);
criterion_main!(benches);
