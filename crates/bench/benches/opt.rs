//! Optimizer benchmarks: the cost of `optimize` itself on the ≥ 10⁵-gate
//! degree-bounded join circuit, and the evaluation payoff — the batched
//! engine over the raw tape (optimizer off) against the optimized tape.
//! The headline comparison is `eval_batch/raw` vs
//! `eval_batch/optimized`; the acceptance bar for the optimizer is a
//! ≥ 15% throughput gain there.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use qec_circuit::{
    encode_relation, join_degree_bounded, optimize_with, Builder, Circuit, CompileOptions,
    CompiledCircuit, Mode,
};
use qec_relation::Var;

const CAP: usize = 16;
const BATCH: usize = 64;

/// R(a,b) ⋈ S(b,c), degree bound 4, built without online hash-consing so
/// the offline pass sees the unpreprocessed builder output.
fn raw_join_circuit() -> Circuit {
    let mut b = Builder::without_cse(Mode::Build);
    let r = encode_relation(&mut b, vec![Var(0), Var(1)], CAP);
    let s = encode_relation(&mut b, vec![Var(1), Var(2)], CAP);
    let j = join_degree_bounded(&mut b, &r, &s, 4);
    b.finish(j.flatten())
}

fn instances(c: &Circuit, batch: usize) -> Vec<Vec<u64>> {
    (0..batch)
        .map(|lane| {
            let mut inp = Vec::with_capacity(c.num_inputs());
            for rel in 0..2 {
                for slot in 0..CAP {
                    let key = (slot as u64 + lane as u64) % 7;
                    inp.extend_from_slice(&if rel == 0 {
                        [slot as u64, key, 1]
                    } else {
                        [key, slot as u64, 1]
                    });
                }
            }
            inp
        })
        .collect()
}

fn bench_opt(c: &mut Criterion) {
    let raw = raw_join_circuit();
    assert!(raw.size() >= 100_000, "bench circuit must stay ≥ 1e5 gates");
    let (opt, st) = optimize_with(&raw, &CompileOptions::from_env());
    assert!(
        st.gate_reduction() >= 0.25,
        "optimizer must keep cutting ≥ 25% of the join circuit's gates"
    );

    let mut g = c.benchmark_group("optimize");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_secs(3));
    g.warm_up_time(std::time::Duration::from_millis(500));
    // one iteration = one full optimization of the raw circuit
    g.throughput(Throughput::Elements(raw.size()));
    g.bench_function("word_pass", |b| {
        b.iter(|| optimize_with(&raw, &CompileOptions::from_env()).0.size())
    });
    g.finish();

    let eng_raw =
        CompiledCircuit::compile_with(&raw, &CompileOptions::from_env().with_optimize(false))
            .expect("build-mode circuit")
            .0;
    let eng_opt = CompiledCircuit::compile_with(&raw, &CompileOptions::from_env())
        .expect("build-mode circuit")
        .0;
    assert!(eng_opt.stats().tape_len <= opt.num_wires());
    let batch = instances(&raw, BATCH);
    assert_eq!(
        eng_raw.evaluate_batch(&batch),
        eng_opt.evaluate_batch(&batch),
        "both tapes must agree before being timed"
    );

    let mut g = c.benchmark_group("eval_batch");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_secs(3));
    g.warm_up_time(std::time::Duration::from_millis(500));
    // normalize both evaluators to the same unit of work: one batch of
    // raw-circuit gate evaluations (the optimized tape does fewer actual
    // instructions for the same semantic work — that is the payoff)
    g.throughput(Throughput::Elements(raw.size() * BATCH as u64));
    g.bench_function(BenchmarkId::new("raw", BATCH), |b| {
        b.iter(|| eng_raw.evaluate_batch(&batch))
    });
    g.bench_function(BenchmarkId::new("optimized", BATCH), |b| {
        b.iter(|| eng_opt.evaluate_batch(&batch))
    });
    g.finish();
}

criterion_group!(benches, bench_opt);
criterion_main!(benches);
