//! Evaluation-engine benchmarks: per-instance interpretation
//! ([`Circuit::evaluate`]) against the compiled engine
//! ([`CompiledCircuit`]) on a ≥ 10⁵-gate degree-bounded join circuit.
//! The headline comparison is `interpreter` vs `engine_batch/64` — the
//! acceptance bar for the engine is ≥ 4× there. Throughput is annotated
//! in gate-evaluations per iteration so the JSON output
//! (`CRITERION_JSON=...`) carries absolute rates, not just times.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use qec_circuit::{
    encode_relation, join_degree_bounded, Builder, Circuit, CompileOptions, CompiledCircuit, Mode,
};
use qec_relation::Var;

const CAP: usize = 16;
const BATCH: usize = 64;

/// R(a,b) ⋈ S(b,c), degree bound 4 — ~2·10⁵ word gates.
fn join_circuit() -> Circuit {
    let mut b = Builder::new(Mode::Build);
    let r = encode_relation(&mut b, vec![Var(0), Var(1)], CAP);
    let s = encode_relation(&mut b, vec![Var(1), Var(2)], CAP);
    let j = join_degree_bounded(&mut b, &r, &s, 4);
    b.finish(j.flatten())
}

fn instances(c: &Circuit, batch: usize) -> Vec<Vec<u64>> {
    (0..batch)
        .map(|lane| {
            let mut inp = Vec::with_capacity(c.num_inputs());
            for rel in 0..2 {
                for slot in 0..CAP {
                    let key = (slot as u64 + lane as u64) % 7;
                    inp.extend_from_slice(&if rel == 0 {
                        [slot as u64, key, 1]
                    } else {
                        [key, slot as u64, 1]
                    });
                }
            }
            inp
        })
        .collect()
}

fn bench_engine(c: &mut Criterion) {
    let circuit = join_circuit();
    assert!(
        circuit.size() >= 100_000,
        "bench circuit must stay ≥ 1e5 gates"
    );
    let engine = CompiledCircuit::compile_with(&circuit, &CompileOptions::from_env())
        .expect("build-mode circuit")
        .0;
    assert!(
        engine.stats().peak_registers < circuit.num_wires(),
        "register allocation must beat the O(size) value buffer"
    );
    let batch = instances(&circuit, BATCH);

    let mut g = c.benchmark_group("engine_eval");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_secs(3));
    g.warm_up_time(std::time::Duration::from_millis(500));
    // one iteration = the whole 64-instance batch, whichever evaluator runs
    g.throughput(Throughput::Elements(
        engine.stats().tape_len as u64 * BATCH as u64,
    ));

    g.bench_function("interpreter", |b| {
        b.iter(|| {
            batch
                .iter()
                .map(|i| circuit.evaluate(i).expect("evaluates"))
                .collect::<Vec<_>>()
        })
    });
    g.bench_function(BenchmarkId::new("engine_batch", 1), |b| {
        b.iter(|| {
            batch
                .iter()
                .map(|i| engine.evaluate(i).expect("evaluates"))
                .collect::<Vec<_>>()
        })
    });
    g.bench_function(BenchmarkId::new("engine_batch", BATCH), |b| {
        b.iter(|| engine.evaluate_batch(&batch))
    });
    g.finish();

    let mut g = c.benchmark_group("engine_compile");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_secs(3));
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.bench_function("compile", |b| {
        b.iter(|| {
            CompiledCircuit::compile_with(&circuit, &CompileOptions::from_env())
                .expect("build-mode circuit")
                .0
                .stats()
                .tape_len
        })
    });
    g.finish();
}

criterion_group!(benches, bench_engine);
criterion_main!(benches);
