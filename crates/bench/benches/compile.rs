//! Compile-time benchmarks: bounds, proof sequences, PANDA-C, GHDs.
//!
//! These measure the *query compiler* (data-independent, runs once per
//! query/constraint set), corresponding to the log-space uniform
//! generation step of Theorems 3–5.

use criterion::{criterion_group, criterion_main, Criterion};
use qec_core::{compile_fcq, OutputSensitive};
use qec_entropy::{polymatroid_bound, prove_bound};
use qec_query::{k_cycle, k_path, triangle, Cq};
use qec_relation::{DcSet, DegreeConstraint, Var, VarSet};

fn uniform_dc(cq: &Cq, n: u64) -> DcSet {
    DcSet::from_vec(
        cq.atoms
            .iter()
            .map(|a| DegreeConstraint::cardinality(a.vars, n))
            .collect(),
    )
}

fn bench_bounds(c: &mut Criterion) {
    let mut g = c.benchmark_group("bounds");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_secs(3));
    g.warm_up_time(std::time::Duration::from_millis(500));
    for (name, q) in [
        ("triangle", triangle()),
        ("cycle4", k_cycle(4)),
        ("cycle5", k_cycle(5)),
    ] {
        let dc = uniform_dc(&q, 1 << 10);
        g.bench_function(format!("polymatroid/{name}"), |b| {
            b.iter(|| polymatroid_bound(q.num_vars(), &dc, q.all_vars()).unwrap())
        });
        g.bench_function(format!("proofseq/{name}"), |b| {
            b.iter(|| prove_bound(q.num_vars(), &dc, q.all_vars(), None).unwrap())
        });
    }
    g.finish();
}

fn bench_panda_compile(c: &mut Criterion) {
    let mut g = c.benchmark_group("panda_compile");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_secs(3));
    g.warm_up_time(std::time::Duration::from_millis(500));
    for e in [6u32, 10] {
        let q = triangle();
        let dc = uniform_dc(&q, 1 << e);
        g.bench_function(format!("triangle/N=2^{e}"), |b| {
            b.iter(|| compile_fcq(&q, &dc).unwrap())
        });
    }
    let q = triangle();
    let mut dc = uniform_dc(&q, 1 << 10);
    dc.add(DegreeConstraint::degree(
        VarSet::singleton(Var(1)),
        [Var(1), Var(2)].into_iter().collect(),
        16,
    ));
    g.bench_function("triangle+deg/N=2^10", |b| {
        b.iter(|| compile_fcq(&q, &dc).unwrap())
    });
    g.finish();
}

fn bench_output_sensitive_compile(c: &mut Criterion) {
    let mut g = c.benchmark_group("yannakakis_compile");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_secs(3));
    g.warm_up_time(std::time::Duration::from_millis(500));
    let q0 = k_path(3);
    let q = Cq {
        free: [Var(0), Var(3)].into_iter().collect(),
        ..q0
    };
    let dc = uniform_dc(&q, 1 << 8);
    g.bench_function("build+count+query/path3_proj", |b| {
        b.iter(|| {
            let os = OutputSensitive::build(&q, &dc, 2_000).unwrap();
            let count = os.count_circuit().unwrap();
            let query = os.query_circuit(64).unwrap();
            (count.nodes.len(), query.nodes.len())
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_bounds,
    bench_panda_compile,
    bench_output_sensitive_compile
);
criterion_main!(benches);
