//! BitEngine benchmarks: per-instance bit-circuit interpretation
//! ([`BitCircuit::evaluate`]) against the bitsliced transposed engine
//! ([`CompiledBitCircuit`]) on the lowered X15 join circuit (~4·10⁶
//! AND/XOR/NOT gates). The headline comparison is `bit_interpreter` vs
//! `bitengine/scalar-64` — the acceptance bar is ≥ 8× there; wide
//! kernels run at their full lane count. Throughput is annotated in
//! bit-gate evaluations per iteration so the JSON output
//! (`CRITERION_JSON=...`) carries absolute rates, not just times.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use qec_circuit::lower::BitCircuit;
use qec_circuit::{
    encode_relation, join_degree_bounded, lower_with, BitEvalScratch, BitKernel, Builder,
    CompileOptions, CompiledBitCircuit, Mode,
};
use qec_relation::Var;

const CAP: usize = 16;
const BATCH: usize = 64;

/// R(a,b) ⋈ S(b,c), degree bound 4, lowered at width 16.
fn join_bits() -> BitCircuit {
    let mut b = Builder::new(Mode::Build);
    let r = encode_relation(&mut b, vec![Var(0), Var(1)], CAP);
    let s = encode_relation(&mut b, vec![Var(1), Var(2)], CAP);
    let j = join_degree_bounded(&mut b, &r, &s, 4);
    let c = b.finish(j.flatten());
    lower_with(&c, 16, &CompileOptions::from_env())
}

fn instances(bits: &BitCircuit, batch: usize) -> Vec<Vec<bool>> {
    (0..batch)
        .map(|lane| {
            let mut inp = Vec::with_capacity(2 * CAP * 3);
            for rel in 0..2 {
                for slot in 0..CAP {
                    let key = (slot as u64 + lane as u64) % 7;
                    inp.extend_from_slice(&if rel == 0 {
                        [slot as u64, key, 1]
                    } else {
                        [key, slot as u64, 1]
                    });
                }
            }
            bits.pack_inputs(&inp)
        })
        .collect()
}

fn bench_bitengine(c: &mut Criterion) {
    let bits = join_bits();
    assert!(
        bits.gates().len() >= 1_000_000,
        "bench bit circuit must stay ≥ 1e6 gates"
    );
    let eng = CompiledBitCircuit::compile(&bits);
    assert!(
        eng.stats().peak_registers < bits.gates().len(),
        "register allocation must beat the O(gates) value buffer"
    );
    let widest = BitKernel::available()
        .iter()
        .map(|k| k.lanes())
        .max()
        .unwrap_or(BATCH);
    let batch = instances(&bits, BATCH.max(widest));

    let mut g = c.benchmark_group("bitengine_eval");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_secs(3));
    g.warm_up_time(std::time::Duration::from_millis(500));
    // one iteration = a 64-instance batch for the narrow rows; wide
    // kernels re-declare throughput at their full lane count below
    g.throughput(Throughput::Elements(
        eng.stats().tape_len as u64 * BATCH as u64,
    ));

    g.bench_function("bit_interpreter", |b| {
        let mut sc = BitEvalScratch::default();
        b.iter(|| {
            batch[..BATCH]
                .iter()
                .map(|i| bits.evaluate_with(i, &mut sc).expect("evaluates").to_vec())
                .collect::<Vec<_>>()
        })
    });
    g.bench_function(BenchmarkId::new("bitengine", "scalar-1"), |b| {
        let mut sc = eng.scratch();
        b.iter(|| {
            batch[..BATCH]
                .iter()
                .map(|i| {
                    eng.evaluate_batch_kernel(std::slice::from_ref(i), BitKernel::Scalar, &mut sc)
                })
                .collect::<Vec<_>>()
        })
    });
    g.bench_function(
        BenchmarkId::new("bitengine", format!("scalar-{BATCH}")),
        |b| {
            let mut sc = eng.scratch();
            b.iter(|| eng.evaluate_batch_kernel(&batch[..BATCH], BitKernel::Scalar, &mut sc))
        },
    );
    for kernel in BitKernel::available() {
        if kernel == BitKernel::Scalar {
            continue;
        }
        // full lane count so no lanes idle
        let lanes = kernel.lanes();
        g.throughput(Throughput::Elements(
            eng.stats().tape_len as u64 * lanes as u64,
        ));
        g.bench_function(
            BenchmarkId::new("bitengine", format!("{}-{lanes}", kernel.name())),
            |b| {
                let mut sc = eng.scratch();
                b.iter(|| eng.evaluate_batch_kernel(&batch[..lanes], kernel, &mut sc))
            },
        );
    }
    g.finish();

    let mut g = c.benchmark_group("bitengine_compile");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_secs(3));
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.bench_function("compile", |b| {
        b.iter(|| CompiledBitCircuit::compile(&bits).stats().tape_len)
    });
    g.finish();
}

criterion_group!(benches, bench_bitengine);
criterion_main!(benches);
