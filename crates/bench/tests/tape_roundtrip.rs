//! Corpus replay through the persistence path: every checked-in corpus
//! case (`tests/corpus/*.case`) is compiled, tape-encoded, saved to
//! disk, and re-evaluated by the `tape_eval` child binary from the
//! serialized bytes alone. The child's outputs must equal the
//! in-process compiled engine's — the compile-once /
//! load-and-evaluate-many contract across a real process boundary, on
//! real regression cases rather than synthetic circuits.

use qec_check::load_corpus;
use qec_circuit::{lower_with, BitTape, CompileOptions, CompiledCircuit, Mode, WordTape};
use qec_core::naive_circuit;
use std::io::Write as _;
use std::path::Path;
use std::process::{Command, Stdio};

fn run_child(kind: &str, tape_path: &Path, stdin_line: &str) -> String {
    let mut child = Command::new(env!("CARGO_BIN_EXE_tape_eval"))
        .arg(kind)
        .arg(tape_path)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("tape_eval spawns");
    child
        .stdin
        .take()
        .expect("child stdin")
        .write_all(stdin_line.as_bytes())
        .expect("child accepts inputs");
    let out = child.wait_with_output().expect("tape_eval exits");
    assert!(
        out.status.success(),
        "tape_eval {kind} failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8_lossy(&out.stdout).trim().to_string()
}

#[test]
fn corpus_cases_replay_through_save_load_evaluate_in_a_child_process() {
    let corpus = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../tests/corpus");
    let cases = load_corpus(&corpus).expect("corpus loads");
    assert!(!cases.is_empty(), "corpus must not be empty");
    let dir = std::env::temp_dir();
    let pid = std::process::id();
    for (case_path, case) in cases {
        let name = case_path
            .file_stem()
            .expect("corpus file stem")
            .to_string_lossy()
            .to_string();
        let (cq, db, dc) = case.materialize().expect("case materializes");
        let (rc, _) = naive_circuit(&cq, &dc).expect("naive circuit builds");
        let lowered = rc.lower_with(Mode::Build, &CompileOptions::sequential());
        let inputs = lowered.layout.values(&db).expect("layout inputs");

        // In-process reference: the compiled engine on the same circuit.
        let (engine, _) =
            CompiledCircuit::compile_with(&lowered.circuit, &CompileOptions::sequential())
                .expect("circuit compiles");
        let expect: Vec<String> = engine
            .evaluate(&inputs)
            .expect("in-process evaluation")
            .iter()
            .map(u64::to_string)
            .collect();

        // Word tape: save → child load + evaluate.
        let tape = WordTape::encode(&lowered.circuit).expect("word tape encodes");
        let tape_path = dir.join(format!("qec-corpus-{pid}-{name}.wtape"));
        tape.save(&tape_path).expect("word tape saves");
        let line: Vec<String> = inputs.iter().map(u64::to_string).collect();
        let got = run_child("word", &tape_path, &line.join(" "));
        let _ = std::fs::remove_file(&tape_path);
        assert_eq!(
            got.split_whitespace().collect::<Vec<_>>(),
            expect.iter().map(String::as_str).collect::<Vec<_>>(),
            "case {name}: child word-tape outputs diverge from the engine"
        );

        // Bit tape: the same contract at the bit level.
        let bits = lower_with(&lowered.circuit, 64, &CompileOptions::sequential());
        let bit_tape = BitTape::encode(&bits);
        let bit_path = dir.join(format!("qec-corpus-{pid}-{name}.btape"));
        bit_tape.save(&bit_path).expect("bit tape saves");
        let in_bits = bits.pack_inputs(&inputs);
        let bit_line: Vec<&str> = in_bits.iter().map(|&b| if b { "1" } else { "0" }).collect();
        let expect_bits: Vec<&str> = bits
            .evaluate(&in_bits)
            .expect("in-process bit evaluation")
            .iter()
            .map(|&b| if b { "1" } else { "0" })
            .collect();
        let got = run_child("bit", &bit_path, &bit_line.join(" "));
        let _ = std::fs::remove_file(&bit_path);
        assert_eq!(
            got.split_whitespace().collect::<Vec<_>>(),
            expect_bits,
            "case {name}: child bit-tape outputs diverge"
        );
    }
}

#[test]
fn a_corrupted_tape_makes_the_child_fail_loudly() {
    let case = qec_check::gen_case(3);
    let (cq, db, dc) = case.materialize().expect("case materializes");
    let (rc, _) = naive_circuit(&cq, &dc).expect("naive circuit builds");
    let lowered = rc.lower_with(Mode::Build, &CompileOptions::sequential());
    let inputs = lowered.layout.values(&db).expect("layout inputs");
    let tape = WordTape::encode(&lowered.circuit).expect("word tape encodes");
    let mut bytes = tape.to_bytes();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    let path = std::env::temp_dir().join(format!("qec-corrupt-{}.wtape", std::process::id()));
    std::fs::write(&path, &bytes).expect("corrupt tape writes");
    let line: Vec<String> = inputs.iter().map(u64::to_string).collect();
    let mut child = Command::new(env!("CARGO_BIN_EXE_tape_eval"))
        .arg("word")
        .arg(&path)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("tape_eval spawns");
    child
        .stdin
        .take()
        .expect("child stdin")
        .write_all(line.join(" ").as_bytes())
        .expect("child accepts inputs");
    let out = child.wait_with_output().expect("tape_eval exits");
    let _ = std::fs::remove_file(&path);
    assert!(
        !out.status.success(),
        "a corrupted tape must be rejected, not evaluated"
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("checksum"),
        "rejection should name the checksum, got: {stderr}"
    );
}
