//! Regression tests on the headline *shapes* of the experiment tables:
//! who wins, whether certificates are tight, whether worst cases fill the
//! bound. (The fast experiments only — scaling sweeps run via `report`.)

use qec_bench::{x14_bound_tightness, x2_panda_triangle, x3_proof_sequences, x4_panda_cost};

#[test]
fn x2_speedup_grows_superlinearly() {
    let t = x2_panda_triangle();
    let first = t.cell_f64(0, 5);
    let last = t.cell_f64(t.rows.len() - 1, 5);
    assert!(
        last > 100.0 * first,
        "speedup must explode: {first} → {last}"
    );
}

#[test]
fn x3_certificates_are_tight_everywhere() {
    let t = x3_proof_sequences();
    for row in &t.rows {
        assert_eq!(row[4], "true", "{} not tight", row[0]);
    }
}

#[test]
fn x4_ratio_stays_polylog() {
    let t = x4_panda_cost();
    for row in &t.rows {
        let ratio: f64 = row[5].parse().unwrap();
        assert!(ratio < 150.0, "{}: ratio {ratio} too large", row[0]);
    }
}

#[test]
fn x14_worst_cases_fill_the_bound() {
    let t = x14_bound_tightness();
    for row in &t.rows {
        assert_eq!(row[4], "100%", "{} does not fill DAPB", row[0]);
        assert_eq!(row[5], "true");
    }
}
