//! Guard for the committed bench artifacts: every `BENCH_X<n>.json`
//! named in `EXPERIMENTS.md` must actually exist at the repo root and
//! open with the current schema version. PR 5 documented
//! `BENCH_X19.json` without committing it; this test turns that class
//! of stale-artifact claim into a CI failure.

use qec_bench::BENCH_SCHEMA_VERSION;

#[test]
fn every_artifact_named_in_experiments_md_is_committed_with_the_schema_version() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let text = std::fs::read_to_string(root.join("EXPERIMENTS.md")).expect("EXPERIMENTS.md reads");
    let mut ids: Vec<String> = Vec::new();
    let mut rest = text.as_str();
    while let Some(pos) = rest.find("BENCH_X") {
        rest = &rest[pos + "BENCH_X".len()..];
        let digits: String = rest.chars().take_while(char::is_ascii_digit).collect();
        if !digits.is_empty() && rest[digits.len()..].starts_with(".json") {
            let id = format!("X{digits}");
            if !ids.contains(&id) {
                ids.push(id);
            }
        }
    }
    assert!(
        ["X16", "X17", "X18", "X19", "X20", "X21", "X22", "X23", "X24"]
            .iter()
            .all(|id| ids.iter().any(|have| have == id)),
        "EXPERIMENTS.md should name the X16–X24 artifacts, found {ids:?}"
    );
    // `git ls-files` distinguishes committed artifacts from files that
    // merely exist in the working tree (the PR 6 failure mode was an
    // artifact regenerated locally but never staged). Skip the tracking
    // check gracefully where git or the repo metadata is unavailable
    // (e.g. a source tarball).
    let tracked: Option<String> = std::process::Command::new("git")
        .args(["ls-files", "--", "BENCH_X*.json"])
        .current_dir(&root)
        .output()
        .ok()
        .filter(|out| out.status.success())
        .map(|out| String::from_utf8_lossy(&out.stdout).into_owned());
    for id in &ids {
        let path = root.join(format!("BENCH_{id}.json"));
        let body = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!(
                "{} is named in EXPERIMENTS.md but not committed: {e}",
                path.display()
            )
        });
        let want = format!("{{\"schema_version\":{BENCH_SCHEMA_VERSION},");
        assert!(
            body.starts_with(&want),
            "{}: artifact does not open with schema_version {BENCH_SCHEMA_VERSION}",
            path.display()
        );
        if let Some(listing) = &tracked {
            assert!(
                listing.lines().any(|l| l == format!("BENCH_{id}.json")),
                "BENCH_{id}.json exists but is not git-tracked — run `git add` on it"
            );
        }
    }
}
