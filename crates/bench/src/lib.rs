//! The experiment harness: one function per experiment of
//! `EXPERIMENTS.md` (X1–X24), each regenerating the table that checks a
//! figure/theorem of the paper against measured circuit sizes.
//!
//! Every experiment returns a [`Table`]; the `report` binary prints them,
//! the Criterion benches time the underlying constructions, and the
//! integration tests assert the headline shape of each table (who wins,
//! by roughly what factor, where crossovers fall).

mod experiments;
mod table;

pub use experiments::{
    all_experiments, x10_semiring, x11_mpc, x12_primitive_scaling, x13_brent, x14_bound_tightness,
    x15_engine_throughput, x16_optimizer, x17_parallel_pipeline, x18_obs_overhead,
    x19_differential, x1_heavy_light, x20_tape_streaming, x21_bitengine, x22_serve,
    x23_networked_gmw, x24_datalog_fixpoint, x2_panda_triangle, x3_proof_sequences, x4_panda_cost,
    x5_project_aggregate, x6_pk_join, x7_degree_join, x8_output_join, x9_output_sensitive,
};
pub use table::Table;

/// Schema version stamped into every `BENCH_*.json` artifact written by
/// `report --json`. The artifact is a single JSON object whose keys are
/// emitted in a fixed order (`schema_version`, `experiment`,
/// `elapsed_ms`, `table`, `pipeline`), so trajectory diffs across PRs
/// compare content, not serializer whims. Bump on any key change.
pub const BENCH_SCHEMA_VERSION: u32 = 1;

use qec_relation::{random_relation, Database, DcSet, DegreeConstraint, Var, VarSet};

/// Cardinality-`n` constraints for every atom of a query.
pub fn uniform_dc(cq: &qec_query::Cq, n: u64) -> DcSet {
    DcSet::from_vec(
        cq.atoms
            .iter()
            .map(|a| DegreeConstraint::cardinality(a.vars, n))
            .collect(),
    )
}

/// Random database with `n` tuples per atom.
pub fn uniform_db(cq: &qec_query::Cq, n: usize, seed: u64) -> Database {
    let mut db = Database::new();
    for (i, a) in cq.atoms.iter().enumerate() {
        let schema: Vec<Var> = a.vars.to_vec();
        db.insert(
            a.name.clone(),
            random_relation(schema, n, seed * 101 + i as u64),
        );
    }
    db
}

/// `VarSet` shorthand used across experiments.
pub fn vs(bits: &[u32]) -> VarSet {
    bits.iter().map(|&i| Var(i)).collect()
}
