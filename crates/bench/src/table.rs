//! Aligned-text experiment tables.

use std::fmt;

/// A titled table of strings (headers + rows), printed with aligned
/// columns.
#[derive(Clone, Debug)]
pub struct Table {
    /// Experiment id and description.
    pub title: String,
    /// Column names.
    pub headers: Vec<String>,
    /// Data rows.
    pub rows: Vec<Vec<String>>,
    /// One-line verdict comparing measured shape against the paper's
    /// claim.
    pub verdict: String,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Table {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            verdict: String::new(),
        }
    }

    /// Appends a row.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row arity");
        self.rows.push(cells);
    }

    /// Sets the verdict line.
    pub fn verdict(&mut self, v: impl Into<String>) {
        self.verdict = v.into();
    }

    /// Reads a numeric cell back (test helper).
    pub fn cell_f64(&self, row: usize, col: usize) -> f64 {
        self.rows[row][col].parse().expect("numeric cell")
    }

    /// Serializes the table as a JSON object with keys in the fixed
    /// order `title`, `headers`, `rows`, `verdict` — the `table` member
    /// of the `BENCH_*.json` artifacts written by `report --json`,
    /// which diff cleanly across PRs because the ordering never
    /// depends on serializer state. Numeric-looking cells are emitted
    /// as JSON numbers, everything else as strings.
    pub fn to_json(&self) -> String {
        fn esc(s: &str) -> String {
            let mut out = String::with_capacity(s.len() + 2);
            out.push('"');
            for c in s.chars() {
                match c {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    '\n' => out.push_str("\\n"),
                    '\t' => out.push_str("\\t"),
                    c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                    c => out.push(c),
                }
            }
            out.push('"');
            out
        }
        fn cell(s: &str) -> String {
            // emit finite numbers as numbers so downstream plotting
            // scripts don't have to re-parse strings
            match s.parse::<f64>() {
                Ok(v) if v.is_finite() => s.to_string(),
                _ => esc(s),
            }
        }
        let headers: Vec<String> = self.headers.iter().map(|h| esc(h)).collect();
        let rows: Vec<String> = self
            .rows
            .iter()
            .map(|r| {
                format!(
                    "[{}]",
                    r.iter().map(|c| cell(c)).collect::<Vec<_>>().join(",")
                )
            })
            .collect();
        format!(
            "{{\"title\":{},\"headers\":[{}],\"rows\":[{}],\"verdict\":{}}}",
            esc(&self.title),
            headers.join(","),
            rows.join(","),
            esc(&self.verdict)
        )
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "== {} ==", self.title)?;
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let print_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            for (i, c) in cells.iter().enumerate() {
                write!(f, "{:>width$}  ", c, width = widths[i])?;
            }
            writeln!(f)
        };
        print_row(f, &self.headers)?;
        writeln!(
            f,
            "{}",
            "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len())
        )?;
        for row in &self.rows {
            print_row(f, row)?;
        }
        if !self.verdict.is_empty() {
            writeln!(f, "→ {}", self.verdict)?;
        }
        Ok(())
    }
}
