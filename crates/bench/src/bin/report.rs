//! Regenerates the experiment tables of `EXPERIMENTS.md`.
//!
//! ```text
//! cargo run -p qec-bench --release --bin report            # all experiments
//! cargo run -p qec-bench --release --bin report -- x2 x7   # a subset
//! ```

use qec_bench::all_experiments;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).map(|a| a.to_lowercase()).collect();
    let experiments = all_experiments();
    let selected: Vec<_> = if args.is_empty() || args.iter().any(|a| a == "all") {
        experiments
    } else {
        let sel: Vec<_> =
            experiments.into_iter().filter(|(id, _)| args.iter().any(|a| a == id)).collect();
        if sel.is_empty() {
            eprintln!("unknown experiment id(s); valid: x1..x14 or `all`");
            std::process::exit(2);
        }
        sel
    };
    for (id, run) in selected {
        let start = std::time::Instant::now();
        let table = run();
        println!("{table}");
        println!("[{id} completed in {:.1?}]\n", start.elapsed());
    }
}
