//! Regenerates the experiment tables of `EXPERIMENTS.md`.
//!
//! ```text
//! cargo run -p qec-bench --release --bin report            # all experiments
//! cargo run -p qec-bench --release --bin report -- x2 x7   # a subset
//! cargo run -p qec-bench --release --bin report -- --json x15
//! ```
//!
//! With `--json`, each experiment additionally writes a
//! `BENCH_<ID>.json` artifact (to `--json-dir <dir>`, default the
//! current directory): a fixed-key-order object (`schema_version`,
//! `experiment`, `elapsed_ms`, `table`, `pipeline`) where `table` is
//! the printed table (`title`/`headers`/`rows`/`verdict`) and
//! `pipeline` is the `qec-obs` metrics document captured during the
//! run — per-pass spans (build/optimize/tape/lower) and counters from
//! the builder, optimizer, and pool. A fresh enabled recorder is
//! installed per experiment, so each artifact's breakdown covers only
//! its own run.

use qec_bench::{all_experiments, BENCH_SCHEMA_VERSION};
use qec_obs::Recorder;

fn main() {
    let mut json = false;
    let mut json_dir = String::from(".");
    let mut ids: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--json" => json = true,
            "--json-dir" => {
                json = true;
                json_dir = args.next().unwrap_or_else(|| {
                    eprintln!("--json-dir needs a directory argument");
                    std::process::exit(2);
                });
            }
            other => ids.push(other.to_lowercase()),
        }
    }
    let experiments = all_experiments();
    let selected: Vec<_> = if ids.is_empty() || ids.iter().any(|a| a == "all") {
        experiments
    } else {
        let sel: Vec<_> = experiments
            .into_iter()
            .filter(|(id, _)| ids.iter().any(|a| a == id))
            .collect();
        if sel.is_empty() {
            eprintln!("unknown experiment id(s); valid: x1..x24 or `all`");
            std::process::exit(2);
        }
        sel
    };
    for (id, run) in selected {
        // Route the run's builder/pool/driver instrumentation into a
        // per-experiment recorder so the JSON artifact carries its own
        // per-pass breakdown (experiments built on
        // `CompileOptions::from_env` inherit it as their driver sink).
        let rec = if json {
            qec_obs::install(Recorder::new(true))
        } else {
            Recorder::disabled()
        };
        let start = std::time::Instant::now();
        let table = run();
        let elapsed = start.elapsed();
        // Cap the span dump: fuzz-scale experiments (x19, x20) record
        // millions of pool spans, and the artifact gets committed. The
        // leading spans carry the per-pass pipeline breakdown; counters
        // are never cut.
        let pipeline = if json {
            qec_obs::install(rec).metrics_json_capped(2048)
        } else {
            String::new()
        };
        println!("{table}");
        println!("[{id} completed in {elapsed:.1?}]\n");
        if json {
            let path = format!("{json_dir}/BENCH_{}.json", id.to_uppercase());
            let payload = format!(
                "{{\"schema_version\":{BENCH_SCHEMA_VERSION},\"experiment\":\"{id}\",\"elapsed_ms\":{:.1},\"table\":{},\"pipeline\":{pipeline}}}\n",
                elapsed.as_secs_f64() * 1e3,
                table.to_json()
            );
            match std::fs::write(&path, payload) {
                Ok(()) => eprintln!("wrote {path}"),
                Err(e) => {
                    eprintln!("failed to write {path}: {e}");
                    std::process::exit(1);
                }
            }
        }
    }
}
