//! Child-process tape evaluator: loads a serialized circuit tape and
//! evaluates it on inputs read from stdin — the "load-and-evaluate-many"
//! half of the compile-once contract, exercised across a real process
//! boundary by experiment X20 and the corpus replay tests.
//!
//! ```text
//! tape_eval word <tape-file>   # stdin: whitespace-separated u64 inputs
//! tape_eval bit  <tape-file>   # stdin: whitespace-separated 0/1 bits
//! tape_eval stream-lower <seed> <width> <out-file>
//! ```
//!
//! Outputs are printed space-separated on one stdout line. Any load or
//! evaluation error goes to stderr with a non-zero exit, so a corrupted
//! or version-skewed tape fails loudly instead of producing output.
//!
//! `stream-lower` is the producer half for CI's bounded-memory smoke:
//! it compiles the seeded conjunctive-query case, bit-lowers it through
//! the spillable streaming path ([`StreamOptions::from_env`] reads
//! `QEC_STREAM_CHUNK` / `QEC_STREAM_WINDOW` / `QEC_SPILL_DIR`), saves
//! the tape, reloads it, and verifies the round-trip — all inside
//! whatever `ulimit` the caller imposed.

use qec_circuit::{lower_streamed, BitTape, CompileOptions, Mode, StreamOptions, WordTape};
use std::io::Read;

fn fail(msg: impl std::fmt::Display) -> ! {
    eprintln!("tape_eval: {msg}");
    std::process::exit(1);
}

fn stream_lower(seed: &str, width: &str, out: &str) {
    let seed: u64 = seed
        .parse()
        .unwrap_or_else(|_| fail(format!("bad seed {seed:?}")));
    let width: u32 = width
        .parse()
        .unwrap_or_else(|_| fail(format!("bad width {width:?}")));
    let case = qec_check::gen_case(seed);
    let (cq, _db, dc) = case.materialize().unwrap_or_else(|e| fail(e));
    let (rc, _) = qec_core::naive_circuit(&cq, &dc).unwrap_or_else(|e| fail(e));
    let lowered = rc.lower_with(Mode::Build, &CompileOptions::sequential());
    let (tape, stats) = lower_streamed(&lowered.circuit, width, &StreamOptions::from_env())
        .unwrap_or_else(|e| fail(e));
    tape.save(out).unwrap_or_else(|e| fail(e));
    let back = BitTape::load(out).unwrap_or_else(|e| fail(e));
    if back != tape {
        fail("saved tape did not reload identically");
    }
    println!(
        "stream-lower seed={seed} width={width}: {} instructions, {} spill(s), \
         window ≤ {} bytes, {} bytes on disk, round-trip identical",
        tape.num_instructions(),
        stats.spills,
        stats.peak_window_bytes,
        std::fs::metadata(out).map(|m| m.len()).unwrap_or(0),
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (kind, path) = match args.as_slice() {
        [kind, seed, width, out] if kind == "stream-lower" => {
            stream_lower(seed, width, out);
            return;
        }
        [kind, path] => (kind.as_str(), path.as_str()),
        _ => fail(
            "usage: tape_eval <word|bit> <tape-file>  (inputs on stdin)\n\
             \x20      tape_eval stream-lower <seed> <width> <out-file>",
        ),
    };
    let mut text = String::new();
    if std::io::stdin().read_to_string(&mut text).is_err() {
        fail("could not read stdin");
    }
    match kind {
        "word" => {
            let tape = WordTape::load(path).unwrap_or_else(|e| fail(e));
            let inputs: Vec<u64> = text
                .split_whitespace()
                .map(|t| {
                    t.parse()
                        .unwrap_or_else(|_| fail(format!("bad input word {t:?}")))
                })
                .collect();
            let out = tape.evaluate(&inputs).unwrap_or_else(|e| fail(e));
            let words: Vec<String> = out.iter().map(u64::to_string).collect();
            println!("{}", words.join(" "));
        }
        "bit" => {
            let tape = BitTape::load(path).unwrap_or_else(|e| fail(e));
            let inputs: Vec<bool> = text
                .split_whitespace()
                .map(|t| match t {
                    "0" => false,
                    "1" => true,
                    _ => fail(format!("bad input bit {t:?}")),
                })
                .collect();
            let out = tape.evaluate(&inputs).unwrap_or_else(|e| fail(e));
            let bits: Vec<String> = out
                .iter()
                .map(|&b| (if b { "1" } else { "0" }).to_string())
                .collect();
            println!("{}", bits.join(" "));
        }
        other => fail(format!("unknown tape kind {other:?} (want word|bit)")),
    }
}
