//! `qec2pc` — two-terminal networked two-party GMW secure triangle
//! counting over TCP.
//!
//! ```text
//! # offline: deal correlated Beaver-triple files, one per party
//! qec2pc dealer --n 8 --out0 p0.trip --out1 p1.trip [--seed 7]
//!
//! # terminal 1 (party 0 listens):
//! qec2pc party --role 0 --listen 127.0.0.1:7700 --n 8 --triples p0.trip --verify
//! # terminal 2 (party 1 connects):
//! qec2pc party --role 1 --connect 127.0.0.1:7700 --n 8 --triples p1.trip --verify
//!
//! # or skip the dealer with common-seed triples (INSECURE, demo only):
//! qec2pc party --role 0 --listen 127.0.0.1:7700 --n 8 --insecure-seed 7
//! ```
//!
//! Both parties build the same heavy/light triangle circuit for
//! capacity `--n`, load the AGM worst-case database (⌊√N⌋² grid per
//! relation, N^1.5 triangles), run the `qec_mpc::Session` protocol —
//! one framed message per AND level — and print one machine-parseable
//! summary line. `--verify` additionally asserts the round count equals
//! the tape's AND depth and the reconstructed output is bit-identical
//! to plaintext evaluation, exiting nonzero otherwise.

use qec_circuit::lower_with;
use qec_circuit::{CompileOptions, CompiledBitCircuit, Mode};
use qec_core::triangle_heavy_light;
use qec_mpc::{
    share_instances, write_triple_files, InsecureSeedTriples, Role, Session, TcpTransport,
    TripleSource, TripleStream, DEFAULT_TIMEOUT,
};
use qec_relation::{agm_worst_case_triangle, Database, Var};
use std::path::PathBuf;

/// Input-share derivation seed; must agree between the two parties (the
/// demo derives both parties' shares from shared randomness instead of
/// running an input-sharing phase).
const SHARE_SEED: u64 = 0x2bc_517a;

fn usage() -> ! {
    eprintln!(
        "usage:\n  qec2pc dealer --n <N> --out0 <file> --out1 <file> [--seed <s>]\n  \
         qec2pc party --role <0|1> (--listen <addr> | --connect <addr>) --n <N> \
         (--triples <file> | --insecure-seed <s>) [--verify]"
    );
    std::process::exit(2);
}

struct Prepared {
    eng: CompiledBitCircuit,
    bit_inputs: Vec<bool>,
    plain: Vec<bool>,
    triangles: usize,
    and_depth: u64,
}

/// Builds the capacity-`n` heavy/light triangle circuit, binds the AGM
/// worst-case database, and lowers to the round-optimal GMW tape.
fn prepare(n: u64) -> Prepared {
    let (rc, _) = triangle_heavy_light(n);
    let lowered = rc.lower(Mode::Build);
    let (r, s, t) = agm_worst_case_triangle(Var(0), Var(1), Var(2), n as usize);
    let mut db = Database::new();
    db.insert("R", r);
    db.insert("S", s);
    db.insert("T", t);
    let triangles = lowered.run(&db).expect("plaintext word run")[0].len();
    let word_inputs = lowered.layout.values(&db).expect("layout inputs");
    let bits = lower_with(&lowered.circuit, 8, &CompileOptions::from_env());
    let bit_inputs = bits.pack_inputs(&word_inputs);
    let plain = bits.evaluate(&bit_inputs).expect("plaintext bit run");
    let eng = CompiledBitCircuit::compile_gmw(&bits);
    let and_depth = bits.and_depth() as u64;
    Prepared {
        eng,
        bit_inputs,
        plain,
        triangles,
        and_depth,
    }
}

fn fnv_bits(bits: &[bool]) -> u64 {
    let bytes: Vec<u8> = bits.iter().map(|&b| b as u8).collect();
    qec_circuit::fnv1a64(&bytes)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else { usage() };

    let mut n: Option<u64> = None;
    let mut seed: u64 = 7;
    let mut out0: Option<PathBuf> = None;
    let mut out1: Option<PathBuf> = None;
    let mut role: Option<u8> = None;
    let mut listen: Option<String> = None;
    let mut connect: Option<String> = None;
    let mut triples: Option<PathBuf> = None;
    let mut insecure_seed: Option<u64> = None;
    let mut verify = false;

    let mut it = args[1..].iter();
    while let Some(a) = it.next() {
        let mut val = || it.next().cloned().unwrap_or_else(|| usage());
        match a.as_str() {
            "--n" => n = val().parse().ok(),
            "--seed" => seed = val().parse().unwrap_or_else(|_| usage()),
            "--out0" => out0 = Some(val().into()),
            "--out1" => out1 = Some(val().into()),
            "--role" => role = val().parse().ok(),
            "--listen" => listen = Some(val()),
            "--connect" => connect = Some(val()),
            "--triples" => triples = Some(val().into()),
            "--insecure-seed" => insecure_seed = val().parse().ok(),
            "--verify" => verify = true,
            _ => usage(),
        }
    }
    let n = n.unwrap_or_else(|| usage());

    match cmd.as_str() {
        "dealer" => {
            let (out0, out1) = match (out0, out1) {
                (Some(a), Some(b)) => (a, b),
                _ => usage(),
            };
            let p = prepare(n);
            let steps = p.eng.stats().and_ops as usize;
            write_triple_files(&out0, &out1, steps, 1, seed).unwrap_or_else(|e| {
                eprintln!("dealer failed: {e}");
                std::process::exit(1);
            });
            println!(
                "dealt n={n} steps={steps} words=1 seed={seed} files={},{}",
                out0.display(),
                out1.display()
            );
        }
        "party" => {
            let role = match role {
                Some(0) => Role::P0,
                Some(1) => Role::P1,
                _ => usage(),
            };
            let p = prepare(n);
            let transport = match (&listen, &connect) {
                (Some(addr), None) => {
                    let l = std::net::TcpListener::bind(addr).unwrap_or_else(|e| {
                        eprintln!("bind {addr}: {e}");
                        std::process::exit(1);
                    });
                    TcpTransport::accept(&l, DEFAULT_TIMEOUT).unwrap_or_else(|e| {
                        eprintln!("accept: {e}");
                        std::process::exit(1);
                    })
                }
                (None, Some(addr)) => TcpTransport::connect(addr.as_str(), DEFAULT_TIMEOUT)
                    .unwrap_or_else(|e| {
                        eprintln!("connect {addr}: {e}");
                        std::process::exit(1);
                    }),
                _ => usage(),
            };
            let source: Box<dyn TripleSource> = match (&triples, insecure_seed) {
                (Some(path), None) => Box::new(TripleStream::open(path).unwrap_or_else(|e| {
                    eprintln!("triple file {}: {e}", path.display());
                    std::process::exit(1);
                })),
                (None, Some(s)) => Box::new(InsecureSeedTriples::new(1, s, role)),
                _ => usage(),
            };
            let (s0, s1) = share_instances(std::slice::from_ref(&p.bit_inputs), SHARE_SEED);
            let my_shares = if role == Role::P0 { s0 } else { s1 };
            let t0 = std::time::Instant::now();
            let outcome = Session::new(&p.eng, role, transport, source)
                .with_words(1)
                .run(&my_shares)
                .unwrap_or_else(|e| {
                    eprintln!("session failed: {e}");
                    std::process::exit(1);
                });
            let ms = t0.elapsed().as_secs_f64() * 1e3;
            let out = outcome.results[0].as_ref().unwrap_or_else(|e| {
                eprintln!("instance failed: {e}");
                std::process::exit(1);
            });
            println!(
                "role={} n={n} count={} rounds={} and_depth={} bytes_sent={} bytes_recv={} \
                 output_fnv={:016x} ms={ms:.1}",
                role.index(),
                p.triangles,
                outcome.stats.rounds,
                p.and_depth,
                outcome.stats.bytes_sent,
                outcome.stats.bytes_recv,
                fnv_bits(out),
            );
            if verify {
                if outcome.stats.rounds != p.and_depth {
                    eprintln!(
                        "VERIFY FAILED: {} rounds != AND depth {}",
                        outcome.stats.rounds, p.and_depth
                    );
                    std::process::exit(1);
                }
                if out != &p.plain {
                    eprintln!("VERIFY FAILED: secure output differs from plaintext");
                    std::process::exit(1);
                }
                println!("verify: rounds == AND depth, output bit-identical to plaintext");
            }
        }
        _ => usage(),
    }
}
