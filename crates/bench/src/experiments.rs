//! Experiment implementations X1–X23 (see `EXPERIMENTS.md`).

use qec_circuit::{
    aggregate as c_aggregate, brent_steps, encode_relation, join_degree_bounded,
    join_output_bounded, join_pk, lower_with, project as c_project, scan, AggOp, Builder,
    CompileOptions, Mode, SortKey, WireId,
};
use qec_core::{
    compile_fcq, naive_circuit, paper_cost, triangle_heavy_light, AggregateQuery, OutputSensitive,
    Semiring,
};
use qec_entropy::{prove_bound, ProofStep};
use qec_query::baseline::evaluate_pairwise;
use qec_query::{bowtie, k_cycle, k_path, k_star, loomis_whitney, snowflake, triangle, Cq};
use qec_relation::{DcSet, DegreeConstraint, Var, VarSet};

use crate::{uniform_db, uniform_dc, vs, Table};

fn f(v: f64) -> String {
    if v >= 100.0 {
        format!("{v:.0}")
    } else {
        format!("{v:.2}")
    }
}

/// X1 — Figure 1: the hand-built heavy/light triangle circuit has cost
/// `O(N^{3/2})` with all wires bounded.
pub fn x1_heavy_light() -> Table {
    let mut t = Table::new(
        "X1  Figure 1: heavy/light triangle relational circuit, cost O(N^1.5)",
        &["N", "paper_cost", "cost/N^1.5", "word_gates", "word_depth"],
    );
    let mut ratios = Vec::new();
    // Count-mode lowering hash-conses, so the word columns materialize
    // through N=256 by default; `rc.lower` reads QEC_THREADS and runs
    // the sharded parallel cons table when workers are available. The
    // N=1024 column is measured by X17 (QEC_X17_N1024=1) — opt in here
    // with QEC_X1_LOWER_E=10 to fold it into this sweep too.
    let lower_e: u32 = std::env::var("QEC_X1_LOWER_E")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(8);
    for e in [4u32, 6, 8, 10, 12] {
        let n = 1u64 << e;
        let (rc, _) = triangle_heavy_light(n);
        let cost = paper_cost(&rc).to_f64();
        let ratio = cost / (n as f64).powf(1.5);
        ratios.push(ratio);
        let (gates, depth) = if e <= lower_e {
            let lowered = rc.lower(Mode::Count);
            (
                lowered.circuit.size().to_string(),
                lowered.circuit.depth().to_string(),
            )
        } else {
            ("-".into(), "-".into())
        };
        t.row(vec![n.to_string(), f(cost), f(ratio), gates, depth]);
    }
    let spread = ratios.iter().cloned().fold(f64::MIN, f64::max)
        / ratios.iter().cloned().fold(f64::MAX, f64::min);
    t.verdict(format!(
        "cost/N^1.5 stays within a {spread:.1}x band across a 256x sweep — Θ(N^1.5) as claimed"
    ));
    t
}

/// X2 — Figure 2 / Theorem 3: PANDA-C's triangle circuit has Õ(1)
/// relational gates and cost Õ(N^{3/2}); the classical baseline is
/// `Θ(N³)`.
pub fn x2_panda_triangle() -> Table {
    let mut t = Table::new(
        "X2  Figure 2 / Thm 3: PANDA-C triangle vs naive O(N^3) baseline",
        &[
            "N",
            "rel_gates",
            "branches",
            "panda_cost",
            "naive_cost",
            "speedup",
            "cost/N^1.5",
        ],
    );
    let q = triangle();
    let mut last_speedup = 0.0;
    for e in [4u32, 6, 8, 10, 12] {
        let n = 1u64 << e;
        let dc = uniform_dc(&q, n);
        let p = compile_fcq(&q, &dc).expect("triangle compiles");
        let cost = paper_cost(&p.rc).to_f64();
        let (naive, _) = naive_circuit(&q, &dc).expect("naive compiles");
        let ncost = paper_cost(&naive).to_f64();
        last_speedup = ncost / cost;
        t.row(vec![
            n.to_string(),
            p.rc.nodes.len().to_string(),
            p.branches.to_string(),
            f(cost),
            f(ncost),
            f(ncost / cost),
            f(cost / (n as f64).powf(1.5)),
        ]);
    }
    t.verdict(format!(
        "PANDA-C wins by {last_speedup:.0}x at N=4096 and the gap grows as N^1.5/polylog — matching Thm 3 vs the classical circuit"
    ));
    t
}

/// X3 — Theorem 2: validated proof sequences exist for the whole corpus;
/// lengths are tiny compared to the `O(n^4·384^n)` worst case.
pub fn x3_proof_sequences() -> Table {
    let mut t = Table::new(
        "X3  Thm 2: proof sequences across the query corpus (all validated)",
        &[
            "query",
            "n",
            "LOGDAPB",
            "chain_cost",
            "tight",
            "steps",
            "d_steps",
        ],
    );
    let corpus: Vec<(&str, Cq, DcSet)> = {
        let mut v = Vec::new();
        for (name, q) in [
            ("triangle", triangle()),
            ("4-cycle", k_cycle(4)),
            ("5-cycle", k_cycle(5)),
            ("3-path", k_path(3)),
            ("4-star", k_star(4)),
            ("bowtie", bowtie()),
            ("LW(4)", loomis_whitney(4)),
            ("snowflake(3)", snowflake(3)),
        ] {
            let dc = uniform_dc(&q, 1 << 8);
            v.push((name, q, dc));
        }
        // degree-constrained variants
        let q = triangle();
        let mut dc = uniform_dc(&q, 1 << 8);
        dc.add(DegreeConstraint::degree(vs(&[1]), vs(&[1, 2]), 1 << 3));
        v.push(("triangle+deg", q, dc));
        let q = triangle();
        let mut dc = uniform_dc(&q, 1 << 8);
        dc.add(DegreeConstraint::fd(vs(&[1]), vs(&[1, 2])));
        v.push(("triangle+fd", q, dc));
        v
    };
    let mut all_tight = true;
    for (name, q, dc) in corpus {
        let bound = qec_entropy::polymatroid_bound(q.num_vars(), &dc, q.all_vars())
            .expect("bounded corpus");
        let proof = prove_bound(q.num_vars(), &dc, q.all_vars(), None).expect("provable corpus");
        qec_entropy::validate(&proof).expect("validated");
        let tight = proof.log_cost == bound.log_value;
        all_tight &= tight;
        let d_steps = proof
            .steps
            .iter()
            .filter(|s| matches!(s.step, ProofStep::Decomp { .. }))
            .count();
        t.row(vec![
            name.to_string(),
            q.num_vars().to_string(),
            f(bound.log_value.to_f64()),
            f(proof.log_cost.to_f64()),
            tight.to_string(),
            proof.steps.len().to_string(),
            d_steps.to_string(),
        ]);
    }
    t.verdict(if all_tight {
        "every corpus query has a validated proof sequence attaining LOGDAPB exactly".to_string()
    } else {
        "some chain certificates are non-tight (see `tight` column)".to_string()
    });
    t
}

/// X4 — Theorem 3: PANDA-C cost tracks `N + DAPB` across queries and a
/// degree-bound sweep.
pub fn x4_panda_cost() -> Table {
    let mut t = Table::new(
        "X4  Thm 3: PANDA-C cost vs N + DAPB under degree constraints",
        &[
            "query",
            "N",
            "deg",
            "LOGDAPB",
            "panda_cost",
            "cost/(N+DAPB)",
        ],
    );
    let n_exp = 8u32;
    let n = 1u64 << n_exp;
    let mut ratios: Vec<f64> = Vec::new();
    // triangle with a sweep of degree bounds on S
    for d in [1u64, 2, 4, 16, 64, 256] {
        let q = triangle();
        let mut dc = uniform_dc(&q, n);
        if d < n {
            dc.add(DegreeConstraint::degree(vs(&[1]), vs(&[1, 2]), d));
        }
        let p = compile_fcq(&q, &dc).expect("compiles");
        let cost = paper_cost(&p.rc).to_f64();
        let dapb = 2f64.powf(p.bound.log_value.to_f64());
        let ratio = cost / (3.0 * n as f64 + dapb);
        ratios.push(ratio);
        t.row(vec![
            "triangle".into(),
            n.to_string(),
            if d < n { d.to_string() } else { "-".into() },
            f(p.bound.log_value.to_f64()),
            f(cost),
            f(ratio),
        ]);
    }
    for (name, q) in [
        ("4-cycle", k_cycle(4)),
        ("2-path", k_path(2)),
        ("3-path", k_path(3)),
    ] {
        let dc = uniform_dc(&q, n);
        let p = compile_fcq(&q, &dc).expect("compiles");
        let cost = paper_cost(&p.rc).to_f64();
        let dapb = 2f64.powf(p.bound.log_value.to_f64());
        let ratio = cost / (q.atoms.len() as f64 * n as f64 + dapb);
        ratios.push(ratio);
        t.row(vec![
            name.into(),
            n.to_string(),
            "-".into(),
            f(p.bound.log_value.to_f64()),
            f(cost),
            f(ratio),
        ]);
    }
    let max = ratios.iter().cloned().fold(f64::MIN, f64::max);
    t.verdict(format!(
        "cost stays within a polylog factor (≤ {max:.0}x here) of N + DAPB across queries and degree bounds"
    ));
    t
}

/// X5 — Algs. 3 & 5: projection and aggregation circuits are `Õ(K)` size,
/// `Õ(1)` depth.
pub fn x5_project_aggregate() -> Table {
    let mut t = Table::new(
        "X5  Algs 3/5: projection & aggregation circuit scaling",
        &[
            "K",
            "proj_size",
            "proj_depth",
            "agg_size",
            "agg_depth",
            "size/K·log²K",
        ],
    );
    for e in [4u32, 6, 8, 10, 12, 14] {
        let k = 1usize << e;
        let mut b = Builder::new(Mode::Count);
        let w = encode_relation(&mut b, vec![Var(0), Var(1)], k);
        let p = c_project(&mut b, &w, VarSet::singleton(Var(0)));
        let c = b.finish(p.flatten());
        let (ps, pd) = (c.size(), c.depth());
        let mut b = Builder::new(Mode::Count);
        let w = encode_relation(&mut b, vec![Var(0), Var(1)], k);
        let a = c_aggregate(
            &mut b,
            &w,
            VarSet::singleton(Var(0)),
            AggOp::Sum(Var(1)),
            Var(5),
        );
        let c = b.finish(a.flatten());
        let (as_, ad) = (c.size(), c.depth());
        let norm = ps as f64 / (k as f64 * (e as f64).powi(2));
        t.row(vec![
            k.to_string(),
            ps.to_string(),
            pd.to_string(),
            as_.to_string(),
            ad.to_string(),
            f(norm),
        ]);
    }
    t.verdict(
        "size grows as K·log²K (bitonic-dominated), depth as log²K — Õ(K) size, Õ(1) depth"
            .to_string(),
    );
    t
}

/// X6 — Figure 3 / Alg. 6: primary-key join circuit is `Õ(M + N')`.
pub fn x6_pk_join() -> Table {
    let mut t = Table::new(
        "X6  Alg 6: primary-key join circuit, size Õ(M+N')",
        &["M", "N'", "size", "depth", "size/(M+N')log²"],
    );
    for e in [4u32, 6, 8, 10, 12] {
        let m = 1usize << e;
        let np = 2 * m;
        let mut b = Builder::new(Mode::Count);
        let r = encode_relation(&mut b, vec![Var(0), Var(1)], m);
        let s = encode_relation(&mut b, vec![Var(1), Var(2)], np);
        let j = join_pk(&mut b, &r, &s);
        let c = b.finish(j.flatten());
        let denom = (m + np) as f64 * ((e + 2) as f64).powi(2);
        t.row(vec![
            m.to_string(),
            np.to_string(),
            c.size().to_string(),
            c.depth().to_string(),
            f(c.size() as f64 / denom),
        ]);
    }
    t.verdict("normalized size is flat: Õ(M+N') with polylog depth, vs O(M·N') for the naive all-pairs circuit".to_string());
    t
}

/// X7 — Figure 4 / Alg. 7: degree-bounded join is `Õ(MN + N')`, linear
/// in the input for fixed degree, vs the naive all-pairs `O(M·N')`,
/// quadratic. The interesting datum is where the polylog constants let
/// the asymptotics take over: the crossover falls near `M = N' ≈ 3.5k`.
pub fn x7_degree_join() -> Table {
    let mut t = Table::new(
        "X7  Alg 7: degree-bounded join Õ(MN+N') vs naive all-pairs O(M·N'), deg N = 2",
        &[
            "M = N'",
            "alg7_size",
            "naive_size",
            "win",
            "alg7 growth",
            "naive growth",
        ],
    );
    let mut prev: Option<(u64, u64)> = None;
    let mut crossover: Option<usize> = None;
    for e in [8u32, 9, 10, 11, 12, 13] {
        let m = 1usize << e;
        let mut b = Builder::new(Mode::Count);
        let r = encode_relation(&mut b, vec![Var(0), Var(1)], m);
        let s = encode_relation(&mut b, vec![Var(1), Var(2)], m);
        let j = join_degree_bounded(&mut b, &r, &s, 2);
        let c = b.finish(j.flatten());
        // the naive circuit materializes all M·N' candidate pairs, each a
        // key comparator plus muxed output fields (~10 gates)
        let naive = (m * m * 10) as u64;
        let win = naive as f64 / c.size() as f64;
        if win >= 1.0 && crossover.is_none() {
            crossover = Some(m);
        }
        let (ag, ng) = match prev {
            Some((pa, pn)) => (
                format!("{:.2}x", c.size() as f64 / pa as f64),
                format!("{:.2}x", naive as f64 / pn as f64),
            ),
            None => ("-".into(), "-".into()),
        };
        prev = Some((c.size(), naive));
        t.row(vec![
            m.to_string(),
            c.size().to_string(),
            naive.to_string(),
            f(win),
            ag,
            ng,
        ]);
    }
    t.verdict(match crossover {
        Some(m) => format!(
            "Alg 7 grows ~2x per doubling (linear · polylog) vs 4x for all-pairs (quadratic); the crossover falls at M = N' ≈ {m}, beyond which the degree-bounded join wins by a factor growing linearly in M"
        ),
        None => "crossover not reached in this sweep; slopes (2x vs 4x per doubling) still show the asymptotics".to_string(),
    });
    t
}

/// X8 — Alg. 10: output-bounded join is `Õ(M + N + OUT)`.
pub fn x8_output_join() -> Table {
    let mut t = Table::new(
        "X8  Alg 10: output-bounded join, size Õ(M+N+OUT)",
        &["M=N", "OUT", "size", "size/(M+N+OUT)log³"],
    );
    for (m, out) in [
        (128usize, 32usize),
        (128, 128),
        (128, 1024),
        (256, 32),
        (512, 32),
        (512, 2048),
    ] {
        let mut b = Builder::new(Mode::Count);
        let r = encode_relation(&mut b, vec![Var(0), Var(1)], m);
        let s = encode_relation(&mut b, vec![Var(1), Var(2)], m);
        let j = join_output_bounded(&mut b, &r, &s, out);
        let c = b.finish(j.flatten());
        let lg = (m as f64).log2();
        let denom = (2 * m + out) as f64 * lg.powi(3);
        t.row(vec![
            m.to_string(),
            out.to_string(),
            c.size().to_string(),
            f(c.size() as f64 / denom),
        ]);
    }
    t.verdict("size tracks M+N+OUT up to polylog — doubling M with OUT fixed roughly doubles size; growing OUT at fixed M adds only the OUT term".to_string());
    t
}

/// X9 — Theorem 5: output-sensitive circuits sized `Õ(N + 2^{da-fhtw} + OUT)`.
pub fn x9_output_sensitive() -> Table {
    let mut t = Table::new(
        "X9  Thm 5: output-sensitive two-family circuits",
        &[
            "query",
            "free",
            "da-fhtw",
            "count_cost",
            "query_cost(OUT)",
            "OUT",
            "worstcase_cost",
        ],
    );
    let cases: Vec<(&str, Cq)> = vec![
        ("3-path", k_path(3)),
        ("3-path→(x0,x3)", {
            let q = k_path(3);
            Cq {
                free: vs(&[0, 3]),
                ..q
            }
        }),
        ("snowflake(3)→(x0,x1)", {
            let q = snowflake(3);
            Cq {
                free: vs(&[0, 1]),
                ..q
            }
        }),
        ("triangle→(a)", {
            let q = triangle();
            Cq {
                free: vs(&[0]),
                ..q
            }
        }),
    ];
    let n = 1u64 << 6;
    for (name, q) in cases {
        let dc = uniform_dc(&q, n);
        let os = OutputSensitive::build(&q, &dc, 5_000).expect("ghd");
        let count_rc = os.count_circuit().expect("count circuit");
        let db = uniform_db(&q, (n - 4) as usize, 7);
        let out = os.count_ram(&db).expect("count");
        let query_rc = os.query_circuit(out.max(1)).expect("query circuit");
        // sanity: matches the RAM baseline
        let expect = evaluate_pairwise(&q, &db).expect("baseline");
        assert_eq!(out, expect.len() as u64, "{name}: count");
        let (worst, _) = naive_circuit(&q, &dc).expect("naive");
        t.row(vec![
            name.into(),
            q.free.to_string(),
            f(os.width.to_f64()),
            f(paper_cost(&count_rc).to_f64()),
            f(paper_cost(&query_rc).to_f64()),
            out.to_string(),
            f(paper_cost(&worst).to_f64()),
        ]);
    }
    t.verdict("count + query circuit costs stay near N + 2^width + OUT and far below the worst-case (naive) circuit when OUT is small".to_string());
    t
}

/// X10 — Sec. 7: join-aggregate queries over semirings.
pub fn x10_semiring() -> Table {
    let mut t = Table::new(
        "X10  Sec 7: join-aggregate (FAQ) circuits over semirings",
        &["query", "semiring", "circuit_cost", "verified"],
    );
    let n = 1u64 << 5;
    // triangles per vertex (Natural), triangle existence per vertex
    // (Boolean), cheapest 2-hop path (MinTropical)
    let tri = {
        let q = triangle();
        Cq {
            free: vs(&[0]),
            ..q
        }
    };
    let two_hop = qec_query::parse_cq("Q(a, c) :- R(a, b), S(b, c)").expect("parses");
    let cases: Vec<(&str, Cq, Semiring, Vec<Option<Var>>)> = vec![
        (
            "triangles/vertex",
            tri.clone(),
            Semiring::Natural,
            vec![None, None, None],
        ),
        (
            "in-triangle?",
            tri,
            Semiring::Boolean,
            vec![None, None, None],
        ),
        (
            "cheapest 2-hop",
            two_hop.clone(),
            Semiring::MinTropical,
            vec![Some(Var(40)), Some(Var(41))],
        ),
        (
            "heaviest 2-hop",
            two_hop,
            Semiring::MaxTropical,
            vec![Some(Var(40)), Some(Var(41))],
        ),
    ];
    for (name, q, sr, annots) in cases {
        let dc = uniform_dc(&q, n);
        let aq = AggregateQuery::new(&q, &dc, sr, annots.clone(), 4_000).expect("builds");
        // verification instance
        let mut db = uniform_db(&q, (n - 4) as usize, 13);
        for (atom, annot) in q.atoms.iter().zip(annots.iter()) {
            if let Some(a) = annot {
                let rel = db.get(&atom.name).expect("present").clone();
                let mut schema = rel.schema().to_vec();
                schema.push(*a);
                let rows = rel
                    .iter()
                    .enumerate()
                    .map(|(i, r)| {
                        let mut t = r.clone();
                        t.push(1 + (i as u64 % 5));
                        t
                    })
                    .collect();
                db.insert(
                    atom.name.clone(),
                    qec_relation::Relation::from_rows(schema, rows),
                );
            }
        }
        let expect = aq.reference(&db).expect("reference");
        let rc = aq.circuit(expect.len().max(1) as u64).expect("circuit");
        let got = rc.evaluate_ram(&db).expect("evaluates");
        let ok = got[0] == expect;
        t.row(vec![
            name.into(),
            format!("{sr:?}"),
            f(paper_cost(&rc).to_f64()),
            ok.to_string(),
        ]);
    }
    t.verdict("all four semirings evaluate correctly through the same Yannakakis-C circuit shape (Thm 5 carries over, Sec. 7)".to_string());
    t
}

/// X11 — Sec. 1 (MPC): two-party secure join; AND gates/rounds are the
/// cost drivers.
pub fn x11_mpc() -> Table {
    let mut t = Table::new(
        "X11  Sec 1: GMW-style 2-party secure primary-key join",
        &[
            "M",
            "word_gates",
            "bool_gates",
            "AND_gates",
            "AND_depth",
            "garble_MB",
            "verified",
        ],
    );
    for m in [4usize, 8, 16] {
        let mut b = Builder::new(Mode::Build);
        let r = encode_relation(&mut b, vec![Var(0), Var(1)], m);
        let s = encode_relation(&mut b, vec![Var(1), Var(2)], m);
        let j = join_pk(&mut b, &r, &s);
        let schema = j.schema.clone();
        let c = b.finish(j.flatten());
        let bc = lower_with(&c, 16, &CompileOptions::from_env());
        // verify the protocol against plaintext on one instance
        let rr = qec_relation::random_degree_bounded(Var(1), Var(0), m, 1, 3)
            .rename(Var(0), Var(3))
            .rename(Var(1), Var(0))
            .rename(Var(3), Var(1));
        let ss = qec_relation::random_degree_bounded(Var(1), Var(2), m, 1, 4);
        let mut inputs = qec_circuit::relation_to_values(&rr, m).expect("fits");
        inputs.extend(qec_circuit::relation_to_values(&ss, m).expect("fits"));
        let plain = c.evaluate(&inputs).expect("plaintext");
        let bits = bc.pack_inputs(&inputs);
        let (shared, stats) = qec_mpc::run_two_party(&bc, &bits, 99).expect("protocol");
        let shared_words = bc.unpack_outputs(&shared);
        let ok = shared_words == plain
            && qec_circuit::decode_relation(&schema, &shared_words) == rr.natural_join(&ss);
        let garble = qec_mpc::garbling_cost(&bc);
        t.row(vec![
            m.to_string(),
            c.size().to_string(),
            bc.gate_count().to_string(),
            stats.and_gates.to_string(),
            bc.and_depth().to_string(),
            format!("{:.1}", garble.table_bytes as f64 / 1e6),
            ok.to_string(),
        ]);
    }
    t.verdict("the secure join is exact; its communication (AND gates) scales with the Õ(M+N') circuit size rather than the naive M·N' — the paper's motivation for circuit-based MPC".to_string());
    t
}

/// X12 — Sec. 5.1: sorting-network and scan substrate scaling, with the
/// odd–even vs bitonic network ablation.
pub fn x12_primitive_scaling() -> Table {
    use qec_circuit::{sort_slots_network, SortNetwork};
    let mut t = Table::new(
        "X12  Sec 5.1: sorting networks Θ(K log²K) (odd-even vs bitonic) and scan Θ(K log K)",
        &[
            "K",
            "oddeven_size",
            "bitonic_size",
            "saving",
            "sort_depth",
            "scan_size",
            "scan_depth",
        ],
    );
    for e in [4u32, 6, 8, 10, 12, 14] {
        let k = 1usize << e;
        let sort_metrics = |network: SortNetwork| -> (u64, u32) {
            let mut b = Builder::new(Mode::Count);
            let w = encode_relation(&mut b, vec![Var(0)], k);
            let (s, _) =
                sort_slots_network(&mut b, &w, &SortKey::Columns(vec![Var(0)]), &[], network);
            let c = b.finish(s.flatten());
            (c.size(), c.depth())
        };
        let (oe, oed) = sort_metrics(SortNetwork::OddEvenMerge);
        let (bi, _) = sort_metrics(SortNetwork::Bitonic);
        let mut b = Builder::new(Mode::Count);
        let xs: Vec<Vec<WireId>> = (0..k).map(|_| vec![b.input()]).collect();
        let out = scan(&mut b, &xs, &mut |b, a, x| vec![b.add(a[0], x[0])]);
        let c = b.finish(out.into_iter().map(|v| v[0]).collect());
        t.row(vec![
            k.to_string(),
            oe.to_string(),
            bi.to_string(),
            format!("{:.0}%", 100.0 * (1.0 - oe as f64 / bi as f64)),
            oed.to_string(),
            c.size().to_string(),
            c.depth().to_string(),
        ]);
    }
    t.verdict("both networks are Θ(K log²K) size / Θ(log²K) depth; odd-even merge (the default) saves 14-22% of the gates (more of the comparators; the mux payload is shared) — the ablation behind DESIGN.md's sorting-network substitution".to_string());
    t
}

/// X13 — Brent's theorem: levelized PRAM schedules of the PANDA-C
/// triangle circuit achieve `O(W/P + D)` steps, and the level-parallel
/// evaluator realizes the speedup in wall-clock on real threads.
pub fn x13_brent() -> Table {
    use qec_circuit::CompiledCircuit;
    let mut t = Table::new(
        "X13  Brent: PRAM steps (and wall-clock) of the PANDA-C triangle circuit",
        &["P", "steps", "W/P + D", "ok", "wall_ms"],
    );
    let q = triangle();
    let dc = uniform_dc(&q, 32);
    let p = compile_fcq(&q, &dc).expect("compiles");
    let lowered = p.rc.lower(Mode::Build);
    let c = &lowered.circuit;
    let (w, d) = (c.size(), u64::from(c.depth()));
    let db = uniform_db(&q, 28, 3);
    let inputs = lowered.layout.values(&db).expect("conforms");
    // Compile once; the engine's level-parallel path realizes the PRAM
    // schedule that `brent_steps` counts.
    let engine = CompiledCircuit::compile_with(c, &CompileOptions::from_env())
        .expect("build-mode circuit")
        .0;
    let reference = c.evaluate(&inputs).expect("sequential");
    let mut all_ok = true;
    for procs in [1u64, 2, 4, 8, 64, 1024, 1 << 20] {
        let steps = brent_steps(c, procs);
        let bound = w / procs + d;
        let mut ok = steps <= bound;
        let wall = if procs <= 8 {
            let (mut out, metrics) =
                engine.evaluate_batch_metered(std::slice::from_ref(&&inputs[..]), procs as usize);
            ok &= out.pop().expect("one lane") == Ok(reference.clone());
            format!("{:.0}", metrics.eval_ns as f64 / 1e6)
        } else {
            "-".into()
        };
        all_ok &= ok;
        t.row(vec![
            procs.to_string(),
            steps.to_string(),
            bound.to_string(),
            ok.to_string(),
            wall,
        ]);
    }
    let cores = std::thread::available_parallelism()
        .map(|c| c.get())
        .unwrap_or(1);
    let regs = engine.stats().peak_registers;
    t.verdict(if all_ok {
        format!(
            "W = {w}, D = {d}: every schedule meets Brent's W/P + D bound, and the compiled engine reproduces the interpreter at every P with a {regs}-register working set (vs {} wires; this host has {cores} core(s), so wall-clock gains appear only beyond that)",
            c.num_wires()
        )
    } else {
        "Brent bound violated or engine/interpreter mismatch (bug)".to_string()
    });
    t
}

/// X15 — the compiled evaluation engine: one tape pass over a batch of
/// database instances beats per-instance interpretation ≥ 4× on a
/// ≥ 10⁵-gate join circuit, with a register working set orders of
/// magnitude below the circuit size.
pub fn x15_engine_throughput() -> Table {
    use qec_circuit::CompiledCircuit;
    let mut t = Table::new(
        "X15  Engine: batched, register-allocated evaluation of a degree-bounded join",
        &[
            "evaluator",
            "batch",
            "threads",
            "us_per_inst",
            "Mgev_per_s",
            "speedup",
        ],
    );
    const CAP: usize = 16;
    const BATCH: usize = 64;
    // R(a,b) ⋈ S(b,c) with degree bound 4 — ~2·10⁵ word gates.
    let mut b = Builder::new(Mode::Build);
    let r = encode_relation(&mut b, vec![Var(0), Var(1)], CAP);
    let s = encode_relation(&mut b, vec![Var(1), Var(2)], CAP);
    let j = join_degree_bounded(&mut b, &r, &s, 4);
    let c = b.finish(j.flatten());
    let engine = CompiledCircuit::compile_with(&c, &CompileOptions::from_env())
        .expect("build-mode circuit")
        .0;
    let stats = engine.stats().clone();

    let instances: Vec<Vec<u64>> = (0..BATCH)
        .map(|lane| {
            let mut inp = Vec::with_capacity(c.num_inputs());
            for rel in 0..2 {
                for slot in 0..CAP {
                    let key = (slot as u64 + lane as u64) % 7;
                    inp.extend_from_slice(&if rel == 0 {
                        [slot as u64, key, 1]
                    } else {
                        [key, slot as u64, 1]
                    });
                }
            }
            inp
        })
        .collect();

    // One warm-up pass per evaluator (doubling as the correctness
    // cross-check), then interleaved timing rounds with a per-evaluator
    // median: the passes being compared run back to back in each round,
    // so slow drift in the host's effective clock speed cancels out of
    // the speedup ratio instead of landing on whichever evaluator was
    // measured later.
    type Pass<'a> = Box<dyn FnMut() -> Vec<Result<Vec<u64>, qec_circuit::EvalError>> + 'a>;
    let eng = &engine;
    let insts = &instances;
    let reference: Vec<_> = insts.iter().map(|i| c.evaluate(i)).collect();
    let mut evals: Vec<(&str, usize, usize, Pass<'_>)> = vec![(
        "interpreter",
        1,
        1,
        Box::new(|| insts.iter().map(|i| c.evaluate(i)).collect()),
    )];
    for (chunk, threads) in [(1usize, 1usize), (BATCH, 1), (BATCH, 4)] {
        evals.push((
            "engine",
            chunk,
            threads,
            Box::new(move || {
                insts
                    .chunks(chunk)
                    .flat_map(|g| eng.evaluate_batch_threaded(g, threads))
                    .collect()
            }),
        ));
    }
    let mut correct = true;
    for (_, _, _, pass) in evals.iter_mut() {
        correct &= pass() == reference;
    }
    const ROUNDS: usize = 5;
    let mut times = vec![Vec::with_capacity(ROUNDS); evals.len()];
    for _ in 0..ROUNDS {
        for (i, (_, _, _, pass)) in evals.iter_mut().enumerate() {
            let t0 = std::time::Instant::now();
            let _ = pass();
            times[i].push(t0.elapsed().as_nanos() as f64);
        }
    }
    let median = |v: &mut Vec<f64>| -> f64 {
        v.sort_by(f64::total_cmp);
        v[v.len() / 2]
    };
    let interp_ns = median(&mut times[0]);
    let gev = |total_ns: f64| stats.tape_len as f64 * BATCH as f64 / (total_ns / 1e9) / 1e6;
    t.row(vec![
        "interpreter".into(),
        "1".into(),
        "1".into(),
        f(interp_ns / 1e3 / BATCH as f64),
        f(gev(interp_ns)),
        f(1.0),
    ]);

    let mut batch64_speedup = 0.0;
    for (i, (label, chunk, threads)) in [
        ("engine", 1usize, 1usize),
        ("engine", BATCH, 1),
        ("engine", BATCH, 4),
    ]
    .into_iter()
    .enumerate()
    {
        let ns = median(&mut times[i + 1]);
        let speedup = interp_ns / ns;
        if chunk == BATCH && threads == 1 {
            batch64_speedup = speedup;
        }
        t.row(vec![
            label.into(),
            chunk.to_string(),
            threads.to_string(),
            f(ns / 1e3 / BATCH as f64),
            f(gev(ns)),
            f(speedup),
        ]);
    }

    let kinds = stats
        .gate_count_pairs()
        .iter()
        .map(|(k, n)| format!("{k} {n}"))
        .collect::<Vec<_>>()
        .join(", ");
    t.verdict(format!(
        "{} gates in {} levels (widest {}), peak {} registers ({}x below the wire count) — batch-{BATCH} engine {}x over the interpreter ({}, correct: {correct}); gates: {kinds}",
        stats.circuit_size,
        stats.num_levels,
        stats.max_level_width(),
        stats.peak_registers,
        stats.circuit_wires / stats.peak_registers.max(1),
        f(batch64_speedup),
        if batch64_speedup >= 4.0 { "meets the ≥4x target" } else { "BELOW the 4x target" },
    ));
    t
}

/// X16 — the optimizer pipeline (hash-consing + constant folding +
/// identity rewrites + DCE): on the X15 join circuit it must remove
/// ≥ 25% of the word gates and buy ≥ 15% batched-engine throughput;
/// the X1 triangle circuit and the bit-level lowering shrink alongside.
pub fn x16_optimizer() -> Table {
    use qec_circuit::{optimize_bits_with, optimize_with, CompiledCircuit};
    let mut t = Table::new(
        "X16  Optimizer: hash-consing, folding, and DCE across the word/bit IRs",
        &[
            "circuit",
            "stage",
            "word_gates",
            "depth",
            "bit_ANDs",
            "AND_depth",
            "ms",
            "us_per_inst",
        ],
    );
    const CAP: usize = 16;
    const BATCH: usize = 64;
    const BIT_WIDTH: u32 = 16;

    // --- X1 triangle circuit (heavy/light, N = 16), builder CSE online.
    // N = 16 keeps the bit-level lowering (~10M bit gates at width 16)
    // inside a few seconds; the word-level ratios are stable across N. ---
    let t0 = std::time::Instant::now();
    let (rc, _) = triangle_heavy_light(16);
    let tri = rc.lower(Mode::Build).circuit;
    let tri_build_ms = t0.elapsed().as_secs_f64() * 1e3;
    let t0 = std::time::Instant::now();
    let (tri_opt, _) = optimize_with(&tri, &CompileOptions::from_env());
    let tri_opt_ms = t0.elapsed().as_secs_f64() * 1e3;
    let tri_bits = lower_with(&tri, BIT_WIDTH, &CompileOptions::from_env());
    let (tri_bits_opt, _) = {
        let lowered = lower_with(&tri_opt, BIT_WIDTH, &CompileOptions::from_env());
        optimize_bits_with(&lowered, &CompileOptions::from_env())
    };
    t.row(vec![
        "triangle N=16".into(),
        "builder(cse)".into(),
        tri.size().to_string(),
        tri.depth().to_string(),
        tri_bits.and_count().to_string(),
        tri_bits.and_depth().to_string(),
        f(tri_build_ms),
        "-".into(),
    ]);
    t.row(vec![
        "triangle N=16".into(),
        "optimized".into(),
        tri_opt.size().to_string(),
        tri_opt.depth().to_string(),
        tri_bits_opt.and_count().to_string(),
        tri_bits_opt.and_depth().to_string(),
        f(tri_opt_ms),
        "-".into(),
    ]);

    // --- X15 join circuit, built raw (no online CSE) so the row pair
    // measures the whole pipeline against the unpreprocessed builder
    // output. ---
    let t0 = std::time::Instant::now();
    let mut b = Builder::without_cse(Mode::Build);
    let r = encode_relation(&mut b, vec![Var(0), Var(1)], CAP);
    let s = encode_relation(&mut b, vec![Var(1), Var(2)], CAP);
    let j = join_degree_bounded(&mut b, &r, &s, 4);
    let raw = b.finish(j.flatten());
    let raw_build_ms = t0.elapsed().as_secs_f64() * 1e3;
    let t0 = std::time::Instant::now();
    let eng_raw =
        CompiledCircuit::compile_with(&raw, &CompileOptions::from_env().with_optimize(false))
            .expect("build-mode circuit")
            .0;
    let raw_compile_ms = t0.elapsed().as_secs_f64() * 1e3;
    let t0 = std::time::Instant::now();
    let eng_opt = CompiledCircuit::compile_with(&raw, &CompileOptions::from_env())
        .expect("build-mode circuit")
        .0;
    let opt_compile_ms = t0.elapsed().as_secs_f64() * 1e3;
    let st = eng_opt
        .stats()
        .opt
        .clone()
        .expect("compile runs the optimizer");
    let raw_bits = lower_with(&raw, BIT_WIDTH, &CompileOptions::from_env());
    let (opt_word, _) = optimize_with(&raw, &CompileOptions::from_env());
    let opt_bits = {
        let lowered = lower_with(&opt_word, BIT_WIDTH, &CompileOptions::from_env());
        optimize_bits_with(&lowered, &CompileOptions::from_env()).0
    };

    let instances: Vec<Vec<u64>> = (0..BATCH)
        .map(|lane| {
            let mut inp = Vec::with_capacity(raw.num_inputs());
            for rel in 0..2 {
                for slot in 0..CAP {
                    let key = (slot as u64 + lane as u64) % 7;
                    inp.extend_from_slice(&if rel == 0 {
                        [slot as u64, key, 1]
                    } else {
                        [key, slot as u64, 1]
                    });
                }
            }
            inp
        })
        .collect();
    // Warm-up doubles as the correctness cross-check, then interleaved
    // rounds with a per-engine median (same protocol as X15) so clock
    // drift cancels out of the throughput ratio.
    let correct = eng_raw.evaluate_batch(&instances) == eng_opt.evaluate_batch(&instances);
    const ROUNDS: usize = 5;
    let mut raw_ns = Vec::with_capacity(ROUNDS);
    let mut opt_ns = Vec::with_capacity(ROUNDS);
    for _ in 0..ROUNDS {
        let t0 = std::time::Instant::now();
        let _ = eng_raw.evaluate_batch(&instances);
        raw_ns.push(t0.elapsed().as_nanos() as f64);
        let t0 = std::time::Instant::now();
        let _ = eng_opt.evaluate_batch(&instances);
        opt_ns.push(t0.elapsed().as_nanos() as f64);
    }
    let median = |v: &mut Vec<f64>| -> f64 {
        v.sort_by(f64::total_cmp);
        v[v.len() / 2]
    };
    let raw_med = median(&mut raw_ns);
    let opt_med = median(&mut opt_ns);

    t.row(vec![
        "join cap=16".into(),
        "raw".into(),
        raw.size().to_string(),
        raw.depth().to_string(),
        raw_bits.and_count().to_string(),
        raw_bits.and_depth().to_string(),
        f(raw_build_ms + raw_compile_ms),
        f(raw_med / 1e3 / BATCH as f64),
    ]);
    t.row(vec![
        "join cap=16".into(),
        "optimized".into(),
        opt_word.size().to_string(),
        opt_word.depth().to_string(),
        opt_bits.and_count().to_string(),
        opt_bits.and_depth().to_string(),
        f(raw_build_ms + opt_compile_ms),
        f(opt_med / 1e3 / BATCH as f64),
    ]);

    let gate_cut = 100.0 * (1.0 - opt_word.size() as f64 / raw.size() as f64);
    let and_cut = 100.0 * (1.0 - opt_bits.and_count() as f64 / raw_bits.and_count() as f64);
    let gain = 100.0 * (raw_med / opt_med - 1.0);
    t.verdict(format!(
        "join: {gate_cut:.1}% word gates and {and_cut:.1}% bit ANDs removed (fold {}, identity {}, cse {}, dead {}) in {:.0} ms; batch-{BATCH} engine +{gain:.1}% throughput (correct: {correct}) — {}",
        st.folded,
        st.identities,
        st.cse_hits,
        st.dead,
        opt_compile_ms,
        if gate_cut >= 25.0 && gain >= 15.0 {
            "meets the ≥25% gate / ≥15% throughput targets"
        } else {
            "BELOW the ≥25% gate / ≥15% throughput targets"
        },
    ));
    t
}

/// X17 — parallel compile pipeline: the X1 heavy/light circuit is
/// lowered through `qec-par`'s worker pool at 1/2/4/8 threads
/// (sharded hash-consing), with byte-identity checks against the
/// sequential pipeline at every stage.
///
/// Sizing knobs: `QEC_X17_SMOKE=1` shrinks the sweep to N=64 for CI;
/// `QEC_X17_N1024=1` adds the N=1024 count-mode column (the size the
/// sequential X1 sweep has always stopped short of).
pub fn x17_parallel_pipeline() -> Table {
    use qec_circuit::{optimize_with, Pool};
    let mut t = Table::new(
        "X17  Parallel build/lower/optimize: worker sweep on the X1 circuit",
        &[
            "stage",
            "N",
            "threads",
            "word_gates",
            "depth",
            "seconds",
            "speedup",
            "parity",
        ],
    );
    let smoke = std::env::var("QEC_X17_SMOKE").is_ok_and(|v| v == "1");
    let with_n1024 = !smoke && std::env::var("QEC_X17_N1024").is_ok_and(|v| v == "1");
    let n_sweep: u64 = if smoke { 64 } else { 256 };

    // --- Count-mode lowering sweep: the full word-level circuit is
    // materialized through the (sharded) cons table at each worker
    // count; gate/depth totals must not move by a single gate. ---
    let (rc, _) = triangle_heavy_light(n_sweep);
    let mut base: Option<(f64, u64, u32)> = None;
    let mut speedup_at_8 = 1.0;
    for threads in [1usize, 2, 4, 8] {
        let t0 = std::time::Instant::now();
        let lowered = rc.lower_with(
            Mode::Count,
            &CompileOptions::sequential().with_pool(Pool::new(threads)),
        );
        let secs = t0.elapsed().as_secs_f64();
        let (gates, depth) = (lowered.circuit.size(), lowered.circuit.depth());
        let (t1_secs, t1_gates, t1_depth) = *base.get_or_insert((secs, gates, depth));
        let parity = gates == t1_gates && depth == t1_depth;
        assert!(parity, "thread count changed the counted circuit");
        if threads == 8 {
            speedup_at_8 = t1_secs / secs;
        }
        t.row(vec![
            "lower(count)".into(),
            n_sweep.to_string(),
            threads.to_string(),
            gates.to_string(),
            depth.to_string(),
            format!("{secs:.2}"),
            f(t1_secs / secs),
            if parity { "=" } else { "DIVERGED" }.into(),
        ]);
    }

    // --- Build-mode byte-identity at a small N: gate lists (not just
    // totals) and the bit-level AND count must match sequential exactly
    // through parallel build, lowering, and both optimizer passes. ---
    let n_exact = 16;
    let (rc16, _) = triangle_heavy_light(n_exact);
    let seq = rc16
        .lower_with(Mode::Build, &CompileOptions::sequential())
        .circuit;
    let par = rc16
        .lower_with(
            Mode::Build,
            &CompileOptions::sequential().with_pool(Pool::new(8)),
        )
        .circuit;
    let word_identical = seq.gates() == par.gates() && seq.outputs() == par.outputs();
    let bits_seq = lower_with(&seq, 16, &CompileOptions::sequential());
    let bits_par = lower_with(
        &par,
        16,
        &CompileOptions::sequential().with_pool(Pool::new(8)),
    );
    let bits_identical = bits_seq.gates() == bits_par.gates();
    let (opt_seq, st_seq) = optimize_with(&seq, &CompileOptions::sequential());
    let (opt_par, st_par) =
        optimize_with(&par, &CompileOptions::sequential().with_pool(Pool::new(8)));
    let opt_identical =
        opt_seq.gates() == opt_par.gates() && format!("{st_seq:?}") == format!("{st_par:?}");
    assert!(
        word_identical && bits_identical && opt_identical,
        "parallel pipeline diverged from sequential at N={n_exact}"
    );
    t.row(vec![
        "build+lower+opt".into(),
        n_exact.to_string(),
        "8 vs 1".into(),
        par.size().to_string(),
        par.depth().to_string(),
        "-".into(),
        "-".into(),
        format!(
            "gates/bit-ANDs/OptStats byte-identical ({} ANDs)",
            bits_par.and_count()
        ),
    ]);

    // --- N=1024 count-mode: the column the sequential sweep never
    // reached (the X1 table historically stopped at N=256). ---
    if with_n1024 {
        let (rc_big, _) = triangle_heavy_light(1024);
        let pool = Pool::from_env();
        let t0 = std::time::Instant::now();
        let lowered = rc_big.lower_with(Mode::Count, &CompileOptions::sequential().with_pool(pool));
        let secs = t0.elapsed().as_secs_f64();
        t.row(vec![
            "lower(count)".into(),
            "1024".into(),
            pool.threads().to_string(),
            lowered.circuit.size().to_string(),
            lowered.circuit.depth().to_string(),
            format!("{secs:.2}"),
            "-".into(),
            "first measurement at this size".into(),
        ]);
    }

    let cores = std::thread::available_parallelism().map_or(1, |p| p.get());
    t.verdict(format!(
        "8-worker lowering runs {speedup_at_8:.2}x the 1-worker pass on {cores} detected core(s) with byte-identical circuits at every stage; the ≥3x wall-clock target needs ≥8 physical cores (speedup is core-bound, parity is not){}",
        if with_n1024 { "" } else { " — set QEC_X17_N1024=1 for the N=1024 column" },
    ));
    t
}

/// X14 — bound tightness (Sec. 3.2): on AGM worst-case instances the
/// measured output reaches the polymatroid bound (up to the integrality
/// of the grid side), certifying that the circuits are not oversized.
pub fn x14_bound_tightness() -> Table {
    use qec_query::baseline::evaluate_pairwise;
    use qec_relation::{
        agm_worst_case_even_cycle, agm_worst_case_loomis_whitney, agm_worst_case_triangle, Database,
    };
    let mut t = Table::new(
        "X14  Sec 3.2: worst-case instances saturate the polymatroid bound",
        &["query", "N", "DAPB", "|Q(D)|", "fill", "circuit agrees"],
    );
    let mut cases: Vec<(&str, Cq, Database, u64)> = Vec::new();
    for e in [4u32, 6, 8] {
        let n = 1usize << e;
        let q = triangle();
        let (r, s, tt) = agm_worst_case_triangle(Var(0), Var(1), Var(2), n);
        let mut db = Database::new();
        db.insert("R", r);
        db.insert("S", s);
        db.insert("T", tt);
        cases.push(("triangle", q, db, n as u64));
    }
    {
        let n = 64usize;
        let q = k_cycle(4);
        let rels = agm_worst_case_even_cycle(4, n);
        let mut db = Database::new();
        for (a, rel) in q.atoms.iter().zip(rels) {
            db.insert(a.name.clone(), rel);
        }
        cases.push(("4-cycle", q, db, n as u64));
    }
    {
        let n = 64usize;
        let q = loomis_whitney(3);
        let rels = agm_worst_case_loomis_whitney(3, n);
        let mut db = Database::new();
        for (a, rel) in q.atoms.iter().zip(rels) {
            db.insert(a.name.clone(), rel);
        }
        cases.push(("LW(3)", q, db, n as u64));
    }
    for (name, q, db, n) in cases {
        let dc = uniform_dc(&q, n);
        let p = compile_fcq(&q, &dc).expect("compiles");
        let out = evaluate_pairwise(&q, &db).expect("baseline");
        let circuit_out = p.rc.evaluate_ram(&db).expect("conforms");
        let dapb = 2f64.powf(p.bound.log_value.to_f64());
        t.row(vec![
            name.into(),
            n.to_string(),
            f(dapb),
            out.len().to_string(),
            format!("{:.0}%", 100.0 * out.len() as f64 / dapb),
            (circuit_out[0] == out).to_string(),
        ]);
    }
    t.verdict("worst-case grids fill the bound up to grid-side integrality (⌊√N⌋ effects) — the circuits' DAPB sizing is not slack, matching the tightness discussion of Sec. 3.2".to_string());
    t
}

/// X18 — observability overhead: the traced-vs-untraced sweep behind
/// the `qec-obs` acceptance gates. Interleaved rounds measure (a) the
/// batch-64 engine throughput on the X15 join circuit and (b) the full
/// relational compile pipeline (rc build → word optimize → tape → bit
/// lower) on the PANDA-C triangle, once with all recorders disabled and
/// once with an enabled recorder installed globally. The traced rounds
/// additionally report what fraction of the end-to-end compile wall
/// time the exported `build`/`optimize`/`tape`/`lower` spans account
/// for. Targets: < 2% eval overhead, ≥ 95% span coverage.
/// `QEC_X18_ROUNDS=<n>` overrides the 5 interleaved rounds (CI smoke
/// uses 1).
pub fn x18_obs_overhead() -> Table {
    use qec_circuit::CompiledCircuit;
    use qec_obs::Recorder;
    let mut t = Table::new(
        "X18  Observability: traced-vs-untraced overhead and span coverage",
        &[
            "measurement",
            "untraced",
            "traced",
            "overhead_pct",
            "coverage_pct",
        ],
    );

    // The X15 join circuit and batch, for the eval-throughput half.
    const CAP: usize = 16;
    const BATCH: usize = 64;
    let mut b = Builder::new(Mode::Build);
    let r = encode_relation(&mut b, vec![Var(0), Var(1)], CAP);
    let s = encode_relation(&mut b, vec![Var(1), Var(2)], CAP);
    let j = join_degree_bounded(&mut b, &r, &s, 4);
    let c = b.finish(j.flatten());
    let engine = CompiledCircuit::compile_with(&c, &CompileOptions::from_env())
        .expect("build-mode circuit")
        .0;
    let instances: Vec<Vec<u64>> = (0..BATCH)
        .map(|lane| {
            let mut inp = Vec::with_capacity(c.num_inputs());
            for rel in 0..2 {
                for slot in 0..CAP {
                    let key = (slot as u64 + lane as u64) % 7;
                    inp.extend_from_slice(&if rel == 0 {
                        [slot as u64, key, 1]
                    } else {
                        [key, slot as u64, 1]
                    });
                }
            }
            inp
        })
        .collect();

    // The PANDA-C triangle relational pipeline, for the compile half
    // (N = 16 like X16's triangle column: large enough for stable span
    // timings, small enough that ten full rounds — each rebuilding the
    // word circuit, optimizing, taping, and bit-lowering — stay in CI
    // smoke territory).
    let q = triangle();
    let dc = uniform_dc(&q, 16);
    let p = compile_fcq(&q, &dc).expect("compiles");

    let rounds: usize = std::env::var("QEC_X18_ROUNDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(5);
    let mut eval_ns = [Vec::new(), Vec::new()]; // [untraced, traced]
    let mut compile_ns = [Vec::new(), Vec::new()];
    let mut coverages = Vec::with_capacity(rounds);
    // Warm-up: one untimed pass of each half.
    let _ = engine.evaluate_batch(&instances);
    let _ = p.rc.lower_with(Mode::Build, &CompileOptions::from_env());
    let saved = qec_obs::install(Recorder::disabled());
    for _ in 0..rounds {
        for traced in [false, true] {
            // A fresh recorder per traced round keeps span totals
            // per-round; installing it globally routes the builder and
            // pool counters to the same sink the driver stages use.
            let rec = if traced {
                Recorder::new(true)
            } else {
                Recorder::disabled()
            };
            qec_obs::install(rec.clone());
            let opts = CompileOptions::from_env().with_recorder(rec.clone());

            let t0 = std::time::Instant::now();
            let out = engine.evaluate_batch(&instances);
            eval_ns[usize::from(traced)].push(t0.elapsed().as_nanos() as f64);
            assert!(out.iter().all(|r| r.is_ok()), "join instances are valid");

            let t0 = std::time::Instant::now();
            let lowered = p.rc.lower_with(Mode::Build, &opts);
            let (eng2, _) =
                CompiledCircuit::compile_with(&lowered.circuit, &opts).expect("build-mode circuit");
            let bits = lower_with(&lowered.circuit, 16, &opts);
            let wall = t0.elapsed().as_nanos() as f64;
            std::hint::black_box((eng2.stats().tape_len, bits.gate_count()));
            compile_ns[usize::from(traced)].push(wall);
            if traced {
                let covered: u64 = ["build", "optimize", "tape", "lower"]
                    .iter()
                    .map(|name| rec.span_total_ns(name))
                    .sum();
                coverages.push(covered as f64 / wall);
            }
        }
    }
    qec_obs::install(saved);

    let median = |v: &mut Vec<f64>| -> f64 {
        v.sort_by(f64::total_cmp);
        v[v.len() / 2]
    };
    let (eu, et) = (median(&mut eval_ns[0]), median(&mut eval_ns[1]));
    let (cu, ct) = (median(&mut compile_ns[0]), median(&mut compile_ns[1]));
    let coverage = median(&mut coverages);
    let eval_overhead = (et - eu) / eu * 100.0;
    let compile_overhead = (ct - cu) / cu * 100.0;
    t.row(vec![
        "eval us/inst (x15 join, batch 64)".into(),
        f(eu / 1e3 / BATCH as f64),
        f(et / 1e3 / BATCH as f64),
        f(eval_overhead),
        "-".into(),
    ]);
    t.row(vec![
        "compile ms (triangle rc pipeline)".into(),
        f(cu / 1e6),
        f(ct / 1e6),
        f(compile_overhead),
        f(coverage * 100.0),
    ]);
    t.verdict(format!(
        "tracing costs {eval_overhead:.2}% on batch-{BATCH} eval ({}) and {compile_overhead:.2}% on compile; the exported build/optimize/tape/lower spans cover {:.1}% of compile wall time ({})",
        if eval_overhead < 2.0 {
            "meets the <2% target"
        } else {
            "ABOVE the 2% target"
        },
        coverage * 100.0,
        if coverage >= 0.95 {
            "meets the ≥95% target"
        } else {
            "BELOW the 95% target"
        },
    ));
    t
}

/// All experiments in order.
#[allow(clippy::type_complexity)]
pub fn all_experiments() -> Vec<(&'static str, fn() -> Table)> {
    vec![
        ("x1", x1_heavy_light as fn() -> Table),
        ("x2", x2_panda_triangle),
        ("x3", x3_proof_sequences),
        ("x4", x4_panda_cost),
        ("x5", x5_project_aggregate),
        ("x6", x6_pk_join),
        ("x7", x7_degree_join),
        ("x8", x8_output_join),
        ("x9", x9_output_sensitive),
        ("x10", x10_semiring),
        ("x11", x11_mpc),
        ("x12", x12_primitive_scaling),
        ("x13", x13_brent),
        ("x14", x14_bound_tightness),
        ("x15", x15_engine_throughput),
        ("x16", x16_optimizer),
        ("x17", x17_parallel_pipeline),
        ("x18", x18_obs_overhead),
        ("x19", x19_differential),
        ("x20", x20_tape_streaming),
        ("x21", x21_bitengine),
        ("x22", x22_serve),
        ("x23", x23_networked_gmw),
        ("x24", x24_datalog_fixpoint),
    ]
}

/// X19 — Differential fuzzing throughput: seeded random conjunctive
/// queries with random instances, each compiled through the full
/// engine-option matrix (optimizer on/off × thread counts × tracing)
/// and checked against the RAM baselines with the structural
/// validators armed. Reports cases/sec and the divergence count —
/// which must be zero for the reproduction's equivalence claim to
/// stand.
pub fn x19_differential() -> Table {
    use std::time::Instant;
    let mut t = Table::new(
        "X19  Differential fuzzing: circuit pipeline vs RAM baselines across the option matrix",
        &[
            "seed",
            "cases",
            "configs",
            "word_gates",
            "cases_per_s",
            "divergences",
        ],
    );
    let cases: usize = std::env::var("QEC_X19_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(120);
    let mut divergences = 0usize;
    let mut first_failure = String::new();
    let mut total_rate = 0.0;
    for seed in [0xA11CEu64, 0xB0B5, 0x5EED5] {
        let start = Instant::now();
        // datalog_every = 0: X19 times the CQ pipeline; the Datalog
        // stage has its own experiment (X24) and fuzz cadence.
        let summary = qec_check::fuzz_many(seed, cases, 16, 0);
        let dt = start.elapsed().as_secs_f64().max(1e-9);
        let failed = usize::from(summary.failure.is_some());
        divergences += failed;
        if let Some((case, d)) = &summary.failure {
            if first_failure.is_empty() {
                first_failure = format!("seed {}: {d}", case.seed);
            }
        }
        let rate = summary.cases_passed as f64 / dt;
        total_rate += rate;
        t.row(vec![
            format!("{seed:#x}"),
            summary.cases_passed.to_string(),
            summary.configs.to_string(),
            summary.word_gates.to_string(),
            f(rate),
            failed.to_string(),
        ]);
    }
    t.verdict(if divergences == 0 {
        format!(
            "0 divergences across {} cases at {} cases/s mean; circuit outputs match the RAM baselines on every sampled configuration",
            cases * 3,
            f(total_rate / 3.0),
        )
    } else {
        format!("{divergences} DIVERGENT sweep(s); first: {first_failure}")
    });
    t
}

/// Finds the `tape_eval` sibling binary (X20's child process). `report`
/// and `tape_eval` are both bin targets of this crate, so from the
/// `report` binary it is a sibling; from a test binary it is one
/// directory up (out of `deps/`).
fn tape_eval_binary() -> Option<std::path::PathBuf> {
    let exe = std::env::current_exe().ok()?;
    let dir = exe.parent()?;
    [dir.join("tape_eval"), dir.join("../tape_eval")]
        .into_iter()
        .find(|candidate| candidate.is_file())
}

/// X20 — Flat instruction tapes and bounded-memory streaming lowering:
/// a generated conjunctive-query circuit is (a) bit-lowered both
/// in-memory and through the spillable streaming path under a
/// deliberately tiny window, demanding byte-identity; (b) tape-encoded,
/// serialized, reloaded, and decoded with round-trip identity and
/// save+load throughput measured; and (c) evaluated by a separate
/// `tape_eval` child process from the serialized bytes alone, with
/// outputs matched against the in-process evaluation — the
/// compile-once / load-and-evaluate-many contract across a real
/// process boundary.
///
/// Sizing knobs: `QEC_X20_SMOKE=1` shrinks the case for CI;
/// `QEC_X20_N1280=1` adds the count-mode word lowering at N=1280 — one
/// step beyond X17's historical N=1024 ceiling — with the process peak
/// RSS (`VmHWM`) recorded.
pub fn x20_tape_streaming() -> Table {
    use qec_circuit::{lower_streamed, BitTape, StreamOptions, WordTape};
    use std::io::Write as _;
    use std::process::{Command, Stdio};
    use std::time::Instant;

    let mut t = Table::new(
        "X20  Flat instruction tapes: streaming lowering, serialization, cross-process reload",
        &["stage", "N", "gates", "seconds", "detail", "check"],
    );
    let smoke = std::env::var("QEC_X20_SMOKE").is_ok_and(|v| v == "1");
    let heavy = !smoke && std::env::var("QEC_X20_N1280").is_ok_and(|v| v == "1");

    // A generated conjunctive-query case supplies both the word circuit
    // and *valid* inputs for it (assertion gates are live on the tape),
    // so evaluation parity below is meaningful end to end.
    let case = qec_check::gen_case(if smoke { 7 } else { 23 });
    let (cq, db, dc) = case.materialize().expect("generated case materializes");
    let (rc, _) = naive_circuit(&cq, &dc).expect("naive circuit builds");
    let lowered = rc.lower_with(Mode::Build, &CompileOptions::sequential());
    let word_circuit = &lowered.circuit;
    let word_inputs = lowered.layout.values(&db).expect("layout inputs");
    let n_label = case.seed.to_string();

    // --- In-memory vs streaming bit lowering, byte for byte. The
    // window is sized to force spills on any non-trivial circuit. ---
    let t0 = Instant::now();
    let bits = lower_with(word_circuit, 64, &CompileOptions::sequential());
    let mem_secs = t0.elapsed().as_secs_f64();
    t.row(vec![
        "lower(mem)".into(),
        n_label.clone(),
        bits.gates().len().to_string(),
        format!("{mem_secs:.3}"),
        format!("{} ANDs", bits.and_count()),
        "-".into(),
    ]);

    let stream_opts = StreamOptions {
        chunk_words: 4096,
        window_chunks: 2,
        spill_dir: None,
    };
    let t0 = Instant::now();
    let (streamed_tape, stats) =
        lower_streamed(word_circuit, 64, &stream_opts).expect("streaming lowering");
    let stream_secs = t0.elapsed().as_secs_f64();
    let streamed = streamed_tape.decode().expect("streamed tape decodes");
    let identical = streamed.gates() == bits.gates()
        && streamed.outputs() == bits.outputs()
        && streamed.num_inputs() == bits.num_inputs();
    assert!(identical, "streaming lowering diverged from in-memory");
    t.row(vec![
        "lower(stream)".into(),
        n_label.clone(),
        streamed.gates().len().to_string(),
        format!("{stream_secs:.3}"),
        format!(
            "{} spills, window ≤ {} KiB",
            stats.spills,
            stats.peak_window_bytes / 1024
        ),
        "byte-identical".into(),
    ]);

    // --- Serialization round-trips with save+load throughput. ---
    let word_tape = WordTape::encode(word_circuit).expect("word tape encodes");
    let t0 = Instant::now();
    let word_bytes = word_tape.to_bytes();
    let word_back = WordTape::from_bytes(&word_bytes).expect("word tape reloads");
    let word_secs = t0.elapsed().as_secs_f64();
    assert_eq!(word_back, word_tape, "word tape round-trip changed bytes");
    t.row(vec![
        "tape save+load (word)".into(),
        n_label.clone(),
        word_tape.num_instructions().to_string(),
        format!("{word_secs:.4}"),
        format!(
            "{} KiB at {} MB/s",
            word_bytes.len() / 1024,
            f(word_bytes.len() as f64 / 5e5 / word_secs.max(1e-9))
        ),
        "round-trip identical".into(),
    ]);

    let bit_tape = BitTape::encode(&bits);
    let t0 = Instant::now();
    let bit_bytes = bit_tape.to_bytes();
    let bit_back = BitTape::from_bytes(&bit_bytes).expect("bit tape reloads");
    let bit_secs = t0.elapsed().as_secs_f64();
    assert_eq!(bit_back, bit_tape, "bit tape round-trip changed bytes");
    t.row(vec![
        "tape save+load (bit)".into(),
        n_label.clone(),
        bit_tape.num_instructions().to_string(),
        format!("{bit_secs:.4}"),
        format!(
            "{} KiB at {} MB/s",
            bit_bytes.len() / 1024,
            f(bit_bytes.len() as f64 / 5e5 / bit_secs.max(1e-9))
        ),
        "round-trip identical".into(),
    ]);

    // --- Cross-process reload: a separate `tape_eval` process gets only
    // the serialized bytes and the inputs, and must reproduce the
    // in-process evaluation exactly. ---
    let mut child_checks = 0u32;
    match tape_eval_binary() {
        Some(bin) => {
            let dir = std::env::temp_dir();
            let pid = std::process::id();
            for (kind, tape_bytes, input_line, expect) in [
                (
                    "word",
                    &word_bytes,
                    word_inputs
                        .iter()
                        .map(u64::to_string)
                        .collect::<Vec<_>>()
                        .join(" "),
                    word_tape
                        .evaluate(&word_inputs)
                        .expect("in-process word evaluation")
                        .iter()
                        .map(u64::to_string)
                        .collect::<Vec<_>>()
                        .join(" "),
                ),
                (
                    "bit",
                    &bit_bytes,
                    bits.pack_inputs(&word_inputs)
                        .iter()
                        .map(|&b| (if b { "1" } else { "0" }).to_string())
                        .collect::<Vec<_>>()
                        .join(" "),
                    bits.evaluate(&bits.pack_inputs(&word_inputs))
                        .expect("in-process bit evaluation")
                        .iter()
                        .map(|&b| (if b { "1" } else { "0" }).to_string())
                        .collect::<Vec<_>>()
                        .join(" "),
                ),
            ] {
                let path = dir.join(format!("qec-x20-{pid}-{kind}.tape"));
                std::fs::write(&path, tape_bytes).expect("tape file writes");
                let t0 = Instant::now();
                let mut child = Command::new(&bin)
                    .arg(kind)
                    .arg(&path)
                    .stdin(Stdio::piped())
                    .stdout(Stdio::piped())
                    .spawn()
                    .expect("tape_eval spawns");
                child
                    .stdin
                    .take()
                    .expect("child stdin")
                    .write_all(input_line.as_bytes())
                    .expect("child accepts inputs");
                let out = child.wait_with_output().expect("tape_eval exits");
                let secs = t0.elapsed().as_secs_f64();
                let _ = std::fs::remove_file(&path);
                assert!(out.status.success(), "tape_eval {kind} failed");
                let got = String::from_utf8_lossy(&out.stdout).trim().to_string();
                assert_eq!(got, expect, "child {kind} evaluation diverged");
                child_checks += 1;
                t.row(vec![
                    format!("child evaluate ({kind})"),
                    n_label.clone(),
                    expect.split_whitespace().count().to_string(),
                    format!("{secs:.3}"),
                    "separate process, bytes only".into(),
                    "outputs match in-process".into(),
                ]);
            }
        }
        None => {
            t.row(vec![
                "child evaluate".into(),
                n_label.clone(),
                "-".into(),
                "-".into(),
                "tape_eval binary not built".into(),
                "SKIPPED (cargo build -p qec-bench --release first)".into(),
            ]);
        }
    }

    // --- The size X17 never reached: count-mode word lowering at
    // N=1280, with the process high-water RSS recorded. Count mode is
    // the word-level analogue of the streaming story — the circuit is
    // sized without materializing gate storage. ---
    if heavy {
        let (rc_big, _) = triangle_heavy_light(1280);
        let pool = qec_circuit::Pool::from_env();
        let t0 = Instant::now();
        let counted = rc_big.lower_with(Mode::Count, &CompileOptions::sequential().with_pool(pool));
        let secs = t0.elapsed().as_secs_f64();
        let rss = qec_obs::peak_rss_bytes()
            .map(|b| format!("peak RSS {:.1} GiB (VmHWM)", b as f64 / (1u64 << 30) as f64))
            .unwrap_or_else(|| "peak RSS unavailable".into());
        t.row(vec![
            "lower(count)".into(),
            "1280".into(),
            counted.circuit.size().to_string(),
            format!("{secs:.2}"),
            rss,
            "first measurement at this size".into(),
        ]);
    }

    t.verdict(format!(
        "streaming lowering is byte-identical to in-memory under a {}-chunk window with {} spill(s); both tape kinds round-trip losslessly and {} child-process evaluation(s) matched in-process outputs{}",
        stream_opts.window_chunks,
        stats.spills,
        child_checks,
        if heavy {
            "; N=1280 count-mode lowering completed (see row)"
        } else {
            " — set QEC_X20_N1280=1 for the N=1280 column"
        },
    ));
    t
}

/// X21 — the bitsliced BitEngine: transposed batch evaluation of the
/// X15 join circuit's lowered bit circuit at 64–512 instances per
/// scalar op, versus the per-instance interpreter; then the
/// batched-triple GMW protocol on a secure triangle evaluation, where
/// the dealer hands out one packed triple (64–256 scalar triples) per
/// AND step instead of one bit triple per AND per instance.
///
/// Sizing knob: `QEC_X21_SMOKE=1` shrinks both circuits for CI.
pub fn x21_bitengine() -> Table {
    use qec_circuit::{BitEvalScratch, BitKernel, CompiledBitCircuit, EvalError};
    let smoke = std::env::var("QEC_X21_SMOKE").is_ok_and(|v| v == "1");
    let mut t = Table::new(
        "X21  BitEngine: bitsliced transposed bit-circuit evaluation + batched-triple GMW",
        &[
            "mode",
            "kernel",
            "batch",
            "us_per_inst",
            "Mgev_per_s",
            "speedup",
        ],
    );

    // --- Part 1: gate-evals/s on the X15 join circuit, lowered to bits.
    // R(a,b) ⋈ S(b,c) with degree bound 4, width-16 lowering. ---
    let cap = if smoke { 8 } else { 16 };
    let mut b = Builder::new(Mode::Build);
    let r = encode_relation(&mut b, vec![Var(0), Var(1)], cap);
    let s = encode_relation(&mut b, vec![Var(1), Var(2)], cap);
    let j = join_degree_bounded(&mut b, &r, &s, 4);
    let c = b.finish(j.flatten());
    let bits = lower_with(&c, 16, &CompileOptions::from_env());
    let eng = CompiledBitCircuit::compile(&bits);
    let gates = eng.stats().tape_len as f64;

    const MAX_BATCH: usize = 512;
    const INTERP_BATCH: usize = 64;
    let instances: Vec<Vec<bool>> = (0..MAX_BATCH)
        .map(|lane| {
            let mut inp = Vec::with_capacity(c.num_inputs());
            for rel in 0..2 {
                for slot in 0..cap {
                    let key = (slot as u64 + lane as u64) % 7;
                    inp.extend_from_slice(&if rel == 0 {
                        [slot as u64, key, 1]
                    } else {
                        [key, slot as u64, 1]
                    });
                }
            }
            bits.pack_inputs(&inp)
        })
        .collect();

    // Reference once (doubling as the warm-up), then interleaved timing
    // rounds with a per-evaluator median, exactly like X15: the passes
    // being compared run back to back in each round so clock drift
    // cancels out of the speedup ratios.
    let mut iscratch = BitEvalScratch::default();
    let reference: Vec<Result<Vec<bool>, EvalError>> = instances
        .iter()
        .map(|i| bits.evaluate_with(i, &mut iscratch).map(<[bool]>::to_vec))
        .collect();

    type Pass<'a> = Box<dyn FnMut() -> Vec<Result<Vec<bool>, EvalError>> + 'a>;
    let insts = &instances;
    let bits_ref = &bits;
    let eng_ref = &eng;
    let mut evals: Vec<(&str, &str, usize, Pass<'_>)> = vec![(
        "bit-interp",
        "-",
        INTERP_BATCH,
        Box::new(move || {
            let mut sc = BitEvalScratch::default();
            insts[..INTERP_BATCH]
                .iter()
                .map(|i| bits_ref.evaluate_with(i, &mut sc).map(<[bool]>::to_vec))
                .collect()
        }),
    )];
    for batch in [1usize, 64, 256] {
        evals.push((
            "bitengine",
            "scalar",
            batch,
            Box::new(move || {
                let mut sc = eng_ref.scratch();
                eng_ref.evaluate_batch_kernel(&insts[..batch], BitKernel::Scalar, &mut sc)
            }),
        ));
    }
    for kernel in BitKernel::available() {
        if kernel == BitKernel::Scalar {
            continue;
        }
        // Wide kernels run at their full lane count so no lanes idle —
        // AVX-512 at batch 256 would waste half its 512 lanes.
        let batch = kernel.lanes().min(MAX_BATCH);
        evals.push((
            "bitengine",
            kernel.name(),
            batch,
            Box::new(move || {
                let mut sc = eng_ref.scratch();
                eng_ref.evaluate_batch_kernel(&insts[..batch], kernel, &mut sc)
            }),
        ));
    }

    let mut correct = true;
    for (_, _, batch, pass) in evals.iter_mut() {
        correct &= pass() == reference[..*batch];
    }
    const ROUNDS: usize = 5;
    let mut times = vec![Vec::with_capacity(ROUNDS); evals.len()];
    for _ in 0..ROUNDS {
        for (i, (_, _, _, pass)) in evals.iter_mut().enumerate() {
            let t0 = std::time::Instant::now();
            let _ = pass();
            times[i].push(t0.elapsed().as_nanos() as f64);
        }
    }
    let median = |v: &mut Vec<f64>| -> f64 {
        v.sort_by(f64::total_cmp);
        v[v.len() / 2]
    };
    let per_inst: Vec<f64> = times
        .iter_mut()
        .zip(&evals)
        .map(|(v, (_, _, batch, _))| median(v) / *batch as f64)
        .collect();
    let interp_per_inst = per_inst[0];
    let mut scalar64_speedup = 0.0;
    for (i, (mode, kernel, batch, _)) in evals.iter().enumerate() {
        let speedup = interp_per_inst / per_inst[i];
        if *kernel == "scalar" && *batch == 64 {
            scalar64_speedup = speedup;
        }
        t.row(vec![
            (*mode).into(),
            (*kernel).into(),
            batch.to_string(),
            f(per_inst[i] / 1e3),
            f(gates / (per_inst[i] / 1e9) / 1e6),
            f(speedup),
        ]);
    }

    // --- Part 2: GMW secure triangle evaluation, per-gate vs batched
    // triples. Empty-database inputs keep every degree-constraint
    // assert quiet; outputs are still cross-checked against plaintext. ---
    let tri_n = if smoke { 4 } else { 8 };
    let (rc, _) = triangle_heavy_light(tri_n);
    let tri = rc.lower(Mode::Build).circuit;
    let tri_bits = lower_with(&tri, 8, &CompileOptions::from_env());
    let tri_eng = CompiledBitCircuit::compile(&tri_bits);
    let zeros = vec![false; tri_bits.num_inputs()];
    let plain = tri_bits.evaluate(&zeros).expect("empty db evaluates");
    // (lanes, batch) pairs: batch scales at a fixed 64-lane width so the
    // two register files stay cache-resident, plus one 256-lane point to
    // show the cost of quadrupling the packed word count.
    let gmw_points = [(64usize, 1usize), (64, 64), (64, 256), (256, 256)];
    let gmw_insts: Vec<Vec<bool>> =
        vec![zeros.clone(); gmw_points.iter().map(|&(_, b)| b).max().expect("nonempty")];

    // The per-gate baseline: one bit triple per AND per instance,
    // consumed gate by gate (`evaluate_shared`); `run_two_party` itself
    // is session-based these days, so the demo is invoked directly.
    let per_gate = || {
        let (s0, s1) = qec_mpc::share_bits(&zeros, 2);
        let dealer = qec_mpc::Dealer::new(tri_bits.and_count() as usize, 1);
        qec_mpc::evaluate_shared(&tri_bits, &s0, &s1, dealer).expect("per-gate gmw")
    };
    let (pg_out, pg_stats) = per_gate();
    correct &= pg_out == plain;
    let mut gmw_times: Vec<Vec<f64>> = vec![Vec::new(); 1 + gmw_points.len()];
    let gmw_rounds = if smoke { 1 } else { 3 };
    let mut batched_stats = qec_mpc::ProtocolStats::default();
    for _ in 0..gmw_rounds {
        let t0 = std::time::Instant::now();
        let _ = per_gate();
        gmw_times[0].push(t0.elapsed().as_nanos() as f64);
        for (i, &(lanes, batch)) in gmw_points.iter().enumerate() {
            let t0 = std::time::Instant::now();
            let (outs, st) =
                qec_mpc::run_two_party_batched_with(&tri_eng, &gmw_insts[..batch], lanes, 1)
                    .expect("batched gmw");
            gmw_times[i + 1].push(t0.elapsed().as_nanos() as f64);
            batched_stats = st;
            correct &= outs
                .iter()
                .all(|o| o.as_ref().map(|v| v == &plain).unwrap_or(false));
        }
    }
    let pg_per_inst = median(&mut gmw_times[0]);
    t.row(vec![
        "gmw-pergate".into(),
        "-".into(),
        "1".into(),
        f(pg_per_inst / 1e3),
        f(tri_bits.gate_count() as f64 / (pg_per_inst / 1e9) / 1e6),
        f(1.0),
    ]);
    let mut gmw64_speedup = 0.0;
    for (i, &(lanes, batch)) in gmw_points.iter().enumerate() {
        let ns = median(&mut gmw_times[i + 1]) / batch as f64;
        let speedup = pg_per_inst / ns;
        if lanes == 64 && batch == 64 {
            gmw64_speedup = speedup;
        }
        t.row(vec![
            "gmw-batched".into(),
            format!("{lanes}-lane"),
            batch.to_string(),
            f(ns / 1e3),
            f(tri_bits.gate_count() as f64 / (ns / 1e9) / 1e6),
            f(speedup),
        ]);
    }

    t.verdict(format!(
        "{} bit gates, peak {} registers, kernels [{}] — scalar batch-64 bitslicing is {}x the per-instance interpreter ({}; target ≥8x), and batched-triple GMW at batch 64 is {}x the per-gate demo ({} ANDs, {} triples/AND-step packed; correct: {correct})",
        eng.stats().tape_len,
        eng.stats().peak_registers,
        BitKernel::available()
            .iter()
            .map(|k| k.name())
            .collect::<Vec<_>>()
            .join(", "),
        f(scalar64_speedup),
        if scalar64_speedup >= 8.0 {
            "meets the ≥8x target"
        } else {
            "BELOW the ≥8x target"
        },
        f(gmw64_speedup),
        pg_stats.and_gates,
        batched_stats.and_gates / tri_bits.and_count().max(1),
    ));
    t
}

/// X22 — the serving layer: plan cache + continuous request batching.
/// Simulated concurrent clients fire single triangle queries (eight
/// distinct databases, one shared plan) at a `qec-serve` server and the
/// experiment measures p50/p99 latency and queries/sec across four
/// regimes: cold (every request pays the full compile against a fresh
/// server), warm batch-1 (plan cached, no coalescing — the A/B
/// baseline), warm coalesced closed-loop at 8–1000 clients, and warm
/// coalesced open-loop at 1000–10000 in-flight requests. Every response
/// is checked against the RAM ground truth for its client's database;
/// the divergence column must stay 0.
///
/// Latency semantics: closed-loop rows report client-observed wall
/// latency (submit to response, one outstanding request per client);
/// open-loop rows report server sojourn time (queue wait + batch
/// service) taken from the response metadata, since a ticket's wall
/// time in a drain loop would also count time spent waiting on
/// *earlier* tickets.
///
/// Sizing knob: `QEC_X22_SMOKE=1` shrinks client counts for CI and
/// asserts nonzero cache hits and zero divergences.
pub fn x22_serve() -> Table {
    use qec_relation::{Database, Relation};
    use qec_serve::{Request, Server, ServerConfig};
    use std::sync::Arc;
    use std::time::{Duration, Instant};

    let smoke = std::env::var("QEC_X22_SMOKE").is_ok_and(|v| v == "1");
    let mut t = Table::new(
        "X22  Serving layer: compiled-plan cache + continuous batching, cold vs warm, batch-1 vs coalesced",
        &[
            "mode", "clients", "requests", "p50_ms", "p99_ms", "qps", "hits", "div",
        ],
    );

    // Workload: the triangle query over eight distinct databases (one
    // per client mod 8) that all share one plan key. Capacity 16 keeps
    // a single evaluation in the hundreds-of-microseconds range, so
    // batching effects are visible but a 10k-request sweep stays fast.
    const DISTINCT: usize = 8;
    let n: u64 = if smoke { 8 } else { 16 };
    let query = "Q(a, b, c) :- R(a, b), S(b, c), T(a, c)";
    let request = move |client: usize| -> Request {
        let seed = (client % DISTINCT) as u64 * 101 + 7;
        let rows = |salt: u64| -> Vec<Vec<u64>> {
            (0..n)
                .map(|i| {
                    vec![
                        (i * 7 + seed + salt) % n,
                        (i * 13 + seed + 2 * salt + 1) % n,
                    ]
                })
                .collect()
        };
        Request {
            tenant: format!("tenant-{}", client % 4),
            query: query.into(),
            n,
            rels: vec![
                ("R".into(), rows(1)),
                ("S".into(), rows(2)),
                ("T".into(), rows(3)),
            ],
        }
    };
    // Ground truth per distinct database, via the RAM baseline.
    let expected: Vec<Relation> = (0..DISTINCT)
        .map(|c| {
            let req = request(c);
            let cq = qec_query::parse_cq(&req.query).expect("workload query parses");
            let mut db = Database::new();
            for (name, rows) in &req.rels {
                let atom = cq.atoms.iter().find(|a| a.name == *name).expect("atom");
                db.insert(
                    name.clone(),
                    Relation::from_rows(atom.vars.to_vec(), rows.clone()),
                );
            }
            evaluate_pairwise(&cq, &db).expect("baseline evaluates")
        })
        .collect();
    let expected = Arc::new(expected);
    let check = |client: usize, rels: &[Relation]| -> usize {
        rels.iter()
            .filter(|r| *r != &expected[client % DISTINCT])
            .count()
    };

    let pct = |sorted: &[f64], p: f64| -> f64 {
        if sorted.is_empty() {
            return 0.0;
        }
        sorted[((sorted.len() - 1) as f64 * p).round() as usize]
    };
    let ms = |ns: f64| ns / 1e6;

    let mut divergences = 0usize;

    // --- Cold: a fresh server (empty cache) per request, so every
    // request pays parse + plan + lower + compile. ---
    let cold_reqs = if smoke { 1 } else { 3 };
    let mut cold_lat: Vec<f64> = Vec::new();
    let t0 = Instant::now();
    for i in 0..cold_reqs {
        let server = Server::start(ServerConfig::default());
        let t1 = Instant::now();
        let resp = server.query(request(i)).expect("cold request serves");
        cold_lat.push(t1.elapsed().as_nanos() as f64);
        divergences += check(i, &resp.relations);
    }
    let cold_wall = t0.elapsed().as_secs_f64();
    cold_lat.sort_by(f64::total_cmp);
    let p50_cold = pct(&cold_lat, 0.5);
    t.row(vec![
        "cold-per-request".into(),
        "1".into(),
        cold_reqs.to_string(),
        f(ms(p50_cold)),
        f(ms(pct(&cold_lat, 0.99))),
        f(cold_reqs as f64 / cold_wall),
        "0".into(),
        divergences.to_string(),
    ]);

    // --- Warm servers: one with coalescing, one at batch size 1. Both
    // compile their plan once during warmup. ---
    let mk_server = |coalesce: bool| -> Arc<Server> {
        let server = Arc::new(Server::start(ServerConfig {
            queue_capacity: 16_384,
            max_batch: 64,
            flush: Duration::from_micros(500),
            coalesce,
            ..ServerConfig::default()
        }));
        let resp = server.query(request(0)).expect("warmup serves");
        assert!(!resp.cache_hit || resp.batch_size >= 1);
        server
    };
    let coalesced = mk_server(true);
    let batch1 = mk_server(false);

    // Closed loop: `clients` threads, each with one outstanding request
    // at a time; client-observed wall latency.
    let closed =
        |server: &Arc<Server>, clients: usize, per_client: usize| -> (Vec<f64>, f64, usize) {
            let t0 = Instant::now();
            let handles: Vec<_> = (0..clients)
                .map(|c| {
                    let server = server.clone();
                    let expected = expected.clone();
                    std::thread::spawn(move || {
                        let mut lat = Vec::with_capacity(per_client);
                        let mut div = 0usize;
                        for _ in 0..per_client {
                            let t1 = Instant::now();
                            let resp = server.query(request(c)).expect("closed-loop request");
                            lat.push(t1.elapsed().as_nanos() as f64);
                            div += resp
                                .relations
                                .iter()
                                .filter(|r| *r != &expected[c % DISTINCT])
                                .count();
                        }
                        (lat, div)
                    })
                })
                .collect();
            let mut lat = Vec::new();
            let mut div = 0;
            for h in handles {
                let (l, d) = h.join().expect("client thread");
                lat.extend(l);
                div += d;
            }
            let wall = t0.elapsed().as_secs_f64();
            lat.sort_by(f64::total_cmp);
            (lat, wall, div)
        };

    let closed_clients: Vec<usize> = if smoke {
        vec![2, 4]
    } else {
        vec![1, 8, 64, 256, 1000]
    };
    let per_client = |clients: usize| -> usize {
        if smoke {
            2
        } else if clients >= 256 {
            4
        } else if clients >= 64 {
            16
        } else {
            64
        }
    };

    let mut qps_batch1_64 = 0.0;
    let mut qps_coalesced_64 = 0.0;
    let mut p50_warm = f64::MAX;
    for (label, server) in [("closed-batch1", &batch1), ("closed-coalesced", &coalesced)] {
        for &clients in &closed_clients {
            // The batch-1 baseline only needs the comparison point (and
            // a small one), not the full sweep.
            let compare_at = if smoke { closed_clients[1] } else { 64 };
            if label == "closed-batch1" && clients != compare_at {
                continue;
            }
            let hits0 = server.cache_stats().hits;
            let (lat, wall, div) = closed(server, clients, per_client(clients));
            divergences += div;
            let qps = lat.len() as f64 / wall;
            let p50 = pct(&lat, 0.5);
            if clients == compare_at {
                if label == "closed-batch1" {
                    qps_batch1_64 = qps;
                } else {
                    qps_coalesced_64 = qps;
                }
            }
            if label == "closed-coalesced" {
                p50_warm = p50_warm.min(p50);
            }
            t.row(vec![
                label.into(),
                clients.to_string(),
                lat.len().to_string(),
                f(ms(p50)),
                f(ms(pct(&lat, 0.99))),
                f(qps),
                (server.cache_stats().hits - hits0).to_string(),
                div.to_string(),
            ]);
        }
    }

    // Open loop: all requests submitted up front (arrivals independent
    // of completions), sojourn time from response metadata.
    let open_clients: Vec<usize> = if smoke { vec![16] } else { vec![1000, 10_000] };
    for &clients in &open_clients {
        let hits0 = coalesced.cache_stats().hits;
        let t0 = Instant::now();
        let tickets: Vec<_> = (0..clients)
            .map(|c| {
                coalesced
                    .submit(request(c))
                    .expect("queue sized for the sweep")
            })
            .collect();
        let mut lat = Vec::with_capacity(clients);
        let mut div = 0usize;
        for (c, ticket) in tickets.into_iter().enumerate() {
            let resp = ticket.wait().expect("open-loop request");
            lat.push((resp.queue_ns + resp.total_ns) as f64);
            div += check(c, &resp.relations);
        }
        let wall = t0.elapsed().as_secs_f64();
        divergences += div;
        lat.sort_by(f64::total_cmp);
        t.row(vec![
            "open-coalesced".into(),
            clients.to_string(),
            clients.to_string(),
            f(ms(pct(&lat, 0.5))),
            f(ms(pct(&lat, 0.99))),
            f(clients as f64 / wall),
            (coalesced.cache_stats().hits - hits0).to_string(),
            div.to_string(),
        ]);
    }

    let total_hits = coalesced.cache_stats().hits + batch1.cache_stats().hits;
    let cold_vs_warm = p50_cold / p50_warm.max(1e-9);
    let coalesce_gain = qps_coalesced_64 / qps_batch1_64.max(1e-9);
    if smoke {
        assert!(
            total_hits > 0,
            "smoke: warm serving must hit the plan cache"
        );
        assert_eq!(
            divergences, 0,
            "smoke: serve results must match ground truth"
        );
    }
    t.verdict(format!(
        "warm p50 is {}x better than cold-compile-per-request (target >=10x: {}); coalesced qps is {}x batch-1 at 64 clients (target >=1.3x: {}); {} cache hits, {} compiles, {} divergences",
        f(cold_vs_warm),
        if cold_vs_warm >= 10.0 { "met" } else { "MISSED" },
        f(coalesce_gain),
        if coalesce_gain >= 1.3 { "met" } else { "MISSED" },
        total_hits,
        coalesced.cache_stats().misses + batch1.cache_stats().misses,
        divergences,
    ));
    t
}

/// X23 — Networked two-party GMW: secure triangle counting driven end
/// to end through `qec_mpc::Session` over a real `Transport`. The same
/// heavy/light triangle circuit runs over the in-process `Duplex` pair
/// and over a TCP localhost socket, and the table reports the protocol
/// cost model the paper's Section 1 motivates: rounds (asserted equal
/// to the tape's AND depth — one framed message per AND level), bytes
/// on the wire, and wall clock, as N grows.
///
/// Sizing knob: `QEC_X23_SMOKE=1` shrinks the N sweep for CI.
pub fn x23_networked_gmw() -> Table {
    use qec_circuit::CompiledBitCircuit;
    use qec_mpc::{
        share_instances, Duplex, Outcome, PackedDealer, Role, Session, TcpTransport, Transport,
    };
    use std::time::Instant;

    let smoke = std::env::var("QEC_X23_SMOKE").is_ok_and(|v| v == "1");
    let mut t = Table::new(
        "X23  Networked GMW: secure triangle counting, one message per AND level, Duplex vs TCP localhost",
        &[
            "transport",
            "N",
            "bit_gates",
            "AND_depth",
            "rounds",
            "KiB_sent",
            "ms",
            "triangles",
        ],
    );

    /// Two `Session`s against each other over an arbitrary transport
    /// pair (P1 on a scoped thread), fed by a split packed dealer.
    fn sessions<T0, T1>(
        eng: &CompiledBitCircuit,
        t0: T0,
        t1: T1,
        s0: &[Vec<bool>],
        s1: &[Vec<bool>],
        seed: u64,
    ) -> (Outcome, Outcome)
    where
        T0: Transport + Send,
        T1: Transport + Send,
    {
        let (d0, d1) = PackedDealer::new(eng.stats().and_ops as usize, 1, seed).split();
        std::thread::scope(|scope| {
            let h = scope.spawn(move || {
                Session::new(eng, Role::P1, t1, d1)
                    .with_words(1)
                    .run(s1)
                    .expect("P1 session")
            });
            let o0 = Session::new(eng, Role::P0, t0, d0)
                .with_words(1)
                .run(s0)
                .expect("P0 session");
            (o0, h.join().expect("P1 thread"))
        })
    }

    let ns: Vec<u64> = if smoke { vec![4] } else { vec![4, 8, 16] };
    for &n in &ns {
        let (rc, _) = triangle_heavy_light(n);
        let lowered = rc.lower(Mode::Build);
        // AGM worst-case data: a √N×√N bipartite grid per relation, so
        // the count being computed securely is a guaranteed-nonzero
        // N^1.5 triangles.
        let (r, s, tt) = qec_relation::agm_worst_case_triangle(Var(0), Var(1), Var(2), n as usize);
        let mut db = qec_relation::Database::new();
        db.insert("R", r);
        db.insert("S", s);
        db.insert("T", tt);
        let expected = lowered.run(&db).expect("plaintext word run");
        let triangles = expected[0].len();
        let word_inputs = lowered.layout.values(&db).expect("layout inputs");
        let bits = lower_with(&lowered.circuit, 8, &CompileOptions::from_env());
        let bit_inputs = bits.pack_inputs(&word_inputs);
        let plain = bits.evaluate(&bit_inputs).expect("plaintext bit run");
        let eng = CompiledBitCircuit::compile_gmw(&bits);
        let and_depth = bits.and_depth() as u64;
        assert_eq!(
            eng.stats().and_levels as u64,
            and_depth,
            "GMW schedule must be round-optimal"
        );
        let (s0v, s1v) = share_instances(std::slice::from_ref(&bit_inputs), 31 + n);

        for transport in ["duplex", "tcp"] {
            let t0i = Instant::now();
            let (o0, o1) = if transport == "duplex" {
                let (a, b) = Duplex::pair();
                sessions(&eng, a, b, &s0v, &s1v, 900 + n)
            } else {
                let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind loopback");
                let addr = listener.local_addr().expect("local addr");
                let conn = std::thread::spawn(move || {
                    TcpTransport::connect(addr, qec_mpc::DEFAULT_TIMEOUT).expect("connect")
                });
                let a = TcpTransport::accept(&listener, qec_mpc::DEFAULT_TIMEOUT).expect("accept");
                let b = conn.join().expect("connect thread");
                sessions(&eng, a, b, &s0v, &s1v, 900 + n)
            };
            let ms = t0i.elapsed().as_secs_f64() * 1e3;
            for o in [&o0, &o1] {
                assert_eq!(
                    o.results[0].as_ref().expect("secure output"),
                    &plain,
                    "secure output must be bit-identical to plaintext"
                );
                assert_eq!(o.stats.rounds, and_depth, "one message per AND level");
            }
            assert_eq!(o0.stats.bytes_sent, o1.stats.bytes_recv);
            t.row(vec![
                transport.into(),
                n.to_string(),
                eng.stats().tape_len.to_string(),
                and_depth.to_string(),
                o0.stats.rounds.to_string(),
                f(o0.stats.bytes_sent as f64 / 1024.0),
                f(ms),
                triangles.to_string(),
            ]);
        }
    }
    t.verdict(format!(
        "every run exchanged exactly AND-depth framed messages (rounds == AND depth, asserted) with bit-identical outputs on both transports; sweep N = {ns:?}, TCP-localhost overhead is the ms delta against the in-process Duplex rows"
    ));
    t
}

/// X24 — Recursive Datalog by bounded-fixpoint unrolling: does online
/// hash-consing actually collapse cross-iteration redundancy, and how
/// far below the flat monomial expansion does the factorised provenance
/// DAG sit? For transitive closure (Boolean) and all-pairs shortest
/// path (min-tropical) at domain `d`, the unrolled circuit is lowered
/// twice — with and without CSE — in `Mode::Count`, and the provenance
/// extraction over a seeded random graph reports DAG nodes vs the
/// number of monomials a flat polynomial would carry (the
/// factorised-vs-flat gap of Berkholz-style bounds).
///
/// Sizing knob: `QEC_X24_SMOKE=1` shrinks the domain sweep for CI.
pub fn x24_datalog_fixpoint() -> Table {
    use qec_datalog::{compile, database, provenance, seminaive, workloads, FixpointBounds};

    let smoke = std::env::var("QEC_X24_SMOKE").is_ok_and(|v| v == "1");
    let domains: &[u64] = if smoke { &[3, 4] } else { &[4, 6, 8] };
    let mut t = Table::new(
        "X24  Recursive Datalog: bounded-fixpoint unrolling, cross-iteration hash-consing, provenance DAG vs flat monomials",
        &[
            "workload",
            "d",
            "rounds",
            "edges",
            "out_tuples",
            "gates_cse",
            "gates_naive",
            "collapse",
            "prov_dag",
            "prov_monomials",
        ],
    );

    let f = |x: f64| format!("{x:.2}");
    for (name, program, weighted) in [
        ("tc", workloads::TRANSITIVE_CLOSURE, false),
        ("sp", workloads::SHORTEST_PATH, true),
    ] {
        let dp = qec_datalog::DatalogProgram::parse(program).expect("workload program parses");
        for &d in domains {
            let m = 2 * d as usize;
            let edges = if weighted {
                workloads::random_weighted_edges(d, m, 6, 0x24 + d)
            } else {
                workloads::random_edges(d, m, 0x24 + d)
            };
            let edge_count = edges.len();
            let db = database(&dp, &[("edge", edges)]).expect("workload instance loads");
            let bounds = FixpointBounds::for_domain(d, m as u64);

            // The same relational circuit, lowered with and without
            // online hash-consing: the gap is exactly the structure the
            // unrolled rounds share.
            let fx = compile(&dp, &bounds).expect("workload compiles");
            let consed = fx.rc.lower(Mode::Count).circuit.size();
            let naive = fx.rc.lower_without_cse(Mode::Count).circuit.size();
            assert!(
                consed < naive,
                "{name} d={d}: consing must collapse cross-iteration redundancy ({consed} vs {naive})"
            );

            // Provenance over the same instance: DAG nodes (factorised)
            // vs the monomial count a flat polynomial would need.
            let reference = seminaive(&dp, &db, bounds.rounds).expect("reference runs");
            let pr = provenance(&dp, &db, bounds.rounds).expect("provenance extracts");
            let roots: Vec<_> = pr.outputs.values().copied().collect();
            let dag = pr.circuit.dag_size(&roots);
            const CAP: u64 = 10_000_000;
            let mut monomials = Some(0u64);
            for &root in &roots {
                monomials = match (monomials, pr.circuit.monomials(root, CAP)) {
                    (Some(a), Some(b)) if a.saturating_add(b) <= CAP => Some(a + b),
                    _ => None,
                };
            }
            t.row(vec![
                name.into(),
                d.to_string(),
                bounds.rounds.to_string(),
                edge_count.to_string(),
                reference.tuples.len().to_string(),
                consed.to_string(),
                naive.to_string(),
                f(naive as f64 / consed as f64),
                dag.to_string(),
                monomials.map_or(format!(">{CAP}"), |m| m.to_string()),
            ]);
        }
    }
    t.verdict(format!(
        "hash-consing collapsed the unrolled rounds on every row (asserted; collapse = gates_naive/gates_cse), and the factorised provenance DAG stays polynomial while flat monomial counts track path enumeration; sweep d = {domains:?}"
    ));
    t
}
