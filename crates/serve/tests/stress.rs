//! Concurrency stress tests for the plan cache: single-flight compile
//! deduplication, lost-insert freedom, and byte-budget LRU eviction
//! under thread contention.
//!
//! The plans here are synthetic (a trivial two-input circuit wrapped in
//! a `CompiledPlan`) because these tests exercise the cache's
//! concurrency contract, not the compiler; the serve-vs-direct differ
//! stage and the server's own tests cover real plans.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::time::Duration;

use qec_circuit::{Builder, CompileOptions, CompiledCircuit, InputLayout, Mode};
use qec_obs::Recorder;
use qec_serve::{CompiledPlan, PlanCache, PlanKey, ServeError};

fn key(i: usize) -> PlanKey {
    PlanKey {
        query: format!("Q(v0) :- R{i}(v0, v1)"),
        dc_sig: format!("|0.1|{i}"),
        n_bucket: 8,
        fixpoint_depth: 0,
    }
}

fn dummy_plan(k: &PlanKey, bytes: usize) -> CompiledPlan {
    let mut b = Builder::without_cse(Mode::Build);
    let x = b.input();
    let y = b.input();
    let s = b.add(x, y);
    let c = b.finish(vec![s]);
    let (engine, _) = CompiledCircuit::compile_with(&c, &CompileOptions::sequential()).unwrap();
    CompiledPlan {
        key: k.clone(),
        engine,
        layout: InputLayout::new(),
        outputs: Vec::new(),
        plan_bytes: bytes,
        compile_ns: 1,
    }
}

/// N threads × M keys, every thread requesting every key: each key must
/// compile exactly once (single-flight), and every caller must receive
/// a working plan (no lost inserts).
#[test]
fn single_flight_compiles_each_key_exactly_once() {
    const THREADS: usize = 8;
    const KEYS: usize = 5;
    let cache = Arc::new(PlanCache::new(0, None, Recorder::disabled()));
    let compiles: Arc<Vec<AtomicU64>> = Arc::new((0..KEYS).map(|_| AtomicU64::new(0)).collect());
    let barrier = Arc::new(Barrier::new(THREADS));
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let cache = cache.clone();
            let compiles = compiles.clone();
            let barrier = barrier.clone();
            std::thread::spawn(move || {
                barrier.wait();
                for i in 0..KEYS {
                    // Stagger the key order per thread so every key sees
                    // genuinely concurrent first arrivals.
                    let i = (i + t) % KEYS;
                    let k = key(i);
                    let (plan, _hit) = cache
                        .get_or_compile(&k, || {
                            compiles[i].fetch_add(1, Ordering::SeqCst);
                            // Hold the flight open long enough for the
                            // other threads to pile up on it.
                            std::thread::sleep(Duration::from_millis(20));
                            Ok(dummy_plan(&k, 100))
                        })
                        .unwrap();
                    assert_eq!(plan.key, k, "caller received the right plan");
                    assert_eq!(plan.engine.evaluate(&[2, 3]).unwrap(), vec![5]);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    for (i, c) in compiles.iter().enumerate() {
        assert_eq!(c.load(Ordering::SeqCst), 1, "key {i} compiled once");
    }
    let stats = cache.stats();
    assert_eq!(stats.misses, KEYS as u64);
    assert_eq!(
        stats.hits + stats.waits + stats.misses,
        (THREADS * KEYS) as u64,
        "every lookup accounted for"
    );
    assert!(stats.waits > 0, "the sleeps force flight rendezvous");
    assert_eq!(stats.entries, KEYS as u64, "no lost inserts");
}

/// A failed compile is broadcast to all concurrent waiters, the entry
/// is removed, and the next request retries (and can succeed).
#[test]
fn failed_compiles_broadcast_and_allow_retry() {
    const THREADS: usize = 6;
    let cache = Arc::new(PlanCache::new(0, None, Recorder::disabled()));
    let attempts = Arc::new(AtomicU64::new(0));
    let barrier = Arc::new(Barrier::new(THREADS));
    let k = key(0);
    let handles: Vec<_> = (0..THREADS)
        .map(|_| {
            let cache = cache.clone();
            let attempts = attempts.clone();
            let barrier = barrier.clone();
            let k = k.clone();
            std::thread::spawn(move || {
                barrier.wait();
                cache.get_or_compile(&k, || {
                    attempts.fetch_add(1, Ordering::SeqCst);
                    std::thread::sleep(Duration::from_millis(10));
                    Err(ServeError::Compile("injected".into()))
                })
            })
        })
        .collect();
    let mut errors = 0;
    for h in handles {
        match h.join().unwrap() {
            Err(ServeError::Compile(msg)) => {
                assert_eq!(msg, "injected");
                errors += 1;
            }
            other => panic!("expected broadcast compile error, got {other:?}"),
        }
    }
    // Everyone who rendezvoused on a flight got its error; threads that
    // arrived after a removal started a fresh flight (also failing).
    assert!(errors == THREADS);
    assert!(attempts.load(Ordering::SeqCst) >= 1);
    // The key is retryable and a successful compile now sticks.
    let (plan, hit) = cache.get_or_compile(&k, || Ok(dummy_plan(&k, 50))).unwrap();
    assert!(!hit);
    assert_eq!(plan.plan_bytes, 50);
    assert_eq!(cache.stats().entries, 1);
}

/// LRU eviction respects the byte budget: inserting past the budget
/// evicts the least-recently-used entries, never the newest insert,
/// and the resident-byte accounting stays exact.
#[test]
fn lru_eviction_respects_byte_budget() {
    // Budget fits exactly two 100-byte plans.
    let cache = PlanCache::new(200, None, Recorder::disabled());
    for i in 0..3 {
        let k = key(i);
        cache
            .get_or_compile(&k, || Ok(dummy_plan(&k, 100)))
            .unwrap();
    }
    let stats = cache.stats();
    assert_eq!(stats.evictions, 1);
    assert_eq!(stats.entries, 2);
    assert_eq!(stats.used_bytes, 200);
    // Key 0 was the oldest: it recompiles; key 2 (newest) is resident.
    let (_, hit2) = cache
        .get_or_compile(&key(2), || panic!("key 2 must be resident"))
        .unwrap();
    assert!(hit2);
    let recompiled = AtomicU64::new(0);
    let k0 = key(0);
    cache
        .get_or_compile(&k0, || {
            recompiled.fetch_add(1, Ordering::SeqCst);
            Ok(dummy_plan(&k0, 100))
        })
        .unwrap();
    assert_eq!(recompiled.load(Ordering::SeqCst), 1, "key 0 was evicted");

    // Touch order decides the victim: after touching key 2, inserting a
    // new plan evicts key 0 (stale) rather than key 2.
    cache
        .get_or_compile(&key(2), || panic!("key 2 still resident"))
        .unwrap();
    let k3 = key(3);
    cache
        .get_or_compile(&k3, || Ok(dummy_plan(&k3, 100)))
        .unwrap();
    let (_, hit2) = cache
        .get_or_compile(&key(2), || panic!("recently-touched key survives"))
        .unwrap();
    assert!(hit2);
    assert!(cache.stats().used_bytes <= 200, "budget holds");
}

/// An oversized plan (bigger than the whole budget) is admitted —
/// the just-inserted key is protected — but evicts everything else.
#[test]
fn oversized_plan_does_not_thrash_itself() {
    let cache = PlanCache::new(150, None, Recorder::disabled());
    let k0 = key(0);
    cache
        .get_or_compile(&k0, || Ok(dummy_plan(&k0, 100)))
        .unwrap();
    let big = key(1);
    let (plan, _) = cache
        .get_or_compile(&big, || Ok(dummy_plan(&big, 400)))
        .unwrap();
    assert_eq!(plan.plan_bytes, 400);
    let stats = cache.stats();
    assert_eq!(stats.entries, 1, "only the oversized plan remains");
    assert_eq!(stats.used_bytes, 400);
    // And it is servable.
    let (_, hit) = cache
        .get_or_compile(&big, || panic!("oversized plan resident"))
        .unwrap();
    assert!(hit);
}

/// Concurrent inserts under a tight budget: accounting never leaks
/// (used_bytes equals the sum of resident plans when the dust settles).
#[test]
fn concurrent_eviction_keeps_accounting_exact() {
    const THREADS: usize = 4;
    const KEYS: usize = 12;
    let cache = Arc::new(PlanCache::new(300, None, Recorder::disabled()));
    let barrier = Arc::new(Barrier::new(THREADS));
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let cache = cache.clone();
            let barrier = barrier.clone();
            std::thread::spawn(move || {
                barrier.wait();
                for i in 0..KEYS {
                    let i = (i * (t + 1)) % KEYS;
                    let k = key(i);
                    let _ = cache.get_or_compile(&k, || Ok(dummy_plan(&k, 100)));
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let stats = cache.stats();
    assert!(stats.used_bytes <= 300, "budget respected: {stats:?}");
    assert_eq!(
        stats.used_bytes,
        stats.entries * 100,
        "resident bytes match resident entries: {stats:?}"
    );
    assert!(stats.evictions > 0);
}
