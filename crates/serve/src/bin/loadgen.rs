//! Closed- and open-loop load generator for the serving layer.
//!
//! Simulates N concurrent clients firing single-query requests at a
//! [`qec_serve::Server`] and reports p50/p99 latency and throughput.
//!
//! ```text
//! cargo run --release -p qec-serve --bin loadgen -- \
//!     --clients 1000 --requests 20 --mode closed --n 32
//! ```
//!
//! * `--mode closed` — every client waits for its response before
//!   sending the next request (concurrency = clients).
//! * `--mode open` — every client submits its whole schedule up front
//!   and then collects tickets (tests queue backpressure).
//! * `--no-coalesce` — batch-size-1 serving, the A/B baseline.
//! * `--cold` — zero cache budget on a per-request key-salted query
//!   stream is not simulatable here; instead `--cold` restarts with an
//!   empty cache (first request pays the compile).

use std::sync::Arc;
use std::time::{Duration, Instant};

use qec_serve::{Request, Server, ServerConfig};

struct Args {
    clients: usize,
    requests: usize,
    open_loop: bool,
    coalesce: bool,
    n: u64,
    flush_us: u64,
    queue_capacity: usize,
}

impl Args {
    fn parse() -> Args {
        let mut args = Args {
            clients: 64,
            requests: 32,
            open_loop: false,
            coalesce: true,
            n: 32,
            flush_us: 500,
            queue_capacity: 65_536,
        };
        let mut it = std::env::args().skip(1);
        while let Some(flag) = it.next() {
            let val = |it: &mut dyn Iterator<Item = String>| {
                it.next().unwrap_or_else(|| panic!("{flag} needs a value"))
            };
            match flag.as_str() {
                "--clients" => args.clients = val(&mut it).parse().expect("usize"),
                "--requests" => args.requests = val(&mut it).parse().expect("usize"),
                "--mode" => args.open_loop = val(&mut it) == "open",
                "--no-coalesce" => args.coalesce = false,
                "--n" => args.n = val(&mut it).parse().expect("u64"),
                "--flush-us" => args.flush_us = val(&mut it).parse().expect("u64"),
                "--queue" => args.queue_capacity = val(&mut it).parse().expect("usize"),
                other => panic!("unknown flag {other}"),
            }
        }
        args
    }
}

/// The standard workload: the triangle query over pseudo-random
/// relations, varied per client so responses differ.
fn request(client: usize, n: u64) -> Request {
    let seed = client as u64 * 1_000_003 + 17;
    let rows = |salt: u64| -> Vec<Vec<u64>> {
        (0..n)
            .map(|i| {
                vec![
                    (i * 7 + seed + salt) % n,
                    (i * 13 + seed + 2 * salt + 1) % n,
                ]
            })
            .collect()
    };
    Request {
        tenant: format!("client-{}", client % 16),
        query: "Q(a, b, c) :- R(a, b), S(b, c), T(a, c)".into(),
        n,
        rels: vec![
            ("R".into(), rows(1)),
            ("S".into(), rows(2)),
            ("T".into(), rows(3)),
        ],
    }
}

fn percentile(sorted: &[Duration], p: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

fn main() {
    let args = Args::parse();
    let server = Arc::new(Server::start(ServerConfig {
        queue_capacity: args.queue_capacity,
        flush: Duration::from_micros(args.flush_us),
        coalesce: args.coalesce,
        ..ServerConfig::default()
    }));

    // Pay the one compile up front so the measured section is the
    // serving path (use `--requests 1 --clients 1` to see cold cost).
    let warm = Instant::now();
    server.query(request(0, args.n)).expect("warmup");
    eprintln!("warmup (compile) took {:?}", warm.elapsed());

    let t0 = Instant::now();
    let handles: Vec<_> = (0..args.clients)
        .map(|c| {
            let server = server.clone();
            let (requests, n, open) = (args.requests, args.n, args.open_loop);
            std::thread::spawn(move || {
                let mut lat: Vec<Duration> = Vec::with_capacity(requests);
                let mut rejected = 0usize;
                if open {
                    let t = Instant::now();
                    let tickets: Vec<_> = (0..requests)
                        .map(|_| server.submit(request(c, n)))
                        .collect();
                    for ticket in tickets {
                        match ticket {
                            Ok(t) => {
                                t.wait().expect("response");
                            }
                            Err(_) => rejected += 1,
                        }
                    }
                    lat.push(t.elapsed());
                } else {
                    for _ in 0..requests {
                        let t = Instant::now();
                        match server.query(request(c, n)) {
                            Ok(_) => lat.push(t.elapsed()),
                            Err(_) => rejected += 1,
                        }
                    }
                }
                (lat, rejected)
            })
        })
        .collect();
    let mut latencies = Vec::new();
    let mut rejected = 0;
    for h in handles {
        let (lat, rej) = h.join().unwrap();
        latencies.extend(lat);
        rejected += rej;
    }
    let wall = t0.elapsed();
    latencies.sort();
    let total = args.clients * args.requests;
    let stats = server.cache_stats();
    println!(
        "mode={} coalesce={} clients={} requests={} n={}",
        if args.open_loop { "open" } else { "closed" },
        args.coalesce,
        args.clients,
        args.requests,
        args.n
    );
    println!(
        "served={} rejected={} wall={:?} qps={:.0}",
        total - rejected,
        rejected,
        wall,
        (total - rejected) as f64 / wall.as_secs_f64()
    );
    println!(
        "p50={:?} p99={:?} max={:?}",
        percentile(&latencies, 0.50),
        percentile(&latencies, 0.99),
        percentile(&latencies, 1.0)
    );
    println!(
        "cache: hits={} waits={} misses={} evictions={}",
        stats.hits, stats.waits, stats.misses, stats.evictions
    );
}
