//! The compiled-plan cache: sharded, single-flight, LRU-bounded, and
//! optionally persistent.
//!
//! Layout: [`SHARDS`] independent `Mutex<HashMap>` shards selected by a
//! stable FNV hash of the key, so concurrent requests for different
//! plans contend only when they collide on a shard. Each entry is
//! either `Ready` (an `Arc`ed plan plus an LRU tick) or `Building` (a
//! *flight* — see below). All locks are held only for map surgery;
//! compilation, the expensive part, always runs unlocked.
//!
//! **Single-flight.** The first thread to miss on a key installs a
//! `Building` entry and compiles; every other thread that arrives
//! meanwhile blocks on the flight's condvar and receives the same
//! `Arc<CompiledPlan>` (or the same error — failures are broadcast,
//! and the entry is removed so a later request can retry). N
//! concurrent misses on one key therefore cost exactly one compile,
//! which is what makes a cold cache survivable at high concurrency.
//!
//! **Eviction.** Ready entries carry the tick of their last use; when
//! the byte budget (sum of tape sizes) is exceeded after an insert, the
//! globally least-recently-used entry is evicted — scanning one shard
//! at a time, never holding two shard locks — until the cache fits.
//! The just-inserted key is protected so a plan larger than everything
//! else cannot evict itself.
//!
//! **Persistence.** With a persist directory configured, every
//! compiled plan is written through as `<fnv64>.wtape` (the existing
//! `WordTape` container) plus a `<fnv64>.plan` meta file carrying the
//! key, layout, and output metadata. [`PlanCache::warm_start`] reloads
//! them, paying tape-decode + register allocation but skipping
//! parse/plan/lower — the compile-once, load-many path.

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

use qec_circuit::{CompileOptions, CompiledCircuit, InputLayout, WordTape};
use qec_obs::Recorder;
use qec_relation::Var;

use crate::{PlanKey, ServeError};

/// Number of independent shards (must be a power of two).
pub const SHARDS: usize = 16;

/// A compiled, reusable plan: the engine plus the metadata needed to
/// bind a request's relations and decode its outputs. Shared as
/// `Arc<CompiledPlan>` (the engine is not cloneable and does not need
/// to be).
pub struct CompiledPlan {
    /// The key this plan was compiled under.
    pub key: PlanKey,
    /// The evaluation engine.
    pub engine: CompiledCircuit,
    /// Input layout (relation slots in circuit-input order).
    pub layout: InputLayout,
    /// Output metadata: `(schema, start, len)` into the raw outputs.
    pub outputs: Vec<(Vec<Var>, usize, usize)>,
    /// Size charged against the cache byte budget (serialized tape
    /// bytes — a stable, structure-proportional measure).
    pub plan_bytes: usize,
    /// Wall nanoseconds the compile took (0 for warm-started plans).
    pub compile_ns: u64,
}

impl std::fmt::Debug for CompiledPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CompiledPlan")
            .field("key", &self.key)
            .field("plan_bytes", &self.plan_bytes)
            .field("compile_ns", &self.compile_ns)
            .finish_non_exhaustive()
    }
}

/// Counters describing cache behavior since construction.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served by a ready entry.
    pub hits: u64,
    /// Lookups that compiled (one per single-flight group).
    pub misses: u64,
    /// Lookups that blocked on another thread's in-progress compile.
    pub waits: u64,
    /// Entries evicted by the byte budget.
    pub evictions: u64,
    /// Bytes currently resident.
    pub used_bytes: u64,
    /// Ready entries currently resident.
    pub entries: u64,
}

/// One in-progress compile that concurrent misses rendezvous on.
struct Flight {
    slot: Mutex<Option<Result<Arc<CompiledPlan>, ServeError>>>,
    cv: Condvar,
}

impl Flight {
    fn new() -> Flight {
        Flight {
            slot: Mutex::new(None),
            cv: Condvar::new(),
        }
    }

    fn fulfill(&self, result: Result<Arc<CompiledPlan>, ServeError>) {
        *self.slot.lock().unwrap() = Some(result);
        self.cv.notify_all();
    }

    fn wait(&self) -> Result<Arc<CompiledPlan>, ServeError> {
        let mut slot = self.slot.lock().unwrap();
        while slot.is_none() {
            slot = self.cv.wait(slot).unwrap();
        }
        slot.as_ref().unwrap().clone()
    }
}

enum Entry {
    Ready {
        plan: Arc<CompiledPlan>,
        last_use: u64,
    },
    Building(Arc<Flight>),
}

/// The sharded single-flight LRU plan cache.
pub struct PlanCache {
    shards: Vec<Mutex<HashMap<PlanKey, Entry>>>,
    /// Byte budget for ready entries; 0 disables eviction.
    budget: usize,
    /// Monotonic LRU clock.
    tick: AtomicU64,
    used: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    waits: AtomicU64,
    evictions: AtomicU64,
    persist_dir: Option<PathBuf>,
    recorder: Recorder,
}

impl PlanCache {
    /// A cache with the given byte budget (0 = unlimited), optional
    /// persistence directory (created on demand), and observability
    /// sink (`serve.cache.{hit,miss,wait,evict}` counters and a
    /// `serve.cache.bytes` gauge).
    pub fn new(budget: usize, persist_dir: Option<PathBuf>, recorder: Recorder) -> PlanCache {
        PlanCache {
            shards: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
            budget,
            tick: AtomicU64::new(0),
            used: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            waits: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            persist_dir,
            recorder,
        }
    }

    fn shard(&self, key: &PlanKey) -> &Mutex<HashMap<PlanKey, Entry>> {
        &self.shards[(key.fnv64() as usize) & (SHARDS - 1)]
    }

    fn next_tick(&self) -> u64 {
        self.tick.fetch_add(1, Ordering::Relaxed)
    }

    /// Returns the plan for `key`, compiling it with `build` exactly
    /// once across all concurrent callers. The second return is `true`
    /// when no compile ran for this caller (ready hit or single-flight
    /// wait). `build` runs with no locks held.
    ///
    /// A failed build is broadcast to every waiter and the entry is
    /// removed, so a subsequent request retries the compile.
    pub fn get_or_compile<F>(
        &self,
        key: &PlanKey,
        build: F,
    ) -> Result<(Arc<CompiledPlan>, bool), ServeError>
    where
        F: FnOnce() -> Result<CompiledPlan, ServeError>,
    {
        // Decide under the shard lock: hit, wait, or become the builder.
        enum Action {
            Wait(Arc<Flight>),
            Build(Arc<Flight>),
        }
        let action = {
            let mut map = self.shard(key).lock().unwrap();
            match map.get_mut(key) {
                Some(Entry::Ready { plan, last_use }) => {
                    *last_use = self.next_tick();
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    self.recorder.add("serve.cache.hit", 1);
                    return Ok((plan.clone(), true));
                }
                Some(Entry::Building(flight)) => Action::Wait(flight.clone()),
                None => {
                    let flight = Arc::new(Flight::new());
                    map.insert(key.clone(), Entry::Building(flight.clone()));
                    Action::Build(flight)
                }
            }
        };

        match action {
            Action::Wait(flight) => {
                self.waits.fetch_add(1, Ordering::Relaxed);
                self.recorder.add("serve.cache.wait", 1);
                self.recorder.add("serve.cache.hit", 1);
                flight.wait().map(|plan| (plan, true))
            }
            Action::Build(flight) => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                self.recorder.add("serve.cache.miss", 1);
                match build() {
                    Ok(plan) => {
                        let plan = Arc::new(plan);
                        let bytes = plan.plan_bytes as u64;
                        {
                            let mut map = self.shard(key).lock().unwrap();
                            map.insert(
                                key.clone(),
                                Entry::Ready {
                                    plan: plan.clone(),
                                    last_use: self.next_tick(),
                                },
                            );
                        }
                        self.used.fetch_add(bytes, Ordering::Relaxed);
                        flight.fulfill(Ok(plan.clone()));
                        self.evict(key);
                        self.recorder
                            .gauge_set("serve.cache.bytes", self.used.load(Ordering::Relaxed));
                        Ok((plan, false))
                    }
                    Err(e) => {
                        {
                            let mut map = self.shard(key).lock().unwrap();
                            // Remove only our own Building entry; a
                            // replacement inserted meanwhile stays.
                            if matches!(map.get(key), Some(Entry::Building(f)) if Arc::ptr_eq(f, &flight))
                            {
                                map.remove(key);
                            }
                        }
                        flight.fulfill(Err(e.clone()));
                        Err(e)
                    }
                }
            }
        }
    }

    /// Evicts least-recently-used ready entries until the byte budget
    /// is respected. `protect` (the key just inserted) is never
    /// evicted, so one oversized plan cannot thrash itself. Holds at
    /// most one shard lock at a time.
    fn evict(&self, protect: &PlanKey) {
        if self.budget == 0 {
            return;
        }
        while self.used.load(Ordering::Relaxed) > self.budget as u64 {
            // Find the globally oldest ready entry.
            let mut victim: Option<(usize, PlanKey, u64)> = None;
            for (si, shard) in self.shards.iter().enumerate() {
                let map = shard.lock().unwrap();
                for (k, e) in map.iter() {
                    if let Entry::Ready { last_use, .. } = e {
                        if k != protect && victim.as_ref().is_none_or(|v| *last_use < v.2) {
                            victim = Some((si, k.clone(), *last_use));
                        }
                    }
                }
            }
            let Some((si, k, tick)) = victim else {
                return; // nothing evictable (only the protected entry)
            };
            let mut map = self.shards[si].lock().unwrap();
            // Re-check under the lock: the entry may have been touched
            // or replaced since the scan.
            let still_oldest = matches!(
                map.get(&k),
                Some(Entry::Ready { last_use, .. }) if *last_use == tick
            );
            if still_oldest {
                if let Some(Entry::Ready { plan, .. }) = map.remove(&k) {
                    self.used
                        .fetch_sub(plan.plan_bytes as u64, Ordering::Relaxed);
                    self.evictions.fetch_add(1, Ordering::Relaxed);
                    self.recorder.add("serve.cache.evict", 1);
                }
            }
            // If it was touched meanwhile, loop and pick a new victim.
        }
    }

    /// Current counters.
    pub fn stats(&self) -> CacheStats {
        let mut entries = 0u64;
        for shard in &self.shards {
            let map = shard.lock().unwrap();
            entries += map
                .values()
                .filter(|e| matches!(e, Entry::Ready { .. }))
                .count() as u64;
        }
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            waits: self.waits.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            used_bytes: self.used.load(Ordering::Relaxed),
            entries,
        }
    }

    // ------------------------------------------------------------------
    // Persistence
    // ------------------------------------------------------------------

    /// Writes a plan's tape + meta to the persist directory (no-op
    /// without one). Called by the server on every fresh compile;
    /// eviction does *not* delete persisted files — disk is the warm
    /// tier the next process starts from.
    pub fn persist(&self, plan: &CompiledPlan, tape: &WordTape) -> Result<(), ServeError> {
        let Some(dir) = &self.persist_dir else {
            return Ok(());
        };
        std::fs::create_dir_all(dir).map_err(|e| ServeError::Persist(e.to_string()))?;
        let stem = format!("{:016x}", plan.key.fnv64());
        tape.save(dir.join(format!("{stem}.wtape")))
            .map_err(|e| ServeError::Persist(e.to_string()))?;
        let mut meta = String::new();
        meta.push_str("qec-plan v1\n");
        meta.push_str(&format!("query {}\n", plan.key.query));
        meta.push_str(&format!("dcsig {}\n", plan.key.dc_sig));
        meta.push_str(&format!("nbucket {}\n", plan.key.n_bucket));
        meta.push_str(&format!("depth {}\n", plan.key.fixpoint_depth));
        for (name, schema, cap) in plan.layout.entries() {
            let vars: Vec<String> = schema.iter().map(|v| v.index().to_string()).collect();
            meta.push_str(&format!("layout {name} {cap} {}\n", vars.join(",")));
        }
        for (schema, start, len) in &plan.outputs {
            let vars: Vec<String> = schema.iter().map(|v| v.index().to_string()).collect();
            // `-` marks an empty (Boolean) schema: the field must be
            // present for the line to parse.
            let field = if vars.is_empty() {
                "-".to_string()
            } else {
                vars.join(",")
            };
            meta.push_str(&format!("output {start} {len} {field}\n"));
        }
        std::fs::write(dir.join(format!("{stem}.plan")), meta)
            .map_err(|e| ServeError::Persist(e.to_string()))
    }

    /// Loads every persisted plan from the persist directory, compiling
    /// tapes under `opts`. Returns the number of plans loaded. Corrupt
    /// or unreadable entries are skipped (a warm start must never be
    /// worse than a cold one).
    pub fn warm_start(&self, opts: &CompileOptions) -> usize {
        let Some(dir) = self.persist_dir.clone() else {
            return 0;
        };
        let Ok(read) = std::fs::read_dir(&dir) else {
            return 0;
        };
        let mut loaded = 0;
        for entry in read.flatten() {
            let path = entry.path();
            if path.extension().and_then(|e| e.to_str()) != Some("plan") {
                continue;
            }
            let Ok(meta) = std::fs::read_to_string(&path) else {
                continue;
            };
            let Some(plan) = parse_meta(&meta) else {
                continue;
            };
            let tape_path = path.with_extension("wtape");
            let Ok(tape) = WordTape::load(&tape_path) else {
                continue;
            };
            let Ok((engine, _report)) = CompiledCircuit::compile_tape_with(&tape, opts) else {
                continue;
            };
            let plan_bytes = tape.to_bytes().len();
            let key = plan.key.clone();
            let compiled = Arc::new(CompiledPlan {
                key: key.clone(),
                engine,
                layout: plan.layout,
                outputs: plan.outputs,
                plan_bytes,
                compile_ns: 0,
            });
            let mut map = self.shard(&key).lock().unwrap();
            if !map.contains_key(&key) {
                map.insert(
                    key.clone(),
                    Entry::Ready {
                        plan: compiled,
                        last_use: self.next_tick(),
                    },
                );
                drop(map);
                self.used.fetch_add(plan_bytes as u64, Ordering::Relaxed);
                self.evict(&key);
                loaded += 1;
            }
        }
        self.recorder.add("serve.cache.warm_loaded", loaded as u64);
        loaded
    }
}

/// Parsed meta file: the key plus layout/output metadata (no engine).
struct PlanMeta {
    key: PlanKey,
    layout: InputLayout,
    outputs: Vec<(Vec<Var>, usize, usize)>,
}

fn parse_meta(meta: &str) -> Option<PlanMeta> {
    let mut lines = meta.lines();
    if lines.next()? != "qec-plan v1" {
        return None;
    }
    let mut query = None;
    let mut dc_sig = None;
    let mut n_bucket = None;
    // Absent in metas written before Datalog plans existed: a plain CQ.
    let mut fixpoint_depth = 0;
    let mut layout = Vec::new();
    let mut outputs = Vec::new();
    for line in lines {
        let (tag, rest) = line.split_once(' ')?;
        match tag {
            "query" => query = Some(rest.to_string()),
            "dcsig" => dc_sig = Some(rest.to_string()),
            "nbucket" => n_bucket = Some(rest.parse::<u64>().ok()?),
            "depth" => fixpoint_depth = rest.parse::<u64>().ok()?,
            "layout" => {
                let mut parts = rest.splitn(3, ' ');
                let name = parts.next()?.to_string();
                let cap = parts.next()?.parse::<usize>().ok()?;
                let vars = parse_vars(parts.next()?)?;
                layout.push((name, vars, cap));
            }
            "output" => {
                let mut parts = rest.splitn(3, ' ');
                let start = parts.next()?.parse::<usize>().ok()?;
                let len = parts.next()?.parse::<usize>().ok()?;
                let vars = parse_vars(parts.next()?)?;
                outputs.push((vars, start, len));
            }
            _ => return None,
        }
    }
    Some(PlanMeta {
        key: PlanKey {
            query: query?,
            dc_sig: dc_sig?,
            n_bucket: n_bucket?,
            fixpoint_depth,
        },
        layout: InputLayout::from_entries(layout),
        outputs,
    })
}

fn parse_vars(field: &str) -> Option<Vec<Var>> {
    if field == "-" || field.is_empty() {
        return Some(Vec::new());
    }
    field
        .split(',')
        .map(|s| s.parse::<u32>().ok().map(Var))
        .collect()
}
