//! The serving layer: a compiled-plan cache plus a continuous request
//! batcher, so the engine's batch throughput reaches single-query
//! clients.
//!
//! The engine below this crate is built for batches — SoA lanes pay off
//! from batch 8 and a compiled circuit is oblivious, so every instance
//! of the same (query, constraints, capacity) class runs the identical
//! instruction tape. But a *service* receives single queries from many
//! independent clients, each of which would naively pay the full
//! compile (seconds-to-minutes, BENCH_X18) and then evaluate alone.
//! This crate closes that gap with two mechanisms:
//!
//! * **A plan cache** ([`PlanCache`]): a sharded concurrent map from
//!   [`PlanKey`] — `(canonical CQ, degree-constraint signature,
//!   capacity bucket)` — to [`CompiledPlan`]s. Concurrent misses on one
//!   key are *single-flighted*: the first arrival compiles, the rest
//!   block on the same flight and share the result. Entries are evicted
//!   least-recently-used under a byte budget, and compiled tapes can be
//!   persisted via `WordTape::save` for warm starts.
//!
//! * **An admission/batching layer** ([`Server`]): requests enter a
//!   bounded queue (overflow is a typed [`ServeError::Overloaded`],
//!   never a silent drop; per-tenant in-flight quotas are enforced at
//!   admission) and worker threads coalesce queued requests against the
//!   same plan into one engine batch, flushing on batch-full or a
//!   deadline — continuous batching, in the style of modern inference
//!   servers.
//!
//! Everything is observable through `qec-obs`: cache hit/miss/evict
//! counters, batch-occupancy and queue-depth gauges, and a
//! compile-vs-evaluate span split.

mod cache;
mod key;
mod server;

pub use cache::{CacheStats, CompiledPlan, PlanCache};
pub use key::{bucket_n, canonical_dcs, dc_signature, PlanKey};
pub use server::{Request, Response, Server, ServerConfig, Ticket};

use std::fmt;

/// Typed serving errors. `Clone` because a failed single-flight compile
/// is broadcast to every request waiting on the flight.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ServeError {
    /// The admission queue is full; the request was rejected, not
    /// dropped. Clients should back off and retry.
    Overloaded {
        /// Queue depth observed at rejection.
        queue_depth: usize,
    },
    /// The tenant exceeded its in-flight request quota.
    QuotaExceeded {
        /// The tenant.
        tenant: String,
        /// Requests currently in flight for the tenant.
        in_flight: usize,
        /// The configured quota.
        quota: usize,
    },
    /// The request's query failed to parse.
    Parse(String),
    /// Plan compilation failed (rendered `CompileError`/`EvalError`).
    Compile(String),
    /// The request's relations do not fit the plan's input layout
    /// (missing relation, schema mismatch, or capacity overflow).
    Layout(String),
    /// Evaluation failed (e.g. a data value collided with the reserved
    /// dummy encoding).
    Eval(String),
    /// Plan persistence (save/load) failed.
    Persist(String),
    /// The server is shutting down and dropped the request.
    ShuttingDown,
    /// The caller's deadline passed before the response arrived
    /// ([`Ticket::wait_deadline`] / [`Server::query_timeout`]). The
    /// request itself keeps running to completion server-side; only
    /// the wait is abandoned.
    Deadline {
        /// How long the caller waited.
        waited: std::time::Duration,
    },
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Overloaded { queue_depth } => {
                write!(f, "admission queue full (depth {queue_depth}); retry later")
            }
            ServeError::QuotaExceeded {
                tenant,
                in_flight,
                quota,
            } => write!(
                f,
                "tenant {tenant} has {in_flight} requests in flight (quota {quota})"
            ),
            ServeError::Parse(msg) => write!(f, "query parse error: {msg}"),
            ServeError::Compile(msg) => write!(f, "plan compilation failed: {msg}"),
            ServeError::Layout(msg) => write!(f, "request does not fit plan layout: {msg}"),
            ServeError::Eval(msg) => write!(f, "evaluation failed: {msg}"),
            ServeError::Persist(msg) => write!(f, "plan persistence failed: {msg}"),
            ServeError::ShuttingDown => write!(f, "server is shutting down"),
            ServeError::Deadline { waited } => {
                write!(f, "deadline passed after waiting {waited:?}")
            }
        }
    }
}

impl std::error::Error for ServeError {}
