//! Plan-cache keys: what must match for two requests to share one
//! compiled circuit.
//!
//! A compiled circuit is reusable for a request exactly when three
//! things agree:
//!
//! 1. **The query, up to alpha-equivalence.** Variable names and atom
//!    order are spelling, not semantics; [`qec_query::canonicalize`]
//!    collapses them, and the key stores the canonical text.
//! 2. **The degree-constraint signature.** The circuit's shape is a
//!    function of the constraints it was compiled under, so the key
//!    carries a canonical rendering of the (canonicalized, bucketed)
//!    constraint set.
//! 3. **The capacity bucket.** A circuit compiled for capacity `B`
//!    evaluates any instance with `≤ B` tuples per relation — the input
//!    encoding pads unused slots with dummies and the decoded relation
//!    is identical (set semantics). Rounding the requested cardinality
//!    up to the next power of two trades at most 2× circuit size for a
//!    logarithmic number of distinct cache entries per query.

use qec_query::CanonicalCq;
use qec_relation::{DcSet, DegreeConstraint};

/// A plan-cache key. Two requests with equal keys are served by the
/// same compiled circuit.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct PlanKey {
    /// Canonical query text ([`CanonicalCq::text`] for conjunctive
    /// queries, [`qec_query::Program::canonical_text`] for Datalog
    /// programs).
    pub query: String,
    /// Canonical degree-constraint signature ([`dc_signature`]; empty
    /// for Datalog programs, whose capacities are a function of the
    /// depth alone).
    pub dc_sig: String,
    /// Capacity bucket ([`bucket_n`]).
    pub n_bucket: u64,
    /// Bounded-fixpoint unrolling depth for recursive Datalog plans;
    /// `0` marks a plain conjunctive query. Two Datalog requests share
    /// a circuit only at equal depth — the unrolling is part of the
    /// netlist, not of the input encoding.
    pub fixpoint_depth: u64,
}

impl PlanKey {
    /// Stable 64-bit FNV-1a hash of the key — used for shard selection
    /// and persisted-plan file names (stable across processes, unlike
    /// `DefaultHasher`).
    pub fn fnv64(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        };
        eat(self.query.as_bytes());
        eat(&[0xff]);
        eat(self.dc_sig.as_bytes());
        eat(&[0xff]);
        eat(&self.n_bucket.to_le_bytes());
        eat(&self.fixpoint_depth.to_le_bytes());
        h
    }
}

/// Rounds a requested per-relation cardinality up to its cache bucket
/// (next power of two, minimum 1).
pub fn bucket_n(n: u64) -> u64 {
    n.max(1).next_power_of_two()
}

/// Maps a constraint set into canonical variable space. `DcSet`
/// construction re-sorts and dedups, so the result is deterministic
/// regardless of input order.
pub fn canonical_dcs(dcs: &DcSet, canon: &CanonicalCq) -> DcSet {
    DcSet::from_vec(
        dcs.iter()
            .map(|dc| DegreeConstraint {
                on: canon.map_set(dc.on),
                of: canon.map_set(dc.of),
                bound: dc.bound,
            })
            .collect(),
    )
}

/// Canonical single-line rendering of a constraint set. `DcSet` stores
/// constraints sorted with tightest-bound dedup, so equal sets render
/// equally; the rendering contains no spaces (it is embedded in the
/// persisted-plan meta format, which is line- and space-delimited).
pub fn dc_signature(dcs: &DcSet) -> String {
    let mut out = String::new();
    for (i, dc) in dcs.iter().enumerate() {
        if i > 0 {
            out.push(';');
        }
        let ids = |s: qec_relation::VarSet| {
            s.iter()
                .map(|v| v.index().to_string())
                .collect::<Vec<_>>()
                .join(".")
        };
        out.push_str(&format!("{}|{}|{}", ids(dc.on), ids(dc.of), dc.bound));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use qec_query::{canonicalize, parse_cq};
    use qec_relation::{Var, VarSet};

    fn vs(bits: &[u32]) -> VarSet {
        bits.iter().map(|&i| Var(i)).collect()
    }

    #[test]
    fn buckets_are_powers_of_two() {
        assert_eq!(bucket_n(0), 1);
        assert_eq!(bucket_n(1), 1);
        assert_eq!(bucket_n(5), 8);
        assert_eq!(bucket_n(8), 8);
        assert_eq!(bucket_n(9), 16);
    }

    #[test]
    fn alpha_variants_share_a_key() {
        let mk = |src: &str| {
            let cq = parse_cq(src).unwrap();
            let canon = canonicalize(&cq);
            let dcs = DcSet::from_vec(
                canon
                    .cq
                    .atoms
                    .iter()
                    .map(|a| DegreeConstraint::cardinality(a.vars, 8))
                    .collect(),
            );
            PlanKey {
                query: canon.text.clone(),
                dc_sig: dc_signature(&dcs),
                n_bucket: 8,
                fixpoint_depth: 0,
            }
        };
        let a = mk("Q(x, z) :- R(x, y), S(y, z)");
        let b = mk("Q(p, q) :- S(m, q), R(p, m)");
        assert_eq!(a, b);
        assert_eq!(a.fnv64(), b.fnv64());
        let c = mk("Q(x, z) :- R(x, y), T(y, z)");
        assert_ne!(a, c);
        // Depth is part of the key: the same program unrolled to a
        // different bound is a different circuit.
        let mut d4 = mk("Q(x, z) :- R(x, y), S(y, z)");
        d4.fixpoint_depth = 4;
        assert_ne!(a, d4);
        assert_ne!(a.fnv64(), d4.fnv64());
    }

    #[test]
    fn signature_is_order_insensitive() {
        let d1 = DcSet::from_vec(vec![
            DegreeConstraint::cardinality(vs(&[0, 1]), 8),
            DegreeConstraint::cardinality(vs(&[1, 2]), 8),
        ]);
        let d2 = DcSet::from_vec(vec![
            DegreeConstraint::cardinality(vs(&[1, 2]), 8),
            DegreeConstraint::cardinality(vs(&[0, 1]), 8),
        ]);
        assert_eq!(dc_signature(&d1), dc_signature(&d2));
        assert!(!dc_signature(&d1).contains(' '));
    }
}
