//! The admission/batching layer: a bounded queue, worker threads, and
//! coalescing of same-plan requests into engine batches.
//!
//! Life of a request:
//!
//! 1. **Admission** ([`Server::submit`], cheap, caller's thread): parse
//!    the query, canonicalize it, translate the request's relations
//!    into canonical variable space, derive the [`PlanKey`]. Tenant
//!    quota and queue capacity are enforced here — an over-quota or
//!    over-capacity request fails with a typed error immediately
//!    instead of occupying queue space.
//! 2. **Batching** (worker thread): a worker pops the oldest job, then
//!    — in coalescing mode — drains every queued job with the *same
//!    key* and keeps the batch open until either `max_batch` jobs have
//!    joined or the flush deadline (first job's enqueue time +
//!    `flush`) passes, picking up newcomers as they arrive. This is
//!    continuous batching: a lone request waits at most `flush`, a
//!    busy key fills whole batches.
//! 3. **Evaluation**: one [`PlanCache::get_or_compile`] (single-flight
//!    compile on cold keys), one `evaluate_batch` over the batch's
//!    instances, per-job decode back to the request's variable space.
//!
//! Worker count defaults to the `qec-par` pool width (`QEC_THREADS`).
//! Workers are plain `std::thread`s rather than pool regions because
//! they live as long as the server, not as long as a call — the
//! region-scoped pool is still what sizes them and what the compile
//! pipeline parallelizes on.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use qec_circuit::{decode_relation, CompileOptions, CompiledCircuit, Mode, WordTape};
use qec_core::naive_circuit;
use qec_datalog::{DatalogProgram, FixpointBounds};
use qec_obs::Recorder;
use qec_query::{canonicalize, parse_cq, CanonicalCq};
use qec_relation::{Database, DcSet, DegreeConstraint, Relation, Var};

use crate::cache::{CacheStats, CompiledPlan, PlanCache};
use crate::key::{bucket_n, dc_signature, PlanKey};
use crate::ServeError;

/// Server configuration. `Default` gives a small single-process setup
/// suitable for tests; production knobs are all here.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Worker threads; 0 means "the `qec-par` pool width" (`QEC_THREADS`).
    pub workers: usize,
    /// Admission queue capacity; a full queue rejects with
    /// [`ServeError::Overloaded`].
    pub queue_capacity: usize,
    /// Maximum jobs coalesced into one engine batch.
    pub max_batch: usize,
    /// How long a batch stays open for latecomers, measured from its
    /// first job's enqueue time.
    pub flush: Duration,
    /// Maximum in-flight requests per tenant; 0 = unlimited.
    pub tenant_quota: usize,
    /// Plan-cache byte budget; 0 = unlimited.
    pub cache_budget_bytes: usize,
    /// Directory for plan persistence (write-through + warm start).
    pub persist_dir: Option<std::path::PathBuf>,
    /// Load persisted plans at startup.
    pub warm_start: bool,
    /// Coalesce same-plan requests into batches; `false` evaluates
    /// every request alone (the batch-size-1 A/B baseline).
    pub coalesce: bool,
    /// Options for plan compilation (pool, optimizer, validator).
    pub compile: CompileOptions,
    /// Observability sink for serve-layer counters/gauges/spans.
    pub recorder: Recorder,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            workers: 0,
            queue_capacity: 1024,
            max_batch: 64,
            flush: Duration::from_micros(500),
            tenant_quota: 0,
            cache_budget_bytes: 0,
            persist_dir: None,
            warm_start: false,
            coalesce: true,
            compile: CompileOptions::sequential(),
            recorder: Recorder::disabled(),
        }
    }
}

/// A single-query request. Relation rows are given per atom name, with
/// columns in the sorted variable order of that atom in the (parsed)
/// query — the same convention as the differential-fuzzing corpus.
#[derive(Clone, Debug)]
pub struct Request {
    /// Tenant identifier for quotas and per-tenant counters.
    pub tenant: String,
    /// Query source, `parse_cq` syntax.
    pub query: String,
    /// Per-relation cardinality bound; buckets to the plan capacity.
    pub n: u64,
    /// `(relation name, rows)` for every atom of the query.
    pub rels: Vec<(String, Vec<Vec<u64>>)>,
}

/// A completed request: the output relations (in the request's own
/// variable space) plus serving metadata.
#[derive(Clone, Debug)]
pub struct Response {
    /// Decoded output relations, one per circuit output group.
    pub relations: Vec<Relation>,
    /// `true` when the plan came from the cache (no compile ran for
    /// this request, including single-flight waits).
    pub cache_hit: bool,
    /// Number of requests evaluated in the same engine batch.
    pub batch_size: usize,
    /// Nanoseconds spent queued before a worker picked the job up.
    pub queue_ns: u64,
    /// Nanoseconds from dequeue to response.
    pub total_ns: u64,
}

/// Handle to a submitted request; [`Ticket::wait`] blocks for the
/// response.
#[derive(Debug)]
pub struct Ticket {
    rx: mpsc::Receiver<Result<Response, ServeError>>,
}

impl Ticket {
    /// Blocks until the request completes.
    pub fn wait(self) -> Result<Response, ServeError> {
        self.rx.recv().unwrap_or(Err(ServeError::ShuttingDown))
    }

    /// Blocks until the request completes or `deadline` passes —
    /// whichever comes first. A passed deadline is a typed
    /// [`ServeError::Deadline`], never a hang; the request itself still
    /// runs to completion server-side (its quota slot is released by
    /// the worker), only the wait is abandoned.
    pub fn wait_deadline(self, deadline: Instant) -> Result<Response, ServeError> {
        let start = Instant::now();
        let budget = deadline.saturating_duration_since(start);
        match self.rx.recv_timeout(budget) {
            Ok(result) => result,
            Err(mpsc::RecvTimeoutError::Timeout) => Err(ServeError::Deadline {
                waited: start.elapsed(),
            }),
            Err(mpsc::RecvTimeoutError::Disconnected) => Err(ServeError::ShuttingDown),
        }
    }

    /// [`Ticket::wait_deadline`] with a relative timeout.
    pub fn wait_timeout(self, timeout: Duration) -> Result<Response, ServeError> {
        self.wait_deadline(Instant::now() + timeout)
    }
}

/// What a job compiles when its key misses the cache, plus how its
/// outputs map back to the caller's space.
#[derive(Clone)]
enum JobPlan {
    /// A conjunctive query: outputs are translated back into the
    /// request's own variable space via `from_canon`.
    Cq { canon: Arc<CanonicalCq>, dcs: DcSet },
    /// A recursive Datalog program, unrolled to `depth` delta rounds.
    /// Outputs stay in the canonical key space (`Var(0..arity)`, plus
    /// the annotation column for non-Boolean semirings) — Datalog heads
    /// have no per-request variable spelling to restore.
    Datalog {
        program: Arc<DatalogProgram>,
        depth: u64,
    },
}

/// One queued job: the request translated into canonical space.
struct Job {
    key: PlanKey,
    plan: JobPlan,
    db: Database,
    tenant: String,
    enqueued: Instant,
    reply: mpsc::Sender<Result<Response, ServeError>>,
}

struct Shared {
    queue: Mutex<VecDeque<Job>>,
    cv: Condvar,
    shutdown: AtomicBool,
    cache: PlanCache,
    tenants: Mutex<HashMap<String, usize>>,
    cfg: ServerConfig,
}

/// The serving loop: admission, plan cache, batching workers.
pub struct Server {
    shared: Arc<Shared>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Starts the server: builds the plan cache (warm-starting it if
    /// configured) and spawns the worker threads.
    pub fn start(cfg: ServerConfig) -> Server {
        let cache = PlanCache::new(
            cfg.cache_budget_bytes,
            cfg.persist_dir.clone(),
            cfg.recorder.clone(),
        );
        if cfg.warm_start {
            cache.warm_start(&cfg.compile);
        }
        let workers = if cfg.workers == 0 {
            qec_par::Pool::from_env().threads().max(1)
        } else {
            cfg.workers
        };
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
            cache,
            tenants: Mutex::new(HashMap::new()),
            cfg,
        });
        let handles = (0..workers)
            .map(|_| {
                let shared = shared.clone();
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        Server {
            shared,
            workers: handles,
        }
    }

    /// Admits a request: parse, canonicalize, check quota and queue
    /// capacity, enqueue. Returns immediately with a [`Ticket`].
    pub fn submit(&self, req: Request) -> Result<Ticket, ServeError> {
        if self.shared.shutdown.load(Ordering::Acquire) {
            return Err(ServeError::ShuttingDown);
        }
        let cfg = &self.shared.cfg;
        let (key, plan, db) = if is_datalog(&req.query) {
            admit_datalog(&req)?
        } else {
            admit_cq(&req)?
        };

        // Tenant quota, charged until the response is sent.
        if cfg.tenant_quota > 0 {
            let mut tenants = self.shared.tenants.lock().unwrap();
            let count = tenants.entry(req.tenant.clone()).or_insert(0);
            if *count >= cfg.tenant_quota {
                return Err(ServeError::QuotaExceeded {
                    tenant: req.tenant.clone(),
                    in_flight: *count,
                    quota: cfg.tenant_quota,
                });
            }
            *count += 1;
        }

        let (tx, rx) = mpsc::channel();
        let job = Job {
            key,
            plan,
            db,
            tenant: req.tenant.clone(),
            enqueued: Instant::now(),
            reply: tx,
        };
        {
            let mut queue = self.shared.queue.lock().unwrap();
            if queue.len() >= cfg.queue_capacity {
                drop(queue);
                release_tenant(&self.shared, &req.tenant);
                let depth = cfg.queue_capacity;
                cfg.recorder.add("serve.rejected.overloaded", 1);
                return Err(ServeError::Overloaded { queue_depth: depth });
            }
            queue.push_back(job);
            cfg.recorder
                .gauge_max("serve.queue_depth.max", queue.len() as u64);
        }
        self.shared.cv.notify_one();
        cfg.recorder.add("serve.requests", 1);
        cfg.recorder
            .add(&format!("serve.tenant.{}.requests", req.tenant), 1);
        Ok(Ticket { rx })
    }

    /// Submit-and-wait convenience.
    pub fn query(&self, req: Request) -> Result<Response, ServeError> {
        self.submit(req)?.wait()
    }

    /// [`Server::query`] with an upper bound on the caller's wait:
    /// admission errors surface immediately, and a response that does
    /// not arrive within `timeout` is a typed [`ServeError::Deadline`].
    pub fn query_timeout(&self, req: Request, timeout: Duration) -> Result<Response, ServeError> {
        self.submit(req)?.wait_timeout(timeout)
    }

    /// Plan-cache counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.shared.cache.stats()
    }

    /// Stops accepting requests, drains the queue, joins the workers.
    /// Called automatically on drop.
    pub fn shutdown(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.cv.notify_all();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// A request is a Datalog program when it has at least two rules — a
/// single `:-` is a plain conjunctive query (`parse_cq` syntax), and a
/// single-rule program has no recursion to unroll.
fn is_datalog(query: &str) -> bool {
    query.matches(":-").count() >= 2
}

/// Admission for a conjunctive query: parse, canonicalize, translate
/// the relations into canonical variable space, derive the key.
fn admit_cq(req: &Request) -> Result<(PlanKey, JobPlan, Database), ServeError> {
    let cq = parse_cq(&req.query).map_err(|e| ServeError::Parse(e.to_string()))?;
    let canon = Arc::new(canonicalize(&cq));

    // Translate relations into canonical variable space. Columns
    // arrive in the atom's sorted original-variable order; mapping
    // each column's variable and letting `Relation::from_rows`
    // re-sort yields the canonical-space relation.
    let mut db = Database::new();
    for (name, rows) in &req.rels {
        let Some(atom) = cq.atoms.iter().find(|a| a.name == *name) else {
            continue; // let the layout report the mismatch
        };
        let schema: Vec<Var> = atom
            .vars
            .iter()
            .map(|v| canon.to_canon[v.index()])
            .collect();
        db.insert(name.clone(), Relation::from_rows(schema, rows.clone()));
    }

    let n_bucket = bucket_n(req.n);
    let dcs = DcSet::from_vec(
        canon
            .cq
            .atoms
            .iter()
            .map(|a| DegreeConstraint::cardinality(a.vars, n_bucket))
            .collect(),
    );
    let key = PlanKey {
        query: canon.text.clone(),
        dc_sig: dc_signature(&dcs),
        n_bucket,
        fixpoint_depth: 0,
    };
    Ok((key, JobPlan::Cq { canon, dcs }, db))
}

/// Admission for a Datalog program. `req.n` bounds both the active
/// domain (key values range over `0..bucket`) and each EDB's
/// cardinality; the bucket doubles as the unrolling depth, which makes
/// Boolean and min-tropical fixpoints exact and keeps the plan a pure
/// function of the key.
fn admit_datalog(req: &Request) -> Result<(PlanKey, JobPlan, Database), ServeError> {
    let dp = DatalogProgram::parse(&req.query).map_err(|e| ServeError::Parse(e.to_string()))?;
    let rels: Vec<(&str, Vec<Vec<u64>>)> = req
        .rels
        .iter()
        .map(|(n, r)| (n.as_str(), r.clone()))
        .collect();
    let db = qec_datalog::database(&dp, &rels).map_err(|e| ServeError::Layout(e.to_string()))?;
    let depth = bucket_n(req.n);
    let key = PlanKey {
        query: dp.program.canonical_text(),
        dc_sig: String::new(),
        n_bucket: depth,
        fixpoint_depth: depth,
    };
    Ok((
        key,
        JobPlan::Datalog {
            program: Arc::new(dp),
            depth,
        },
        db,
    ))
}

fn release_tenant(shared: &Shared, tenant: &str) {
    if shared.cfg.tenant_quota > 0 {
        let mut tenants = shared.tenants.lock().unwrap();
        if let Some(count) = tenants.get_mut(tenant) {
            *count = count.saturating_sub(1);
        }
    }
}

/// Sends a job's result and releases its tenant-quota slot. A closed
/// receiver (caller dropped the ticket) is not an error.
fn respond(shared: &Shared, job: Job, result: Result<Response, ServeError>) {
    let _ = job.reply.send(result);
    release_tenant(shared, &job.tenant);
}

/// Moves every queued job with `key` into `batch`, up to `max`.
fn drain_same_key(queue: &mut VecDeque<Job>, key: &PlanKey, batch: &mut Vec<Job>, max: usize) {
    let mut i = 0;
    while i < queue.len() && batch.len() < max {
        if queue[i].key == *key {
            batch.push(queue.remove(i).expect("index in bounds"));
        } else {
            i += 1;
        }
    }
}

fn worker_loop(shared: &Shared) {
    let cfg = &shared.cfg;
    loop {
        let mut queue = shared.queue.lock().unwrap();
        loop {
            if !queue.is_empty() {
                break;
            }
            if shared.shutdown.load(Ordering::Acquire) {
                return;
            }
            queue = shared.cv.wait(queue).unwrap();
        }
        let first = queue.pop_front().expect("non-empty");
        let key = first.key.clone();
        let mut batch = vec![first];
        if cfg.coalesce && cfg.max_batch > 1 {
            drain_same_key(&mut queue, &key, &mut batch, cfg.max_batch);
            // Keep the batch open until the flush deadline, picking up
            // newcomers. The deadline is anchored to the first job's
            // enqueue time so coalescing bounds added latency by
            // `flush` even under a steady trickle.
            let deadline = batch[0].enqueued + cfg.flush;
            while batch.len() < cfg.max_batch && !shared.shutdown.load(Ordering::Acquire) {
                let now = Instant::now();
                if now >= deadline {
                    break;
                }
                let (guard, timeout) = shared.cv.wait_timeout(queue, deadline - now).unwrap();
                queue = guard;
                drain_same_key(&mut queue, &key, &mut batch, cfg.max_batch);
                if timeout.timed_out() {
                    break;
                }
            }
        }
        cfg.recorder
            .gauge_set("serve.queue_depth", queue.len() as u64);
        drop(queue);
        // Another worker may be waiting on jobs we did not take.
        shared.cv.notify_one();
        process_batch(shared, batch);
    }
}

fn process_batch(shared: &Shared, mut batch: Vec<Job>) {
    let cfg = &shared.cfg;
    let t0 = Instant::now();
    let key = batch[0].key.clone();
    let spec = batch[0].plan.clone();
    cfg.recorder.add("serve.batches", 1);
    cfg.recorder.add("serve.batch.jobs", batch.len() as u64);
    cfg.recorder
        .gauge_max("serve.batch.occupancy.max", batch.len() as u64);

    let built = shared.cache.get_or_compile(&key, || {
        let _span = cfg.recorder.span("serve.compile");
        let t = Instant::now();
        let lowered = match &spec {
            JobPlan::Cq { canon, dcs } => {
                let (rc, _root) = naive_circuit(&canon.cq, dcs)
                    .map_err(|e| ServeError::Compile(e.to_string()))?;
                rc.lower_with(Mode::Build, &cfg.compile)
            }
            JobPlan::Datalog { program, depth } => {
                let bounds = FixpointBounds::for_domain(*depth, *depth);
                let fx = qec_datalog::compile(program, &bounds)
                    .map_err(|e| ServeError::Compile(e.to_string()))?;
                fx.rc.lower_with(Mode::Build, &cfg.compile)
            }
        };
        let tape =
            WordTape::encode(&lowered.circuit).map_err(|e| ServeError::Compile(e.to_string()))?;
        let (engine, _report) = CompiledCircuit::compile_with(&lowered.circuit, &cfg.compile)
            .map_err(|e| ServeError::Compile(format!("{e:?}")))?;
        let plan = CompiledPlan {
            key: key.clone(),
            engine,
            layout: lowered.layout,
            outputs: lowered.outputs,
            plan_bytes: tape.to_bytes().len(),
            compile_ns: t.elapsed().as_nanos() as u64,
        };
        shared.cache.persist(&plan, &tape)?;
        Ok(plan)
    });
    let (plan, cache_hit) = match built {
        Ok(x) => x,
        Err(e) => {
            for job in batch {
                respond(shared, job, Err(e.clone()));
            }
            return;
        }
    };

    // Bind each job's database to the plan layout; jobs that do not
    // fit fail individually without sinking the batch.
    let mut inputs: Vec<Vec<u64>> = Vec::with_capacity(batch.len());
    let mut live: Vec<Job> = Vec::with_capacity(batch.len());
    for job in batch.drain(..) {
        match plan.layout.values(&job.db) {
            Ok(vals) => {
                inputs.push(vals);
                live.push(job);
            }
            Err(e) => respond(shared, job, Err(ServeError::Layout(format!("{e:?}")))),
        }
    }
    if live.is_empty() {
        return;
    }

    let results = {
        let _span = cfg.recorder.span("serve.evaluate");
        plan.engine.evaluate_batch(&inputs)
    };
    let batch_size = live.len();
    for (job, result) in live.into_iter().zip(results) {
        let response = result
            .map_err(|e| ServeError::Eval(format!("{e:?}")))
            .map(|raw| {
                let relations = plan
                    .outputs
                    .iter()
                    .map(|(schema, start, len)| {
                        let canon_rel = decode_relation(schema, &raw[*start..*start + *len]);
                        match &job.plan {
                            // Translate back into the request's
                            // variable space; `from_rows` re-sorts the
                            // schema.
                            JobPlan::Cq { canon, .. } => {
                                let orig_schema: Vec<Var> = canon_rel
                                    .schema()
                                    .iter()
                                    .map(|v| canon.from_canon[v.index()])
                                    .collect();
                                Relation::from_rows(orig_schema, canon_rel.rows().to_vec())
                            }
                            // Datalog outputs are already in their
                            // only space: keys `Var(0..arity)` (plus
                            // the annotation column).
                            JobPlan::Datalog { .. } => canon_rel,
                        }
                    })
                    .collect();
                Response {
                    relations,
                    cache_hit,
                    batch_size,
                    queue_ns: (t0 - job.enqueued).as_nanos() as u64,
                    total_ns: t0.elapsed().as_nanos() as u64,
                }
            });
        respond(shared, job, response);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qec_query::baseline::evaluate_pairwise;

    fn triangle_request(tenant: &str, n: u64, seed: u64) -> Request {
        let rows = |salt: u64| -> Vec<Vec<u64>> {
            (0..n)
                .map(|i| {
                    let x = (i * 7 + seed + salt) % n;
                    let y = (i * 13 + seed + 2 * salt + 1) % n;
                    vec![x, y]
                })
                .collect()
        };
        Request {
            tenant: tenant.into(),
            query: "Q(a, b, c) :- R(a, b), S(b, c), T(a, c)".into(),
            n,
            rels: vec![
                ("R".into(), rows(1)),
                ("S".into(), rows(2)),
                ("T".into(), rows(3)),
            ],
        }
    }

    /// Direct evaluation of a request through the RAM baseline, for
    /// ground truth.
    fn baseline_eval(req: &Request) -> Relation {
        let cq = parse_cq(&req.query).unwrap();
        let mut db = Database::new();
        for (name, rows) in &req.rels {
            let atom = cq.atoms.iter().find(|a| a.name == *name).unwrap();
            db.insert(
                name.clone(),
                Relation::from_rows(atom.vars.to_vec(), rows.clone()),
            );
        }
        evaluate_pairwise(&cq, &db).unwrap()
    }

    #[test]
    fn serves_correct_results_and_caches_plans() {
        let mut server = Server::start(ServerConfig {
            workers: 2,
            ..ServerConfig::default()
        });
        for seed in 0..4 {
            let req = triangle_request("t0", 4, seed);
            let expect = baseline_eval(&req);
            let resp = server.query(req).unwrap();
            assert_eq!(resp.relations.len(), 1);
            assert_eq!(resp.relations[0], expect, "seed {seed}");
        }
        let stats = server.cache_stats();
        assert_eq!(stats.misses, 1, "one compile for four requests");
        assert!(stats.hits >= 3);
        server.shutdown();
    }

    #[test]
    fn alpha_variant_queries_share_one_plan() {
        let mut server = Server::start(ServerConfig {
            workers: 1,
            ..ServerConfig::default()
        });
        let mut a = triangle_request("t0", 4, 7);
        let expect = baseline_eval(&a);
        let got_a = server.query(a.clone()).unwrap();
        assert_eq!(got_a.relations[0], expect);
        // The same query with variables renamed and atoms reordered:
        // same answers, and — the point — no second compile.
        a.query = "Q(x, y, z) :- T(x, z), S(y, z), R(x, y)".into();
        let got_b = server.query(a).unwrap();
        assert_eq!(got_b.relations[0], expect);
        assert!(got_b.cache_hit);
        assert_eq!(server.cache_stats().misses, 1);
        server.shutdown();
    }

    #[test]
    fn bucketed_capacities_share_a_plan_and_stay_correct() {
        let mut server = Server::start(ServerConfig {
            workers: 1,
            ..ServerConfig::default()
        });
        // n = 5 and n = 8 both bucket to capacity 8.
        let r5 = triangle_request("t0", 5, 1);
        let r8 = triangle_request("t0", 8, 2);
        let e5 = baseline_eval(&r5);
        let e8 = baseline_eval(&r8);
        assert_eq!(server.query(r5).unwrap().relations[0], e5);
        let resp8 = server.query(r8).unwrap();
        assert_eq!(resp8.relations[0], e8);
        assert!(resp8.cache_hit, "n=8 reuses the n=5 bucket-8 plan");
        server.shutdown();
    }

    #[test]
    fn quota_and_backpressure_are_typed_errors() {
        // Small fast-to-compile requests with *distinct* plan keys, so
        // the flush-window worker does not coalesce them away.
        let small = |tenant: &str, query: &str, rels: Vec<(&str, Vec<Vec<u64>>)>| Request {
            tenant: tenant.into(),
            query: query.into(),
            n: 2,
            rels: rels
                .into_iter()
                .map(|(n, rows)| (n.to_string(), rows))
                .collect(),
        };
        let mut server = Server::start(ServerConfig {
            workers: 1,
            queue_capacity: 2,
            tenant_quota: 1,
            // One worker held in a long flush window on the first key
            // makes queue growth deterministic.
            flush: Duration::from_secs(5),
            max_batch: 64,
            ..ServerConfig::default()
        });
        // Worker picks this up and waits in its flush window.
        let t_busy = server
            .submit(small(
                "a",
                "Q(x, y) :- R(x, y)",
                vec![("R", vec![vec![1, 2]])],
            ))
            .unwrap();
        std::thread::sleep(Duration::from_millis(50));
        // Different tenants/keys fill the queue (capacity 2)...
        let t1 = server
            .submit(small("b", "Q(x) :- R(x, y)", vec![("R", vec![vec![1, 2]])]))
            .unwrap();
        let t2 = server
            .submit(small("c", "Q() :- R(x, y)", vec![("R", vec![vec![1, 2]])]))
            .unwrap();
        // ...and the next submit is rejected, not dropped.
        let err = server
            .submit(small("d", "Q(y) :- R(x, y)", vec![("R", vec![vec![1, 2]])]))
            .unwrap_err();
        assert_eq!(err, ServeError::Overloaded { queue_depth: 2 });
        // Tenant "b" already has a request in flight; quota is checked
        // before queue capacity, so the error is the quota's.
        let err = server
            .submit(small("b", "Q(y) :- R(x, y)", vec![("R", vec![vec![1, 2]])]))
            .unwrap_err();
        assert_eq!(
            err,
            ServeError::QuotaExceeded {
                tenant: "b".into(),
                in_flight: 1,
                quota: 1,
            }
        );
        // Shutdown cuts the flush window short and drains the queue:
        // every admitted request still completes.
        server.shutdown();
        assert!(t_busy.wait().is_ok());
        assert!(t1.wait().is_ok());
        assert!(t2.wait().is_ok());
    }

    #[test]
    fn warm_start_skips_recompilation() {
        let dir = std::env::temp_dir().join(format!("qec-serve-warm-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let req = triangle_request("t0", 4, 3);
        let expect = baseline_eval(&req);
        {
            let mut server = Server::start(ServerConfig {
                workers: 1,
                persist_dir: Some(dir.clone()),
                ..ServerConfig::default()
            });
            assert_eq!(server.query(req.clone()).unwrap().relations[0], expect);
            assert_eq!(server.cache_stats().misses, 1);
            server.shutdown();
        }
        {
            let mut server = Server::start(ServerConfig {
                workers: 1,
                persist_dir: Some(dir.clone()),
                warm_start: true,
                ..ServerConfig::default()
            });
            let resp = server.query(req).unwrap();
            assert_eq!(resp.relations[0], expect);
            assert!(resp.cache_hit, "persisted plan served without compile");
            assert_eq!(server.cache_stats().misses, 0);
            server.shutdown();
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn deadlines_are_typed_never_a_hang() {
        let mut server = Server::start(ServerConfig {
            workers: 1,
            // Hold the lone worker in a long flush window so queued
            // requests observably outlive a short caller deadline.
            flush: Duration::from_secs(5),
            max_batch: 64,
            ..ServerConfig::default()
        });
        let _busy = server.submit(triangle_request("hold", 4, 0)).unwrap();
        std::thread::sleep(Duration::from_millis(30));
        let t = Instant::now();
        let err = server
            .query_timeout(triangle_request("t0", 4, 1), Duration::from_millis(50))
            .unwrap_err();
        assert!(matches!(err, ServeError::Deadline { .. }), "{err}");
        assert!(t.elapsed() < Duration::from_secs(4), "wait was bounded");
        // An already-expired deadline returns immediately.
        let err = server
            .submit(triangle_request("t1", 4, 2))
            .unwrap()
            .wait_deadline(Instant::now() - Duration::from_millis(1))
            .unwrap_err();
        assert!(matches!(err, ServeError::Deadline { .. }));
        server.shutdown();
    }

    #[test]
    fn deadline_stress_every_wait_resolves() {
        // Many concurrent callers racing tiny deadlines against a
        // deliberately slow batcher: every single wait must resolve to
        // a response or a typed error — and the server must stay
        // healthy enough to serve a normal query afterwards.
        let server = std::sync::Arc::new(Server::start(ServerConfig {
            workers: 2,
            flush: Duration::from_millis(40),
            max_batch: 8,
            queue_capacity: 16,
            ..ServerConfig::default()
        }));
        let expect = baseline_eval(&triangle_request("t", 4, 9));
        let handles: Vec<_> = (0..4)
            .map(|c| {
                let server = server.clone();
                std::thread::spawn(move || {
                    let mut outcomes = [0usize; 3]; // ok, deadline, other
                    for i in 0..12 {
                        let timeout = Duration::from_micros(200 + 7919 * (c * 12 + i) % 60_000);
                        match server.query_timeout(triangle_request("t", 4, 9), timeout) {
                            Ok(_) => outcomes[0] += 1,
                            Err(ServeError::Deadline { .. }) => outcomes[1] += 1,
                            Err(ServeError::Overloaded { .. }) => outcomes[2] += 1,
                            Err(e) => panic!("unexpected error: {e}"),
                        }
                    }
                    outcomes
                })
            })
            .collect();
        for h in handles {
            h.join().expect("stress thread finished (no hang)");
        }
        // The queue may still be draining abandoned jobs; back off on
        // Overloaded as a real client would.
        let resp = loop {
            match server.query_timeout(triangle_request("t", 4, 9), Duration::from_secs(30)) {
                Ok(r) => break r,
                Err(ServeError::Overloaded { .. }) => std::thread::sleep(Duration::from_millis(20)),
                Err(e) => panic!("unexpected error after stress: {e}"),
            }
        };
        assert_eq!(resp.relations[0], expect, "server healthy after stress");
    }

    #[test]
    fn serves_datalog_fixpoints_and_caches_by_program_and_depth() {
        use qec_datalog::{database, result_relation, seminaive, workloads};
        let mut server = Server::start(ServerConfig {
            workers: 2,
            ..ServerConfig::default()
        });
        let edges = vec![vec![0, 1], vec![1, 2], vec![2, 3], vec![3, 0]];
        let req = Request {
            tenant: "t".into(),
            query: workloads::TRANSITIVE_CLOSURE.into(),
            n: 4,
            rels: vec![("edge".into(), edges.clone())],
        };
        let dp = DatalogProgram::parse(workloads::TRANSITIVE_CLOSURE).unwrap();
        let db = database(&dp, &[("edge", edges)]).unwrap();
        let expect = result_relation(&dp, &seminaive(&dp, &db, 4).unwrap());
        let r1 = server.query(req.clone()).unwrap();
        assert_eq!(r1.relations.len(), 1);
        assert_eq!(r1.relations[0], expect);
        assert!(!r1.cache_hit);
        // An alpha/whitespace variant of the same program shares the
        // plan via `canonical_text` — no second compile.
        let mut variant = req.clone();
        variant.query = "path(a,b) :- edge(a,b).  path(a,c) :- path(a,b), edge(b,c).".into();
        let r2 = server.query(variant).unwrap();
        assert_eq!(r2.relations[0], expect);
        assert!(r2.cache_hit);
        assert_eq!(server.cache_stats().misses, 1);
        // A different capacity bucket is a different unrolling depth,
        // hence a fresh plan — with the same (converged) fixpoint.
        let mut deeper = req;
        deeper.n = 8;
        let r3 = server.query(deeper).unwrap();
        assert_eq!(r3.relations[0], expect);
        assert!(!r3.cache_hit);
        assert_eq!(server.cache_stats().misses, 2);
        server.shutdown();
    }

    #[test]
    fn serves_min_tropical_shortest_paths() {
        use qec_datalog::{database, result_relation, seminaive, workloads};
        let mut server = Server::start(ServerConfig {
            workers: 1,
            ..ServerConfig::default()
        });
        // The direct edge 0->2 (weight 9) must lose to 0->1->2 (3).
        let edges = vec![vec![0, 1, 2], vec![1, 2, 1], vec![0, 2, 9], vec![2, 3, 1]];
        let req = Request {
            tenant: "t".into(),
            query: workloads::SHORTEST_PATH.into(),
            n: 4,
            rels: vec![("edge".into(), edges.clone())],
        };
        let dp = DatalogProgram::parse(workloads::SHORTEST_PATH).unwrap();
        let db = database(&dp, &[("edge", edges)]).unwrap();
        let expect = result_relation(&dp, &seminaive(&dp, &db, 4).unwrap());
        let resp = server.query(req).unwrap();
        assert_eq!(resp.relations[0], expect);
        server.shutdown();
    }

    #[test]
    fn rejected_datalog_programs_are_typed_admission_errors() {
        let server = Server::start(ServerConfig::default());
        // Recursive under a non-idempotent semiring: no finite
        // unrolling computes the fixpoint, so admission rejects it.
        let err = server
            .submit(Request {
                tenant: "t".into(),
                query: "p(x, y) :- e*(x, y) @nat. p(x, z) :- p(x, y), e*(y, z) @nat.".into(),
                n: 2,
                rels: vec![("e".into(), vec![vec![0, 1, 1]])],
            })
            .unwrap_err();
        assert!(matches!(err, ServeError::Parse(_)), "{err}");
        // A malformed instance (wrong arity) fails the layout at
        // admission, before any queue slot is taken.
        let err = server
            .submit(Request {
                tenant: "t".into(),
                query: "p(x, y) :- e(x, y). p(x, z) :- p(x, y), e(y, z).".into(),
                n: 2,
                rels: vec![("e".into(), vec![vec![0, 1, 7]])],
            })
            .unwrap_err();
        assert!(matches!(err, ServeError::Layout(_)), "{err}");
    }

    #[test]
    fn parse_errors_are_reported_at_admission() {
        let server = Server::start(ServerConfig::default());
        let err = server
            .submit(Request {
                tenant: "t".into(),
                query: "Q(a :- R(a)".into(),
                n: 2,
                rels: vec![],
            })
            .unwrap_err();
        assert!(matches!(err, ServeError::Parse(_)));
    }
}
