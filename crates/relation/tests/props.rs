//! Property tests: relational algebra identities on random instances.

use proptest::prelude::*;
use qec_relation::{AggKind, Relation, Var, VarSet};

fn rel_strategy(vars: &'static [u32], max_rows: usize) -> impl Strategy<Value = Relation> {
    let arity = vars.len();
    prop::collection::vec(prop::collection::vec(0u64..6, arity..=arity), 0..max_rows)
        .prop_map(move |rows| Relation::from_rows(vars.iter().map(|&i| Var(i)).collect(), rows))
}

fn vs(bits: &[u32]) -> VarSet {
    bits.iter().map(|&i| Var(i)).collect()
}

proptest! {
    #[test]
    fn join_commutative_associative(
        r in rel_strategy(&[0, 1], 24),
        s in rel_strategy(&[1, 2], 24),
        t in rel_strategy(&[2, 3], 24),
    ) {
        prop_assert_eq!(r.natural_join(&s), s.natural_join(&r));
        prop_assert_eq!(
            r.natural_join(&s).natural_join(&t),
            r.natural_join(&s.natural_join(&t))
        );
    }

    #[test]
    fn union_laws(r in rel_strategy(&[0, 1], 24), s in rel_strategy(&[0, 1], 24)) {
        prop_assert_eq!(r.union(&s), s.union(&r));
        prop_assert_eq!(r.union(&r), r.clone());
        prop_assert_eq!(r.union(&Relation::empty(vs(&[0, 1]))), r);
    }

    #[test]
    fn semijoin_is_join_then_project(
        r in rel_strategy(&[0, 1], 24),
        s in rel_strategy(&[1, 2], 24),
    ) {
        let expected = r.natural_join(&s).project(vs(&[0, 1]));
        prop_assert_eq!(r.semijoin(&s), expected);
    }

    #[test]
    fn projection_monotone_and_idempotent(r in rel_strategy(&[0, 1, 2], 32)) {
        let p = r.project(vs(&[0, 1]));
        prop_assert!(p.len() <= r.len());
        prop_assert_eq!(p.project(vs(&[0, 1])), p.clone());
        prop_assert_eq!(p.project(vs(&[0])), r.project(vs(&[0])));
    }

    #[test]
    fn join_size_bounded_by_degree_product(
        r in rel_strategy(&[0, 1], 24),
        s in rel_strategy(&[1, 2], 24),
    ) {
        // |R ⋈ S| ≤ |R| · deg_S(B): the bound behind the degree-bounded
        // join circuit (Sec. 5.4).
        let j = r.natural_join(&s);
        let deg = s.degree(vs(&[1]));
        prop_assert!(j.len() <= r.len() * deg.max(1));
    }

    #[test]
    fn count_aggregate_totals_to_len(r in rel_strategy(&[0, 1], 32)) {
        let agg = r.aggregate(vs(&[0]), AggKind::Count, Var(9));
        let col = agg.col(Var(9)).unwrap();
        let total: u64 = agg.iter().map(|row| row[col]).sum();
        prop_assert_eq!(total as usize, r.len());
        prop_assert_eq!(agg.len(), r.project(vs(&[0])).len());
    }

    #[test]
    fn split_by_degree_partitions(r in rel_strategy(&[0, 1], 32), thr in 0usize..6) {
        let (heavy, light) = r.split_by_degree(vs(&[0]), thr);
        prop_assert_eq!(heavy.union(&light), r.clone());
        prop_assert_eq!(heavy.len() + light.len(), r.len());
        prop_assert!(light.degree(vs(&[0])) <= thr);
    }

    #[test]
    fn order_by_assigns_unique_ranks(r in rel_strategy(&[0, 1], 32)) {
        let ord = r.order_by(vs(&[0]), Var(9));
        let col = ord.col(Var(9)).unwrap();
        let mut ranks: Vec<u64> = ord.iter().map(|row| row[col]).collect();
        ranks.sort_unstable();
        let expected: Vec<u64> = (1..=r.len() as u64).collect();
        prop_assert_eq!(ranks, expected);
    }

    #[test]
    fn difference_laws(r in rel_strategy(&[0, 1], 24), s in rel_strategy(&[0, 1], 24)) {
        let d = r.difference(&s);
        prop_assert_eq!(d.union(&r.semijoin(&s).select(|row| s.contains(row))).len(), r.len());
        prop_assert!(d.iter().all(|row| !s.contains(row)));
    }
}
