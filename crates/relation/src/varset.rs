//! Variables and variable sets.

use std::fmt;

/// A query variable `A_i`, identified by its index.
///
/// The paper's variables `A_1..A_n` are 0-indexed here. Human-readable
/// names live in the query layer; the substrate only needs indices.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Var(pub u32);

impl Var {
    /// Index as `usize`.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // A, B, ..., Z, A26, A27, ... — matches how the paper labels
        // variables in its examples.
        if self.0 < 26 {
            write!(f, "{}", (b'A' + self.0 as u8) as char)
        } else {
            write!(f, "A{}", self.0)
        }
    }
}

/// A set of variables, as a 64-bit bitset (supports `n ≤ 64` variables,
/// far beyond the constant query sizes of data complexity).
#[derive(Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VarSet(pub u64);

impl VarSet {
    /// The empty set.
    pub const EMPTY: VarSet = VarSet(0);

    /// Singleton `{v}`.
    pub fn singleton(v: Var) -> VarSet {
        assert!(v.0 < 64, "VarSet supports at most 64 variables");
        VarSet(1u64 << v.0)
    }

    /// The full set `{A_0, …, A_{n-1}}`.
    pub fn full(n: u32) -> VarSet {
        assert!(n <= 64);
        if n == 64 {
            VarSet(u64::MAX)
        } else {
            VarSet((1u64 << n) - 1)
        }
    }

    /// Number of variables in the set.
    pub fn len(self) -> u32 {
        self.0.count_ones()
    }

    /// Returns `true` iff the set is empty.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Membership test.
    pub fn contains(self, v: Var) -> bool {
        v.0 < 64 && (self.0 >> v.0) & 1 == 1
    }

    /// Subset test `self ⊆ other`.
    pub fn is_subset(self, other: VarSet) -> bool {
        self.0 & !other.0 == 0
    }

    /// Union.
    pub fn union(self, other: VarSet) -> VarSet {
        VarSet(self.0 | other.0)
    }

    /// Intersection.
    pub fn intersect(self, other: VarSet) -> VarSet {
        VarSet(self.0 & other.0)
    }

    /// Set difference `self \ other`.
    pub fn minus(self, other: VarSet) -> VarSet {
        VarSet(self.0 & !other.0)
    }

    /// Inserts a variable, returning the extended set.
    pub fn with(self, v: Var) -> VarSet {
        self.union(VarSet::singleton(v))
    }

    /// Iterates members in increasing index order.
    pub fn iter(self) -> impl Iterator<Item = Var> {
        let mut bits = self.0;
        std::iter::from_fn(move || {
            if bits == 0 {
                None
            } else {
                let i = bits.trailing_zeros();
                bits &= bits - 1;
                Some(Var(i))
            }
        })
    }

    /// Members as a vector (increasing index order).
    pub fn to_vec(self) -> Vec<Var> {
        self.iter().collect()
    }

    /// Iterates all subsets of `self` (including `∅` and `self`).
    ///
    /// Order: the standard subset-lattice enumeration by decreasing mask,
    /// wrapped to start at `∅`.
    pub fn subsets(self) -> impl Iterator<Item = VarSet> {
        let full = self.0;
        let mut cur: Option<u64> = Some(0);
        std::iter::from_fn(move || {
            let out = cur?;
            cur = if out == full {
                None
            } else {
                Some(((out | !full).wrapping_add(1)) & full)
            };
            Some(VarSet(out))
        })
    }
}

impl FromIterator<Var> for VarSet {
    fn from_iter<T: IntoIterator<Item = Var>>(iter: T) -> Self {
        iter.into_iter().fold(VarSet::EMPTY, VarSet::with)
    }
}

impl From<Vec<Var>> for VarSet {
    fn from(vars: Vec<Var>) -> Self {
        vars.into_iter().collect()
    }
}

impl fmt::Display for VarSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return write!(f, "∅");
        }
        for v in self.iter() {
            write!(f, "{v}")?;
        }
        Ok(())
    }
}

impl fmt::Debug for VarSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_algebra() {
        let ab = VarSet::from(vec![Var(0), Var(1)]);
        let bc = VarSet::from(vec![Var(1), Var(2)]);
        assert_eq!(ab.union(bc), VarSet::full(3));
        assert_eq!(ab.intersect(bc), VarSet::singleton(Var(1)));
        assert_eq!(ab.minus(bc), VarSet::singleton(Var(0)));
        assert!(ab.intersect(bc).is_subset(ab));
        assert!(!ab.is_subset(bc));
        assert!(VarSet::EMPTY.is_subset(ab));
        assert_eq!(ab.len(), 2);
        assert!(ab.contains(Var(1)));
        assert!(!ab.contains(Var(2)));
    }

    #[test]
    fn iteration_order() {
        let s = VarSet::from(vec![Var(5), Var(0), Var(3)]);
        assert_eq!(s.to_vec(), vec![Var(0), Var(3), Var(5)]);
    }

    #[test]
    fn subsets_enumeration() {
        let s = VarSet::from(vec![Var(0), Var(2)]);
        let subs: Vec<VarSet> = s.subsets().collect();
        assert_eq!(subs.len(), 4);
        assert!(subs.contains(&VarSet::EMPTY));
        assert!(subs.contains(&VarSet::singleton(Var(0))));
        assert!(subs.contains(&VarSet::singleton(Var(2))));
        assert!(subs.contains(&s));
        // full(0) has exactly one subset: ∅
        assert_eq!(VarSet::EMPTY.subsets().count(), 1);
    }

    #[test]
    fn display_names() {
        assert_eq!(Var(0).to_string(), "A");
        assert_eq!(Var(2).to_string(), "C");
        assert_eq!(Var(30).to_string(), "A30");
        let abc = VarSet::full(3);
        assert_eq!(abc.to_string(), "ABC");
        assert_eq!(VarSet::EMPTY.to_string(), "∅");
    }

    #[test]
    fn full_boundaries() {
        assert_eq!(VarSet::full(0), VarSet::EMPTY);
        assert_eq!(VarSet::full(64).len(), 64);
    }
}
