//! Relational substrate: variables, schemas, relations with set semantics,
//! the standard RAM operators, degree constraints, and workload generators.
//!
//! This crate is the "ground truth" layer of the reproduction. Everything
//! the circuits of the paper compute is cross-checked against the plain RAM
//! operators implemented here (selection, projection, natural join, union,
//! semijoin, group-by aggregation, ordering), whose costs match the cost
//! model of Sec. 4.3 of the paper.
//!
//! Data model (Sec. 3.1 of the paper): a query has variables `A_0..A_{n-1}`
//! drawn from an integer domain `[u]`; a relation `R_F` over a hyperedge `F`
//! stores a *set* of tuples. We represent variables as [`Var`] indices,
//! variable sets as the bitset [`VarSet`] (`n ≤ 64`), and relations as
//! lexicographically sorted, deduplicated row blocks.

mod constraints;
mod generate;
mod relation;
mod varset;

pub use constraints::{DcSet, DegreeConstraint};
pub use generate::{
    agm_worst_case_even_cycle, agm_worst_case_loomis_whitney, agm_worst_case_triangle,
    powers_of_two, random_degree_bounded, random_relation, random_relation_with_domain,
    zipf_relation,
};
pub use relation::{AggKind, Relation, Tuple};
pub use varset::{Var, VarSet};

/// A database instance: one relation per hyperedge, keyed by name.
///
/// Iteration order is insertion order, which keeps compiled circuits and
/// reports deterministic.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Database {
    names: Vec<String>,
    relations: Vec<Relation>,
}

impl Database {
    /// Creates an empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts (or replaces) the relation stored under `name`.
    pub fn insert(&mut self, name: impl Into<String>, relation: Relation) {
        let name = name.into();
        if let Some(i) = self.names.iter().position(|n| *n == name) {
            self.relations[i] = relation;
        } else {
            self.names.push(name);
            self.relations.push(relation);
        }
    }

    /// Looks up a relation by name.
    pub fn get(&self, name: &str) -> Option<&Relation> {
        self.names
            .iter()
            .position(|n| n == name)
            .map(|i| &self.relations[i])
    }

    /// Total number of tuples across all relations (the paper's `N`).
    pub fn total_tuples(&self) -> usize {
        self.relations.iter().map(Relation::len).sum()
    }

    /// Iterates over `(name, relation)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Relation)> {
        self.names
            .iter()
            .map(String::as_str)
            .zip(self.relations.iter())
    }

    /// Number of relations.
    pub fn len(&self) -> usize {
        self.relations.len()
    }

    /// Returns `true` if the database holds no relations.
    pub fn is_empty(&self) -> bool {
        self.relations.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn database_insert_replace_lookup() {
        let mut db = Database::new();
        let r = Relation::from_rows(vec![Var(0), Var(1)], vec![vec![1, 2], vec![3, 4]]);
        db.insert("R", r.clone());
        assert_eq!(db.get("R"), Some(&r));
        assert_eq!(db.total_tuples(), 2);
        let r2 = Relation::from_rows(vec![Var(0), Var(1)], vec![vec![9, 9]]);
        db.insert("R", r2.clone());
        assert_eq!(db.get("R"), Some(&r2));
        assert_eq!(db.len(), 1);
        assert_eq!(db.total_tuples(), 1);
        assert!(db.get("S").is_none());
    }
}
