//! Synthetic workload generators.
//!
//! The paper has no empirical section, so reproduction workloads are
//! synthetic by necessity. These generators produce the instance families
//! used throughout `EXPERIMENTS.md`: uniform random relations, relations
//! with a hard degree cap, Zipf-skewed relations (stress the heavy/light
//! split and decomposition circuits), and the classical AGM worst case for
//! the triangle query (output size `N^{3/2}`).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{Relation, Var};

/// Uniform random binary/k-ary relation with `n` distinct tuples over
/// domain `[0, domain)`, deterministic in `seed`.
pub fn random_relation_with_domain(schema: Vec<Var>, n: usize, domain: u64, seed: u64) -> Relation {
    assert!(domain > 0, "empty domain");
    let arity = schema.len();
    let capacity = (domain as u128).saturating_pow(arity as u32);
    assert!(
        (n as u128) <= capacity,
        "cannot draw {n} distinct tuples of arity {arity} from domain {domain}"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let mut rows: Vec<Vec<u64>> = Vec::with_capacity(n);
    let mut seen = std::collections::HashSet::with_capacity(n * 2);
    while rows.len() < n {
        let row: Vec<u64> = (0..arity).map(|_| rng.gen_range(0..domain)).collect();
        if seen.insert(row.clone()) {
            rows.push(row);
        }
    }
    Relation::from_rows(schema, rows)
}

/// Uniform random relation with domain sized `2n` (mild collision rate).
pub fn random_relation(schema: Vec<Var>, n: usize, seed: u64) -> Relation {
    random_relation_with_domain(schema, n, (2 * n).max(4) as u64, seed)
}

/// Random binary relation `R(a, b)` with `n` tuples where no `a`-value has
/// degree above `max_degree`.
pub fn random_degree_bounded(a: Var, b: Var, n: usize, max_degree: usize, seed: u64) -> Relation {
    assert!(max_degree >= 1);
    let mut rng = StdRng::seed_from_u64(seed);
    let groups = n.div_ceil(max_degree);
    let mut rows = Vec::with_capacity(n);
    let mut made = 0usize;
    for g in 0..groups {
        let deg = if g + 1 == groups {
            n - made
        } else {
            max_degree
        };
        // distinct b-values within the group: sample without replacement
        // from a window comfortably larger than the degree
        let window = (4 * max_degree) as u64;
        let mut picked = std::collections::HashSet::new();
        while picked.len() < deg {
            picked.insert(rng.gen_range(0..window));
        }
        for bv in picked {
            rows.push(vec![g as u64, bv]);
        }
        made += deg;
    }
    Relation::from_rows(vec![a, b], rows)
}

/// Zipf-skewed binary relation: `a`-values drawn with probability
/// `∝ 1/rank^s`, `b`-values uniform. Produces the skew that makes the
/// heavy/light split (Fig. 1) and PANDA's decomposition (Alg. 2) earn
/// their keep.
pub fn zipf_relation(a: Var, b: Var, n: usize, s: f64, seed: u64) -> Relation {
    let mut rng = StdRng::seed_from_u64(seed);
    let ranks = (n / 2).max(2);
    // Cumulative Zipf weights.
    let mut cdf = Vec::with_capacity(ranks);
    let mut total = 0.0f64;
    for r in 1..=ranks {
        total += 1.0 / (r as f64).powf(s);
        cdf.push(total);
    }
    let domain = (4 * n).max(8) as u64;
    let mut rows = std::collections::HashSet::with_capacity(n * 2);
    let mut attempts = 0usize;
    while rows.len() < n && attempts < 100 * n + 1000 {
        attempts += 1;
        let u: f64 = rng.gen_range(0.0..total);
        let rank = cdf.partition_point(|&c| c < u);
        let bv = rng.gen_range(0..domain);
        rows.insert(vec![rank as u64, bv]);
    }
    Relation::from_rows(vec![a, b], rows.into_iter().collect())
}

/// The AGM worst case for the triangle query: each of `R_AB`, `R_BC`,
/// `R_AC` is the complete bipartite relation `[√N] × [√N]`, so each has
/// `≈ N` tuples and the triangle output has `≈ N^{3/2}` tuples.
///
/// Returns `(R_AB, R_BC, R_AC)` over variables `(a, b, c)`.
pub fn agm_worst_case_triangle(a: Var, b: Var, c: Var, n: usize) -> (Relation, Relation, Relation) {
    let side = (n as f64).sqrt().floor() as u64;
    let side = side.max(1);
    let grid: Vec<Vec<u64>> = (0..side)
        .flat_map(|x| (0..side).map(move |y| vec![x, y]))
        .collect();
    (
        Relation::from_rows(vec![a, b], grid.clone()),
        Relation::from_rows(vec![b, c], grid.clone()),
        Relation::from_rows(vec![a, c], grid),
    )
}

/// The AGM worst case for the even `k`-cycle: every vertex ranges over
/// `[√N]` and each edge relation is the complete `[√N] × [√N]` grid, so
/// every relation has `≈ N` tuples and the output is the full vertex
/// grid of `≈ N^{k/2}` tuples — matching `ρ* = k/2`.
///
/// Returns one relation per cycle edge `E_i(x_i, x_{i+1 mod k})`.
///
/// # Panics
/// Panics unless `k` is even and `≥ 4`.
pub fn agm_worst_case_even_cycle(k: usize, n: usize) -> Vec<Relation> {
    assert!(k >= 4 && k.is_multiple_of(2), "even cycles only");
    let side = ((n as f64).sqrt().floor() as u64).max(1);
    // every vertex takes values in [side]; each edge is the full grid
    let grid: Vec<Vec<u64>> = (0..side)
        .flat_map(|x| (0..side).map(move |y| vec![x, y]))
        .collect();
    (0..k)
        .map(|i| {
            let a = Var(i as u32);
            let b = Var(((i + 1) % k) as u32);
            // from_rows sorts the schema; rows follow the given order (a, b)
            Relation::from_rows(vec![a, b], grid.clone())
        })
        .collect()
}

/// The Loomis–Whitney worst case: every variable ranges over
/// `[N^{1/(n-1)}]` and each of the `n` relations (arity `n-1`) is the full
/// cross product, so each relation has `≈ N` tuples and the output is the
/// full `n`-dimensional grid of `≈ N^{n/(n-1)}` tuples — matching
/// `ρ* = n/(n-1)`.
///
/// Returns one relation per atom of [`qec-query`'s] `loomis_whitney(n)`,
/// in atom order (`R_i` omits variable `i`).
pub fn agm_worst_case_loomis_whitney(n: usize, target: usize) -> Vec<Relation> {
    assert!(n >= 3);
    let side = ((target as f64).powf(1.0 / (n as f64 - 1.0)).floor() as u64).max(1);
    (0..n)
        .map(|skip| {
            let schema: Vec<Var> = (0..n)
                .filter(|&v| v != skip)
                .map(|v| Var(v as u32))
                .collect();
            let arity = schema.len();
            let mut rows = vec![vec![0u64; arity]];
            for col in 0..arity {
                rows = rows
                    .into_iter()
                    .flat_map(|r| {
                        (0..side).map(move |v| {
                            let mut t = r.clone();
                            t[col] = v;
                            t
                        })
                    })
                    .collect();
            }
            Relation::from_rows(schema, rows)
        })
        .collect()
}

/// `[2^lo, 2^hi]` as a vector of powers of two — the standard sweep for
/// scaling experiments.
pub fn powers_of_two(lo: u32, hi: u32) -> Vec<usize> {
    (lo..=hi).map(|e| 1usize << e).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::VarSet;

    #[test]
    fn random_relation_is_deterministic_and_sized() {
        let r1 = random_relation(vec![Var(0), Var(1)], 100, 7);
        let r2 = random_relation(vec![Var(0), Var(1)], 100, 7);
        let r3 = random_relation(vec![Var(0), Var(1)], 100, 8);
        assert_eq!(r1, r2);
        assert_ne!(r1, r3);
        assert_eq!(r1.len(), 100);
        assert_eq!(r1.arity(), 2);
    }

    #[test]
    #[should_panic(expected = "distinct tuples")]
    fn impossible_cardinality_rejected() {
        let _ = random_relation_with_domain(vec![Var(0)], 10, 5, 0);
    }

    #[test]
    fn degree_bounded_respects_cap() {
        let r = random_degree_bounded(Var(0), Var(1), 1000, 8, 3);
        assert_eq!(r.len(), 1000);
        assert!(r.degree(VarSet::singleton(Var(0))) <= 8);
    }

    #[test]
    fn zipf_is_skewed() {
        let r = zipf_relation(Var(0), Var(1), 2000, 1.2, 11);
        assert!(r.len() >= 1000, "zipf generator should reach most of n");
        // the hottest a-value should be much hotter than the degree cap of
        // a uniform relation with the same size
        let deg = r.degree(VarSet::singleton(Var(0)));
        assert!(deg > 20, "expected heavy skew, got max degree {deg}");
    }

    #[test]
    fn agm_triangle_output_is_n_to_1_5() {
        let (ab, bc, ac) = agm_worst_case_triangle(Var(0), Var(1), Var(2), 64);
        assert_eq!(ab.len(), 64);
        let out = ab.natural_join(&bc).natural_join(&ac);
        assert_eq!(out.len(), 512); // 8^3 = (√64)^3 = 64^{1.5}
    }

    #[test]
    fn even_cycle_worst_case_output() {
        let rels = agm_worst_case_even_cycle(4, 16);
        assert_eq!(rels.len(), 4);
        assert_eq!(rels[0].len(), 16);
        let out = rels
            .iter()
            .skip(1)
            .fold(rels[0].clone(), |acc, r| acc.natural_join(r));
        assert_eq!(out.len(), 256); // 16^{4/2} = N^2
    }

    #[test]
    fn loomis_whitney_worst_case_output() {
        let rels = agm_worst_case_loomis_whitney(3, 16);
        assert_eq!(rels.len(), 3);
        assert_eq!(rels[0].len(), 16);
        let out = rels
            .iter()
            .skip(1)
            .fold(rels[0].clone(), |acc, r| acc.natural_join(r));
        assert_eq!(out.len(), 64); // (√16)^3 = N^{3/2}
    }

    #[test]
    fn powers() {
        assert_eq!(powers_of_two(3, 6), vec![8, 16, 32, 64]);
    }
}
