//! Relations with set semantics and the standard RAM operators.

use std::collections::HashMap;
use std::fmt;

use crate::{Var, VarSet};

/// A tuple of domain values, laid out in the owning relation's schema order.
pub type Tuple = Vec<u64>;

/// Group-by aggregate kinds supported by [`Relation::aggregate`] and, at the
/// circuit level, by the aggregation circuit of Alg. 5 in the paper.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AggKind {
    /// Number of tuples per group (`Π_{F, count}` in the paper).
    Count,
    /// Sum of the named attribute per group.
    Sum(Var),
    /// Minimum of the named attribute per group.
    Min(Var),
    /// Maximum of the named attribute per group.
    Max(Var),
}

/// A relation: a *set* of tuples over a fixed schema.
///
/// Invariants:
/// * the schema is sorted by variable index and duplicate-free;
/// * rows are lexicographically sorted (in schema order) and deduplicated.
///
/// The sorted-normalized representation makes equality of query results a
/// plain `==`, which the test suite leans on heavily.
#[derive(Clone, PartialEq, Eq)]
pub struct Relation {
    schema: Vec<Var>,
    rows: Vec<Tuple>,
}

impl Relation {
    /// Creates an empty relation over `vars`.
    pub fn empty(vars: VarSet) -> Relation {
        Relation {
            schema: vars.to_vec(),
            rows: Vec::new(),
        }
    }

    /// Creates a relation from rows given in the order of `schema`
    /// (which need not be sorted); rows are reordered into sorted-schema
    /// layout, sorted, and deduplicated.
    ///
    /// # Panics
    /// Panics if `schema` contains duplicates or a row has the wrong arity.
    pub fn from_rows(schema: Vec<Var>, rows: Vec<Tuple>) -> Relation {
        let vars: VarSet = schema.iter().copied().collect();
        assert_eq!(
            vars.len() as usize,
            schema.len(),
            "schema contains duplicate variables: {schema:?}"
        );
        let sorted = vars.to_vec();
        // Position of each sorted-schema column in the input schema.
        let perm: Vec<usize> = sorted
            .iter()
            .map(|v| schema.iter().position(|s| s == v).expect("var present"))
            .collect();
        let mut out_rows: Vec<Tuple> = Vec::with_capacity(rows.len());
        for row in rows {
            assert_eq!(row.len(), schema.len(), "row arity mismatch");
            out_rows.push(perm.iter().map(|&i| row[i]).collect());
        }
        let mut rel = Relation {
            schema: sorted,
            rows: out_rows,
        };
        rel.normalize();
        rel
    }

    /// The Boolean relation `{()}` (true) or `{}` (false).
    pub fn boolean(value: bool) -> Relation {
        Relation {
            schema: Vec::new(),
            rows: if value { vec![Vec::new()] } else { Vec::new() },
        }
    }

    fn normalize(&mut self) {
        self.rows.sort_unstable();
        self.rows.dedup();
    }

    /// Schema in sorted variable order.
    pub fn schema(&self) -> &[Var] {
        &self.schema
    }

    /// Schema as a [`VarSet`].
    pub fn vars(&self) -> VarSet {
        self.schema.iter().copied().collect()
    }

    /// Number of attributes.
    pub fn arity(&self) -> usize {
        self.schema.len()
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Returns `true` iff the relation has no tuples.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Iterates rows in lexicographic order.
    pub fn iter(&self) -> impl Iterator<Item = &Tuple> {
        self.rows.iter()
    }

    /// Returns the position of `v` in the schema, if present.
    pub fn col(&self, v: Var) -> Option<usize> {
        self.schema.binary_search(&v).ok()
    }

    /// Membership test.
    pub fn contains(&self, row: &[u64]) -> bool {
        self.rows
            .binary_search_by(|r| r.as_slice().cmp(row))
            .is_ok()
    }

    /// Selection `σ_φ(R)`.
    pub fn select(&self, predicate: impl Fn(&[u64]) -> bool) -> Relation {
        Relation {
            schema: self.schema.clone(),
            rows: self.rows.iter().filter(|r| predicate(r)).cloned().collect(),
        }
    }

    /// Projection `Π_X(R)` with duplicate elimination (set semantics).
    ///
    /// # Panics
    /// Panics if `onto ⊄ schema`.
    pub fn project(&self, onto: VarSet) -> Relation {
        assert!(
            onto.is_subset(self.vars()),
            "projection onto non-attributes"
        );
        let cols: Vec<usize> = onto.iter().map(|v| self.col(v).expect("subset")).collect();
        let mut rel = Relation {
            schema: onto.to_vec(),
            rows: self
                .rows
                .iter()
                .map(|r| cols.iter().map(|&c| r[c]).collect())
                .collect(),
        };
        rel.normalize();
        rel
    }

    /// Natural join `R ⋈ S` (cross product when schemas are disjoint).
    pub fn natural_join(&self, other: &Relation) -> Relation {
        let common = self.vars().intersect(other.vars());
        let (build, probe) = if self.len() <= other.len() {
            (self, other)
        } else {
            (other, self)
        };
        let bkey: Vec<usize> = common
            .iter()
            .map(|v| build.col(v).expect("common"))
            .collect();
        let pkey: Vec<usize> = common
            .iter()
            .map(|v| probe.col(v).expect("common"))
            .collect();

        let mut table: HashMap<Vec<u64>, Vec<usize>> = HashMap::with_capacity(build.len());
        for (i, row) in build.rows.iter().enumerate() {
            let key: Vec<u64> = bkey.iter().map(|&c| row[c]).collect();
            table.entry(key).or_default().push(i);
        }

        let out_vars = self.vars().union(other.vars());
        let out_schema = out_vars.to_vec();
        // For each output column: take from probe if present, else build.
        enum Src {
            Probe(usize),
            Build(usize),
        }
        let srcs: Vec<Src> = out_schema
            .iter()
            .map(|&v| match probe.col(v) {
                Some(c) => Src::Probe(c),
                None => Src::Build(build.col(v).expect("column present in one side")),
            })
            .collect();

        let mut rows = Vec::new();
        for prow in &probe.rows {
            let key: Vec<u64> = pkey.iter().map(|&c| prow[c]).collect();
            if let Some(matches) = table.get(&key) {
                for &bi in matches {
                    let brow = &build.rows[bi];
                    rows.push(
                        srcs.iter()
                            .map(|s| match *s {
                                Src::Probe(c) => prow[c],
                                Src::Build(c) => brow[c],
                            })
                            .collect(),
                    );
                }
            }
        }
        let mut rel = Relation {
            schema: out_schema,
            rows,
        };
        rel.normalize();
        rel
    }

    /// Semijoin `R ⋉ S`: tuples of `R` that join with at least one tuple of
    /// `S`. Implemented as in the paper (Sec. 6.2): `R ⋈ Π_{R∩S}(S)`.
    pub fn semijoin(&self, other: &Relation) -> Relation {
        let common = self.vars().intersect(other.vars());
        let keys = other.project(common);
        let cols: Vec<usize> = common
            .iter()
            .map(|v| self.col(v).expect("common"))
            .collect();
        self.select(|row| {
            let key: Vec<u64> = cols.iter().map(|&c| row[c]).collect();
            keys.contains(&key)
        })
    }

    /// Union `R ∪ S` (schemas must be identical).
    ///
    /// # Panics
    /// Panics on schema mismatch.
    pub fn union(&self, other: &Relation) -> Relation {
        assert_eq!(self.schema, other.schema, "union schema mismatch");
        let mut rows = self.rows.clone();
        rows.extend(other.rows.iter().cloned());
        let mut rel = Relation {
            schema: self.schema.clone(),
            rows,
        };
        rel.normalize();
        rel
    }

    /// Set difference `R \ S` (schemas must be identical).
    pub fn difference(&self, other: &Relation) -> Relation {
        assert_eq!(self.schema, other.schema, "difference schema mismatch");
        self.select(|row| !other.contains(row))
    }

    /// Group-by aggregation `Π_{G, agg}(R)` (Sec. 4.3 of the paper). The
    /// aggregate value is emitted in a fresh output column `out`.
    ///
    /// # Panics
    /// Panics if `out` is already in the schema, `group ⊄ schema`, or a
    /// `Sum/Min/Max` attribute is missing.
    pub fn aggregate(&self, group: VarSet, agg: AggKind, out: Var) -> Relation {
        assert!(group.is_subset(self.vars()), "group-by on non-attributes");
        assert!(
            !self.vars().contains(out),
            "aggregate output column collides"
        );
        let gcols: Vec<usize> = group.iter().map(|v| self.col(v).expect("subset")).collect();
        let acol = match agg {
            AggKind::Count => None,
            AggKind::Sum(v) | AggKind::Min(v) | AggKind::Max(v) => {
                Some(self.col(v).expect("aggregated attribute present"))
            }
        };
        let mut groups: HashMap<Vec<u64>, u64> = HashMap::new();
        for row in &self.rows {
            let key: Vec<u64> = gcols.iter().map(|&c| row[c]).collect();
            let val = acol.map(|c| row[c]);
            groups
                .entry(key)
                .and_modify(|acc| match agg {
                    AggKind::Count => *acc += 1,
                    AggKind::Sum(_) => *acc += val.expect("sum value"),
                    AggKind::Min(_) => *acc = (*acc).min(val.expect("min value")),
                    AggKind::Max(_) => *acc = (*acc).max(val.expect("max value")),
                })
                .or_insert(match agg {
                    AggKind::Count => 1,
                    _ => val.expect("agg value"),
                });
        }
        // Output rows in sorted-schema layout: group vars ∪ {out}.
        let out_vars = group.with(out);
        let out_schema = out_vars.to_vec();
        let gvars = group.to_vec();
        let rows = groups
            .into_iter()
            .map(|(key, acc)| {
                out_schema
                    .iter()
                    .map(|&v| {
                        if v == out {
                            acc
                        } else {
                            key[gvars.iter().position(|&g| g == v).expect("group var")]
                        }
                    })
                    .collect()
            })
            .collect();
        let mut rel = Relation {
            schema: out_schema,
            rows,
        };
        rel.normalize();
        rel
    }

    /// The paper's ordering operator `τ_F(R)`: adds a fresh column `out`
    /// holding each tuple's 1-based rank when `R` is sorted by the `by`
    /// attributes (ties broken by the remaining attributes, then arbitrarily
    /// — here, deterministically by full lexicographic order).
    pub fn order_by(&self, by: VarSet, out: Var) -> Relation {
        assert!(by.is_subset(self.vars()), "order-by on non-attributes");
        assert!(!self.vars().contains(out), "order column collides");
        let bycols: Vec<usize> = by.iter().map(|v| self.col(v).expect("subset")).collect();
        let mut idx: Vec<usize> = (0..self.rows.len()).collect();
        idx.sort_by(|&i, &j| {
            let ki: Vec<u64> = bycols.iter().map(|&c| self.rows[i][c]).collect();
            let kj: Vec<u64> = bycols.iter().map(|&c| self.rows[j][c]).collect();
            ki.cmp(&kj).then_with(|| self.rows[i].cmp(&self.rows[j]))
        });
        let out_vars = self.vars().with(out);
        let out_schema = out_vars.to_vec();
        let out_pos = out_schema
            .iter()
            .position(|&v| v == out)
            .expect("out in schema");
        let rows = idx
            .into_iter()
            .enumerate()
            .map(|(rank, ri)| {
                let mut row: Vec<u64> = Vec::with_capacity(out_schema.len());
                let mut src = 0usize;
                for pos in 0..out_schema.len() {
                    if pos == out_pos {
                        row.push(rank as u64 + 1);
                    } else {
                        row.push(self.rows[ri][src]);
                        src += 1;
                    }
                }
                row
            })
            .collect();
        let mut rel = Relation {
            schema: out_schema,
            rows,
        };
        rel.normalize();
        rel
    }

    /// Maximum degree `deg_R(X) = max_t |σ_{X=t}(R)|` (Sec. 3.1). For
    /// `X = ∅` this is `|R|`; an empty relation has degree 0.
    pub fn degree(&self, x: VarSet) -> usize {
        assert!(x.is_subset(self.vars()), "degree over non-attributes");
        if self.rows.is_empty() {
            return 0;
        }
        if x.is_empty() {
            return self.len();
        }
        let cols: Vec<usize> = x.iter().map(|v| self.col(v).expect("subset")).collect();
        let mut counts: HashMap<Vec<u64>, usize> = HashMap::new();
        for row in &self.rows {
            let key: Vec<u64> = cols.iter().map(|&c| row[c]).collect();
            *counts.entry(key).or_insert(0) += 1;
        }
        counts.into_values().max().unwrap_or(0)
    }

    /// Splits into `(heavy, light)` by the degree of each tuple's `X`-value:
    /// tuples whose `X`-group has more than `threshold` members go to
    /// `heavy`. This is the classical heavy/light technique used by the
    /// Figure 1 circuit.
    pub fn split_by_degree(&self, x: VarSet, threshold: usize) -> (Relation, Relation) {
        let cols: Vec<usize> = x.iter().map(|v| self.col(v).expect("subset")).collect();
        let mut counts: HashMap<Vec<u64>, usize> = HashMap::new();
        for row in &self.rows {
            let key: Vec<u64> = cols.iter().map(|&c| row[c]).collect();
            *counts.entry(key).or_insert(0) += 1;
        }
        let is_heavy = |row: &[u64]| {
            let key: Vec<u64> = cols.iter().map(|&c| row[c]).collect();
            counts[&key] > threshold
        };
        (self.select(|r| is_heavy(r)), self.select(|r| !is_heavy(r)))
    }

    /// Renames attribute `from` to `to` (used by baseline plans).
    ///
    /// # Panics
    /// Panics if `from` is absent or `to` is already present.
    pub fn rename(&self, from: Var, to: Var) -> Relation {
        let c = self.col(from).expect("rename source present");
        assert!(!self.vars().contains(to), "rename target collides");
        let mut schema = self.schema.clone();
        schema[c] = to;
        Relation::from_rows(schema, self.rows.clone())
    }

    /// Rows as owned vectors (test helper).
    pub fn rows(&self) -> &[Tuple] {
        &self.rows
    }

    /// Parses a relation from comma-separated text: one tuple per line,
    /// `arity` unsigned integer columns, blank lines and `#` comments
    /// ignored. Values must be `< u64::MAX` (the reserved `?`).
    ///
    /// # Errors
    /// Returns a 1-based line number and message on malformed input.
    pub fn from_csv(schema: Vec<Var>, text: &str) -> Result<Relation, (usize, String)> {
        let arity = schema.len();
        let mut rows = Vec::new();
        for (ln0, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut row = Vec::with_capacity(arity);
            for field in line.split(',') {
                let v: u64 = field
                    .trim()
                    .parse()
                    .map_err(|e| (ln0 + 1, format!("bad value {field:?}: {e}")))?;
                if v == u64::MAX {
                    return Err((ln0 + 1, "u64::MAX is reserved".to_string()));
                }
                row.push(v);
            }
            if row.len() != arity {
                return Err((
                    ln0 + 1,
                    format!("expected {arity} columns, found {}", row.len()),
                ));
            }
            rows.push(row);
        }
        Ok(Relation::from_rows(schema, rows))
    }

    /// Serializes the relation as CSV (schema order, one tuple per line).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        for row in &self.rows {
            let cells: Vec<String> = row.iter().map(u64::to_string).collect();
            out.push_str(&cells.join(","));
            out.push('\n');
        }
        out
    }
}

impl fmt::Debug for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "R(")?;
        for (i, v) in self.schema.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")[{} rows]", self.rows.len())?;
        if self.rows.len() <= 8 {
            write!(f, " {:?}", self.rows)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(schema: &[u32], rows: &[&[u64]]) -> Relation {
        Relation::from_rows(
            schema.iter().map(|&i| Var(i)).collect(),
            rows.iter().map(|r| r.to_vec()).collect(),
        )
    }

    #[test]
    fn construction_normalizes() {
        // schema given as (B, A): rows are reordered into (A, B)
        let rel = Relation::from_rows(
            vec![Var(1), Var(0)],
            vec![vec![2, 1], vec![2, 1], vec![4, 3]],
        );
        assert_eq!(rel.schema(), &[Var(0), Var(1)]);
        assert_eq!(rel.rows(), &[vec![1, 2], vec![3, 4]]);
        assert_eq!(rel.len(), 2);
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn duplicate_schema_rejected() {
        let _ = Relation::from_rows(vec![Var(0), Var(0)], vec![]);
    }

    #[test]
    fn select_project() {
        let rel = r(&[0, 1], &[&[1, 10], &[2, 20], &[3, 10]]);
        let sel = rel.select(|row| row[1] == 10);
        assert_eq!(sel.len(), 2);
        let proj = rel.project(VarSet::singleton(Var(1)));
        assert_eq!(proj.rows(), &[vec![10], vec![20]]);
    }

    #[test]
    fn join_basic_and_cross() {
        let ab = r(&[0, 1], &[&[1, 2], &[3, 4]]);
        let bc = r(&[1, 2], &[&[2, 5], &[2, 6], &[9, 9]]);
        let j = ab.natural_join(&bc);
        assert_eq!(j.schema(), &[Var(0), Var(1), Var(2)]);
        assert_eq!(j.rows(), &[vec![1, 2, 5], vec![1, 2, 6]]);

        let d = r(&[5], &[&[7], &[8]]);
        let cross = ab.natural_join(&d);
        assert_eq!(cross.len(), 4);
    }

    #[test]
    fn join_is_commutative() {
        let ab = r(&[0, 1], &[&[1, 2], &[3, 4], &[5, 2]]);
        let bc = r(&[1, 2], &[&[2, 5], &[4, 6]]);
        assert_eq!(ab.natural_join(&bc), bc.natural_join(&ab));
    }

    #[test]
    fn semijoin_and_difference() {
        let ab = r(&[0, 1], &[&[1, 2], &[3, 4], &[5, 6]]);
        let b = r(&[1], &[&[2], &[6]]);
        let sj = ab.semijoin(&b);
        assert_eq!(sj.rows(), &[vec![1, 2], vec![5, 6]]);
        let diff = ab.difference(&sj);
        assert_eq!(diff.rows(), &[vec![3, 4]]);
    }

    #[test]
    fn union_dedups() {
        let x = r(&[0], &[&[1], &[2]]);
        let y = r(&[0], &[&[2], &[3]]);
        assert_eq!(x.union(&y).rows(), &[vec![1], vec![2], vec![3]]);
    }

    #[test]
    fn aggregates() {
        let rel = r(&[0, 1], &[&[1, 10], &[1, 20], &[2, 5]]);
        let cnt = rel.aggregate(VarSet::singleton(Var(0)), AggKind::Count, Var(9));
        assert_eq!(cnt.rows(), &[vec![1, 2], vec![2, 1]]);
        let sum = rel.aggregate(VarSet::singleton(Var(0)), AggKind::Sum(Var(1)), Var(9));
        assert_eq!(sum.rows(), &[vec![1, 30], vec![2, 5]]);
        let mn = rel.aggregate(VarSet::singleton(Var(0)), AggKind::Min(Var(1)), Var(9));
        assert_eq!(mn.rows(), &[vec![1, 10], vec![2, 5]]);
        let mx = rel.aggregate(VarSet::singleton(Var(0)), AggKind::Max(Var(1)), Var(9));
        assert_eq!(mx.rows(), &[vec![1, 20], vec![2, 5]]);
        // global aggregate (empty group)
        let total = rel.aggregate(VarSet::EMPTY, AggKind::Count, Var(9));
        assert_eq!(total.rows(), &[vec![3]]);
    }

    #[test]
    fn order_by_ranks() {
        let rel = r(&[0, 1], &[&[3, 1], &[1, 2], &[2, 3]]);
        let ord = rel.order_by(VarSet::singleton(Var(0)), Var(9));
        // ranks follow A order: (1,2)->1, (2,3)->2, (3,1)->3
        let rank_col = ord.col(Var(9)).unwrap();
        let a_col = ord.col(Var(0)).unwrap();
        for row in ord.iter() {
            assert_eq!(row[rank_col], row[a_col]); // A values 1,2,3 align with ranks
        }
    }

    #[test]
    fn degree_and_split() {
        let rel = r(&[0, 1], &[&[1, 1], &[1, 2], &[1, 3], &[2, 1]]);
        assert_eq!(rel.degree(VarSet::singleton(Var(0))), 3);
        assert_eq!(rel.degree(VarSet::singleton(Var(1))), 2);
        assert_eq!(rel.degree(VarSet::EMPTY), 4);
        let (heavy, light) = rel.split_by_degree(VarSet::singleton(Var(0)), 2);
        assert_eq!(heavy.len(), 3);
        assert_eq!(light.len(), 1);
        assert_eq!(heavy.union(&light), rel);
    }

    #[test]
    fn boolean_relations() {
        assert_eq!(Relation::boolean(true).len(), 1);
        assert_eq!(Relation::boolean(false).len(), 0);
        let t = Relation::boolean(true);
        let ab = r(&[0, 1], &[&[1, 2]]);
        // cross product with the unit relation is identity
        assert_eq!(ab.natural_join(&t), ab);
        assert_eq!(ab.natural_join(&Relation::boolean(false)).len(), 0);
    }

    #[test]
    fn csv_roundtrip_and_errors() {
        let rel = r(&[0, 1], &[&[1, 2], &[3, 4]]);
        let text = rel.to_csv();
        let back = Relation::from_csv(vec![Var(0), Var(1)], &text).unwrap();
        assert_eq!(back, rel);
        // comments and blank lines
        let with_noise = format!("# header\n\n{text}\n  # trailing\n");
        assert_eq!(
            Relation::from_csv(vec![Var(0), Var(1)], &with_noise).unwrap(),
            rel
        );
        // errors carry line numbers
        assert_eq!(
            Relation::from_csv(vec![Var(0), Var(1)], "1,2\nx,9\n")
                .unwrap_err()
                .0,
            2
        );
        assert_eq!(
            Relation::from_csv(vec![Var(0), Var(1)], "1\n")
                .unwrap_err()
                .0,
            1
        );
    }

    #[test]
    fn rename() {
        let ab = r(&[0, 1], &[&[1, 2]]);
        let ac = ab.rename(Var(1), Var(2));
        assert_eq!(ac.schema(), &[Var(0), Var(2)]);
        assert_eq!(ac.rows(), &[vec![1, 2]]);
    }
}
