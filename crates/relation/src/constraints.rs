//! Degree constraints (Sec. 3.1 of the paper).
//!
//! A degree constraint `(X, Y, N_{Y|X})` with `X ⊆ Y` asserts
//! `deg(Y|X) = max_t |σ_{X=t}(R_Y)| ≤ N_{Y|X}` for the relation guarding it.
//! Cardinality constraints are the special case `X = ∅`; functional
//! dependencies the special case `N_{Y|X} = 1`.

use std::fmt;

use crate::{Relation, VarSet};

/// A single degree constraint `(X, Y, N_{Y|X})`.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct DegreeConstraint {
    /// The conditioning set `X`.
    pub on: VarSet,
    /// The constrained set `Y` (must satisfy `X ⊆ Y`).
    pub of: VarSet,
    /// The bound `N_{Y|X} ≥ 1`.
    pub bound: u64,
}

impl DegreeConstraint {
    /// A cardinality constraint `|R_Y| ≤ bound`.
    pub fn cardinality(of: VarSet, bound: u64) -> Self {
        DegreeConstraint {
            on: VarSet::EMPTY,
            of,
            bound,
        }
    }

    /// A general degree constraint `deg(Y|X) ≤ bound`.
    ///
    /// # Panics
    /// Panics unless `X ⊂ Y` and `bound ≥ 1`.
    pub fn degree(on: VarSet, of: VarSet, bound: u64) -> Self {
        assert!(
            on.is_subset(of) && on != of,
            "degree constraint requires X ⊂ Y"
        );
        assert!(bound >= 1, "degree bound must be positive");
        DegreeConstraint { on, of, bound }
    }

    /// A functional dependency `X → Y` (i.e. `deg(Y|X) ≤ 1`).
    pub fn fd(on: VarSet, of: VarSet) -> Self {
        Self::degree(on, of, 1)
    }

    /// `true` iff this is a cardinality constraint (`X = ∅`).
    pub fn is_cardinality(&self) -> bool {
        self.on.is_empty()
    }

    /// Checks whether `rel` *guards* this constraint: its schema is exactly
    /// `Y` and its realized degree respects the bound (Sec. 3.5, with the
    /// paper's `Y = F` restriction).
    pub fn guarded_by(&self, rel: &Relation) -> bool {
        rel.vars() == self.of && rel.degree(self.on) as u64 <= self.bound
    }
}

impl fmt::Display for DegreeConstraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_cardinality() {
            write!(f, "|{}| ≤ {}", self.of, self.bound)
        } else {
            write!(f, "deg({}|{}) ≤ {}", self.of, self.on, self.bound)
        }
    }
}

impl fmt::Debug for DegreeConstraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

/// A set of degree constraints (the paper's `DC`).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DcSet {
    constraints: Vec<DegreeConstraint>,
}

impl DcSet {
    /// The empty constraint set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds from a list, deduplicating and keeping, for each `(X, Y)`
    /// pair, only the tightest bound.
    pub fn from_vec(mut v: Vec<DegreeConstraint>) -> Self {
        v.sort_by_key(|c| (c.on, c.of, c.bound));
        v.dedup_by(|b, a| {
            if a.on == b.on && a.of == b.of {
                // keep the smaller bound (list is sorted, `a` has it)
                true
            } else {
                false
            }
        });
        DcSet { constraints: v }
    }

    /// Adds a constraint, tightening an existing `(X, Y)` entry if present.
    pub fn add(&mut self, c: DegreeConstraint) {
        for existing in &mut self.constraints {
            if existing.on == c.on && existing.of == c.of {
                existing.bound = existing.bound.min(c.bound);
                return;
            }
        }
        self.constraints.push(c);
        self.constraints.sort_by_key(|c| (c.on, c.of, c.bound));
    }

    /// Iterates constraints in canonical order.
    pub fn iter(&self) -> impl Iterator<Item = &DegreeConstraint> {
        self.constraints.iter()
    }

    /// Number of constraints.
    pub fn len(&self) -> usize {
        self.constraints.len()
    }

    /// `true` when no constraints are present.
    pub fn is_empty(&self) -> bool {
        self.constraints.is_empty()
    }

    /// The bound for an exact `(X, Y)` pair, if stated.
    pub fn bound(&self, on: VarSet, of: VarSet) -> Option<u64> {
        self.constraints
            .iter()
            .find(|c| c.on == on && c.of == of)
            .map(|c| c.bound)
    }

    /// The cardinality bound `N_Y` for a set `Y`, if stated.
    pub fn cardinality_of(&self, of: VarSet) -> Option<u64> {
        self.bound(VarSet::EMPTY, of)
    }

    /// All variables mentioned by any constraint.
    pub fn vars(&self) -> VarSet {
        self.constraints
            .iter()
            .fold(VarSet::EMPTY, |acc, c| acc.union(c.of))
    }

    /// Total of all cardinality bounds — the compile-time stand-in for the
    /// input size `N` (the circuit must be sized for the worst case).
    pub fn total_cardinality(&self) -> u64 {
        self.constraints
            .iter()
            .filter(|c| c.is_cardinality())
            .map(|c| c.bound)
            .sum()
    }

    /// Verifies that every constraint is satisfied by the relations in
    /// `guards` whose schema matches its `Y`. Returns the violated
    /// constraints (empty = conforming).
    pub fn violations<'a>(
        &'a self,
        guards: impl Iterator<Item = &'a Relation> + Clone,
    ) -> Vec<DegreeConstraint> {
        let mut out = Vec::new();
        for c in &self.constraints {
            for rel in guards.clone() {
                if rel.vars() == c.of && rel.degree(c.on) as u64 > c.bound {
                    out.push(*c);
                    break;
                }
            }
        }
        out
    }
}

impl FromIterator<DegreeConstraint> for DcSet {
    fn from_iter<T: IntoIterator<Item = DegreeConstraint>>(iter: T) -> Self {
        DcSet::from_vec(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Relation, Var};

    fn vs(bits: &[u32]) -> VarSet {
        bits.iter().map(|&i| Var(i)).collect()
    }

    #[test]
    fn constructors_and_kinds() {
        let card = DegreeConstraint::cardinality(vs(&[0, 1]), 100);
        assert!(card.is_cardinality());
        let deg = DegreeConstraint::degree(vs(&[0]), vs(&[0, 1]), 5);
        assert!(!deg.is_cardinality());
        let fd = DegreeConstraint::fd(vs(&[0]), vs(&[0, 1]));
        assert_eq!(fd.bound, 1);
        assert_eq!(card.to_string(), "|AB| ≤ 100");
        assert_eq!(deg.to_string(), "deg(AB|A) ≤ 5");
    }

    #[test]
    #[should_panic(expected = "X ⊂ Y")]
    fn degree_requires_proper_subset() {
        let _ = DegreeConstraint::degree(vs(&[0, 1]), vs(&[0, 1]), 5);
    }

    #[test]
    fn dcset_tightens_duplicates() {
        let mut dc = DcSet::new();
        dc.add(DegreeConstraint::cardinality(vs(&[0, 1]), 100));
        dc.add(DegreeConstraint::cardinality(vs(&[0, 1]), 50));
        dc.add(DegreeConstraint::cardinality(vs(&[0, 1]), 80));
        assert_eq!(dc.len(), 1);
        assert_eq!(dc.cardinality_of(vs(&[0, 1])), Some(50));

        let dc2 = DcSet::from_vec(vec![
            DegreeConstraint::cardinality(vs(&[0]), 10),
            DegreeConstraint::cardinality(vs(&[0]), 3),
        ]);
        assert_eq!(dc2.cardinality_of(vs(&[0])), Some(3));
    }

    #[test]
    fn guard_check_and_violations() {
        let rel = Relation::from_rows(
            vec![Var(0), Var(1)],
            vec![vec![1, 1], vec![1, 2], vec![2, 1]],
        );
        let ok = DegreeConstraint::degree(vs(&[0]), vs(&[0, 1]), 2);
        let bad = DegreeConstraint::degree(vs(&[0]), vs(&[0, 1]), 1);
        assert!(ok.guarded_by(&rel));
        assert!(!bad.guarded_by(&rel));

        let dc = DcSet::from_vec(vec![ok, bad]);
        // from_vec keeps the tightest per (X, Y): only `bad` (bound 1) stays
        assert_eq!(dc.len(), 1);
        let viol = dc.violations([&rel].into_iter());
        assert_eq!(viol.len(), 1);
        assert_eq!(viol[0].bound, 1);
    }

    #[test]
    fn totals() {
        let dc = DcSet::from_vec(vec![
            DegreeConstraint::cardinality(vs(&[0, 1]), 100),
            DegreeConstraint::cardinality(vs(&[1, 2]), 50),
            DegreeConstraint::degree(vs(&[1]), vs(&[1, 2]), 5),
        ]);
        assert_eq!(dc.total_cardinality(), 150);
        assert_eq!(dc.vars(), vs(&[0, 1, 2]));
    }
}
