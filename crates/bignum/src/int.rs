//! Sign-magnitude arbitrary-precision integer.

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Rem, Sub, SubAssign};

/// An arbitrary-precision signed integer.
///
/// Invariants:
/// * `limbs` is little-endian base-2^64 with no trailing zero limb;
/// * zero is `limbs == []` and `negative == false`.
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct Int {
    negative: bool,
    limbs: Vec<u64>,
}

impl Int {
    /// The integer zero.
    pub fn zero() -> Self {
        Int::default()
    }

    /// The integer one.
    pub fn one() -> Self {
        Int {
            negative: false,
            limbs: vec![1],
        }
    }

    /// Returns `true` iff `self == 0`.
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// Returns `true` iff `self < 0`.
    pub fn is_negative(&self) -> bool {
        self.negative
    }

    /// Returns `true` iff `self > 0`.
    pub fn is_positive(&self) -> bool {
        !self.negative && !self.is_zero()
    }

    /// Sign as `-1`, `0`, or `1`.
    pub fn signum(&self) -> i32 {
        if self.is_zero() {
            0
        } else if self.negative {
            -1
        } else {
            1
        }
    }

    /// Absolute value.
    pub fn abs(&self) -> Int {
        Int {
            negative: false,
            limbs: self.limbs.clone(),
        }
    }

    fn trim(&mut self) {
        while self.limbs.last() == Some(&0) {
            self.limbs.pop();
        }
        if self.limbs.is_empty() {
            self.negative = false;
        }
    }

    fn from_limbs(negative: bool, limbs: Vec<u64>) -> Int {
        let mut v = Int { negative, limbs };
        v.trim();
        v
    }

    /// Compare magnitudes, ignoring sign.
    fn cmp_abs(a: &[u64], b: &[u64]) -> Ordering {
        if a.len() != b.len() {
            return a.len().cmp(&b.len());
        }
        for i in (0..a.len()).rev() {
            match a[i].cmp(&b[i]) {
                Ordering::Equal => {}
                ord => return ord,
            }
        }
        Ordering::Equal
    }

    fn add_abs(a: &[u64], b: &[u64]) -> Vec<u64> {
        let (long, short) = if a.len() >= b.len() { (a, b) } else { (b, a) };
        let mut out = Vec::with_capacity(long.len() + 1);
        let mut carry = 0u64;
        for i in 0..long.len() {
            let x = long[i];
            let y = if i < short.len() { short[i] } else { 0 };
            let (s1, c1) = x.overflowing_add(y);
            let (s2, c2) = s1.overflowing_add(carry);
            out.push(s2);
            carry = u64::from(c1) + u64::from(c2);
        }
        if carry != 0 {
            out.push(carry);
        }
        out
    }

    /// `a - b`, requires `|a| >= |b|`.
    fn sub_abs(a: &[u64], b: &[u64]) -> Vec<u64> {
        debug_assert!(Int::cmp_abs(a, b) != Ordering::Less);
        let mut out = Vec::with_capacity(a.len());
        let mut borrow = 0u64;
        for i in 0..a.len() {
            let y = if i < b.len() { b[i] } else { 0 };
            let (d1, b1) = a[i].overflowing_sub(y);
            let (d2, b2) = d1.overflowing_sub(borrow);
            out.push(d2);
            borrow = u64::from(b1) + u64::from(b2);
        }
        debug_assert_eq!(borrow, 0);
        while out.last() == Some(&0) {
            out.pop();
        }
        out
    }

    fn mul_abs(a: &[u64], b: &[u64]) -> Vec<u64> {
        if a.is_empty() || b.is_empty() {
            return Vec::new();
        }
        let mut out = vec![0u64; a.len() + b.len()];
        for (i, &x) in a.iter().enumerate() {
            if x == 0 {
                continue;
            }
            let mut carry = 0u128;
            for (j, &y) in b.iter().enumerate() {
                let cur = out[i + j] as u128 + (x as u128) * (y as u128) + carry;
                out[i + j] = cur as u64;
                carry = cur >> 64;
            }
            let mut k = i + b.len();
            while carry != 0 {
                let cur = out[k] as u128 + carry;
                out[k] = cur as u64;
                carry = cur >> 64;
                k += 1;
            }
        }
        while out.last() == Some(&0) {
            out.pop();
        }
        out
    }

    /// Schoolbook division of magnitudes: returns `(quotient, remainder)`.
    ///
    /// Uses the classical shift-and-subtract algorithm on bits for
    /// simplicity; values in this workspace are small (LP tableaus over a
    /// handful of limbs), where this is plenty fast and easy to audit.
    fn divmod_abs(a: &[u64], b: &[u64]) -> (Vec<u64>, Vec<u64>) {
        assert!(!b.is_empty(), "division by zero");
        if Int::cmp_abs(a, b) == Ordering::Less {
            return (Vec::new(), a.to_vec());
        }
        // Fast path: single-limb divisor.
        if b.len() == 1 {
            let d = b[0] as u128;
            let mut q = vec![0u64; a.len()];
            let mut rem: u128 = 0;
            for i in (0..a.len()).rev() {
                let cur = (rem << 64) | a[i] as u128;
                q[i] = (cur / d) as u64;
                rem = cur % d;
            }
            while q.last() == Some(&0) {
                q.pop();
            }
            let r = if rem == 0 {
                Vec::new()
            } else {
                vec![rem as u64]
            };
            return (q, r);
        }
        let bits = a.len() * 64;
        let mut q = vec![0u64; a.len()];
        let mut rem: Vec<u64> = Vec::with_capacity(b.len() + 1);
        for bit in (0..bits).rev() {
            // rem = rem << 1 | a.bit(bit)
            let mut carry = (a[bit / 64] >> (bit % 64)) & 1;
            for limb in rem.iter_mut() {
                let new_carry = *limb >> 63;
                *limb = (*limb << 1) | carry;
                carry = new_carry;
            }
            if carry != 0 {
                rem.push(carry);
            }
            if Int::cmp_abs(&rem, b) != Ordering::Less {
                rem = Int::sub_abs(&rem, b);
                q[bit / 64] |= 1u64 << (bit % 64);
            }
        }
        while q.last() == Some(&0) {
            q.pop();
        }
        (q, rem)
    }

    /// Truncated division with remainder: `self = q * rhs + r` with
    /// `|r| < |rhs|` and `r` carrying the sign of `self` (like Rust's `/`).
    ///
    /// # Panics
    /// Panics if `rhs == 0`.
    pub fn divmod(&self, rhs: &Int) -> (Int, Int) {
        let (q, r) = Int::divmod_abs(&self.limbs, &rhs.limbs);
        let q = Int::from_limbs(self.negative != rhs.negative, q);
        let r = Int::from_limbs(self.negative, r);
        (q, r)
    }

    /// Greatest common divisor (always non-negative).
    pub fn gcd(&self, rhs: &Int) -> Int {
        let mut a = self.abs();
        let mut b = rhs.abs();
        while !b.is_zero() {
            let (_, r) = a.divmod(&b);
            a = b;
            b = r.abs();
        }
        a
    }

    /// `2^exp`.
    pub fn pow2(exp: u32) -> Int {
        let limb = (exp / 64) as usize;
        let mut limbs = vec![0u64; limb + 1];
        limbs[limb] = 1u64 << (exp % 64);
        Int::from_limbs(false, limbs)
    }

    /// `self^exp` by binary exponentiation.
    pub fn pow(&self, mut exp: u32) -> Int {
        let mut base = self.clone();
        let mut acc = Int::one();
        while exp > 0 {
            if exp & 1 == 1 {
                acc = &acc * &base;
            }
            exp >>= 1;
            if exp > 0 {
                base = &base * &base;
            }
        }
        acc
    }

    /// Number of bits in the magnitude (`0` for zero).
    pub fn bits(&self) -> u64 {
        match self.limbs.last() {
            None => 0,
            Some(&top) => (self.limbs.len() as u64) * 64 - u64::from(top.leading_zeros()),
        }
    }

    /// Lossy conversion to `f64` (for reporting only, never for planning).
    pub fn to_f64(&self) -> f64 {
        let mut v = 0.0f64;
        for &limb in self.limbs.iter().rev() {
            v = v * 2f64.powi(64) + limb as f64;
        }
        if self.negative {
            -v
        } else {
            v
        }
    }

    /// Exact conversion to `i64` if the value fits.
    pub fn to_i64(&self) -> Option<i64> {
        match self.limbs.len() {
            0 => Some(0),
            1 => {
                let m = self.limbs[0];
                if self.negative {
                    if m <= 1u64 << 63 {
                        Some((m as i128).wrapping_neg() as i64)
                    } else {
                        None
                    }
                } else {
                    i64::try_from(m).ok()
                }
            }
            _ => None,
        }
    }

    /// Exact conversion to `u64` if the value fits.
    pub fn to_u64(&self) -> Option<u64> {
        if self.negative {
            return None;
        }
        match self.limbs.len() {
            0 => Some(0),
            1 => Some(self.limbs[0]),
            _ => None,
        }
    }
}

impl From<i64> for Int {
    fn from(v: i64) -> Self {
        let negative = v < 0;
        let mag = v.unsigned_abs();
        Int::from_limbs(negative, vec![mag])
    }
}

impl From<u64> for Int {
    fn from(v: u64) -> Self {
        Int::from_limbs(false, vec![v])
    }
}

impl From<i32> for Int {
    fn from(v: i32) -> Self {
        Int::from(v as i64)
    }
}

impl From<usize> for Int {
    fn from(v: usize) -> Self {
        Int::from(v as u64)
    }
}

impl PartialOrd for Int {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Int {
    fn cmp(&self, other: &Self) -> Ordering {
        match (self.negative, other.negative) {
            (false, true) => Ordering::Greater,
            (true, false) => Ordering::Less,
            (false, false) => Int::cmp_abs(&self.limbs, &other.limbs),
            (true, true) => Int::cmp_abs(&other.limbs, &self.limbs),
        }
    }
}

impl Neg for Int {
    type Output = Int;
    fn neg(mut self) -> Int {
        if !self.is_zero() {
            self.negative = !self.negative;
        }
        self
    }
}

impl Neg for &Int {
    type Output = Int;
    fn neg(self) -> Int {
        -self.clone()
    }
}

impl Add for &Int {
    type Output = Int;
    fn add(self, rhs: &Int) -> Int {
        if self.negative == rhs.negative {
            Int::from_limbs(self.negative, Int::add_abs(&self.limbs, &rhs.limbs))
        } else {
            match Int::cmp_abs(&self.limbs, &rhs.limbs) {
                Ordering::Equal => Int::zero(),
                Ordering::Greater => {
                    Int::from_limbs(self.negative, Int::sub_abs(&self.limbs, &rhs.limbs))
                }
                Ordering::Less => {
                    Int::from_limbs(rhs.negative, Int::sub_abs(&rhs.limbs, &self.limbs))
                }
            }
        }
    }
}

impl Sub for &Int {
    type Output = Int;
    fn sub(self, rhs: &Int) -> Int {
        self + &(-rhs)
    }
}

impl Mul for &Int {
    type Output = Int;
    fn mul(self, rhs: &Int) -> Int {
        Int::from_limbs(
            self.negative != rhs.negative,
            Int::mul_abs(&self.limbs, &rhs.limbs),
        )
    }
}

impl Div for &Int {
    type Output = Int;
    fn div(self, rhs: &Int) -> Int {
        self.divmod(rhs).0
    }
}

impl Rem for &Int {
    type Output = Int;
    fn rem(self, rhs: &Int) -> Int {
        self.divmod(rhs).1
    }
}

macro_rules! forward_owned {
    ($($trait:ident :: $method:ident),*) => {$(
        impl $trait for Int {
            type Output = Int;
            fn $method(self, rhs: Int) -> Int {
                $trait::$method(&self, &rhs)
            }
        }
        impl $trait<&Int> for Int {
            type Output = Int;
            fn $method(self, rhs: &Int) -> Int {
                $trait::$method(&self, rhs)
            }
        }
        impl $trait<Int> for &Int {
            type Output = Int;
            fn $method(self, rhs: Int) -> Int {
                $trait::$method(self, &rhs)
            }
        }
    )*};
}

forward_owned!(Add::add, Sub::sub, Mul::mul, Div::div, Rem::rem);

impl AddAssign<&Int> for Int {
    fn add_assign(&mut self, rhs: &Int) {
        *self = &*self + rhs;
    }
}

impl SubAssign<&Int> for Int {
    fn sub_assign(&mut self, rhs: &Int) {
        *self = &*self - rhs;
    }
}

impl MulAssign<&Int> for Int {
    fn mul_assign(&mut self, rhs: &Int) {
        *self = &*self * rhs;
    }
}

impl fmt::Display for Int {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return write!(f, "0");
        }
        // Repeated division by 10^19 (largest power of ten in a u64).
        const CHUNK: u64 = 10_000_000_000_000_000_000;
        let mut digits: Vec<String> = Vec::new();
        let mut cur = self.limbs.clone();
        let chunk = [CHUNK];
        while !cur.is_empty() {
            let (q, r) = Int::divmod_abs(&cur, &chunk);
            let rem = r.first().copied().unwrap_or(0);
            cur = q;
            if cur.is_empty() {
                digits.push(format!("{rem}"));
            } else {
                digits.push(format!("{rem:019}"));
            }
        }
        if self.negative {
            write!(f, "-")?;
        }
        for d in digits.iter().rev() {
            write!(f, "{d}")?;
        }
        Ok(())
    }
}

impl fmt::Debug for Int {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl std::str::FromStr for Int {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (negative, digits) = match s.strip_prefix('-') {
            Some(rest) => (true, rest),
            None => (false, s.strip_prefix('+').unwrap_or(s)),
        };
        if digits.is_empty() || !digits.bytes().all(|b| b.is_ascii_digit()) {
            return Err(format!("invalid integer literal: {s:?}"));
        }
        let ten = Int::from(10i64);
        let mut acc = Int::zero();
        for b in digits.bytes() {
            acc = &(&acc * &ten) + &Int::from(i64::from(b - b'0'));
        }
        if negative {
            acc = -acc;
        }
        Ok(acc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn i(v: i64) -> Int {
        Int::from(v)
    }

    #[test]
    fn small_arithmetic() {
        assert_eq!(&i(2) + &i(3), i(5));
        assert_eq!(&i(2) - &i(3), i(-1));
        assert_eq!(&i(-2) * &i(3), i(-6));
        assert_eq!(&i(7) / &i(2), i(3));
        assert_eq!(&i(7) % &i(2), i(1));
        assert_eq!(&i(-7) / &i(2), i(-3));
        assert_eq!(&i(-7) % &i(2), i(-1));
        assert_eq!(&i(0) + &i(0), Int::zero());
    }

    #[test]
    fn multi_limb_carry_chain() {
        let big = Int::pow2(200);
        let one = Int::one();
        let less = &big - &one;
        assert_eq!(&less + &one, big);
        assert_eq!(less.bits(), 200);
        assert_eq!(big.bits(), 201);
    }

    #[test]
    fn multiplication_matches_pow() {
        let mut acc = Int::one();
        let three = i(3);
        for _ in 0..40 {
            acc = &acc * &three;
        }
        assert_eq!(acc, three.pow(40));
        assert_eq!(acc.to_string(), "12157665459056928801");
    }

    #[test]
    fn divmod_roundtrip_multi_limb() {
        let a = Int::pow2(150) + i(12345);
        let b = Int::pow2(70) + i(99);
        let (q, r) = a.divmod(&b);
        assert_eq!(&(&q * &b) + &r, a);
        assert!(r.abs() < b.abs());
    }

    #[test]
    fn gcd_basics() {
        assert_eq!(i(12).gcd(&i(18)), i(6));
        assert_eq!(i(-12).gcd(&i(18)), i(6));
        assert_eq!(i(0).gcd(&i(5)), i(5));
        assert_eq!(i(5).gcd(&i(0)), i(5));
        assert_eq!(Int::pow2(100).gcd(&Int::pow2(64)), Int::pow2(64));
    }

    #[test]
    fn ordering_with_signs() {
        assert!(i(-5) < i(-4));
        assert!(i(-1) < i(0));
        assert!(i(0) < i(1));
        assert!(Int::pow2(100) > Int::pow2(99));
        assert!(-Int::pow2(100) < -Int::pow2(99));
    }

    #[test]
    fn display_and_parse_roundtrip() {
        for s in [
            "0",
            "1",
            "-1",
            "18446744073709551616",
            "-340282366920938463463374607431768211456",
        ] {
            let v: Int = s.parse().unwrap();
            assert_eq!(v.to_string(), s);
        }
        assert!("".parse::<Int>().is_err());
        assert!("12a".parse::<Int>().is_err());
    }

    #[test]
    fn conversions() {
        assert_eq!(i(42).to_i64(), Some(42));
        assert_eq!(i(-42).to_i64(), Some(-42));
        assert_eq!(Int::from(u64::MAX).to_i64(), None);
        assert_eq!(Int::from(u64::MAX).to_u64(), Some(u64::MAX));
        assert_eq!(i(-1).to_u64(), None);
        assert_eq!(i(i64::MIN).to_i64(), Some(i64::MIN));
        assert!((Int::pow2(70).to_f64() - 2f64.powi(70)).abs() < 1e6);
    }

    #[test]
    fn pow2_limb_boundaries() {
        assert_eq!(Int::pow2(0), i(1));
        assert_eq!(Int::pow2(63), Int::from(1u64 << 63));
        assert_eq!(Int::pow2(64).to_string(), "18446744073709551616");
        assert_eq!(&Int::pow2(64) % &Int::from(u64::MAX), i(1));
    }
}
