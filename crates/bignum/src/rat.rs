//! Exact rational numbers over [`Int`].

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

use crate::Int;

/// An exact rational number.
///
/// Invariants: `den > 0` and `gcd(num, den) == 1` (with `0` stored as `0/1`).
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Rat {
    num: Int,
    den: Int,
}

impl Rat {
    /// Builds `num / den`, normalizing sign and common factors.
    ///
    /// # Panics
    /// Panics if `den == 0`.
    pub fn new(num: Int, den: Int) -> Rat {
        assert!(!den.is_zero(), "rational with zero denominator");
        let mut num = num;
        let mut den = den;
        if den.is_negative() {
            num = -num;
            den = -den;
        }
        let g = num.gcd(&den);
        if g > Int::one() {
            num = &num / &g;
            den = &den / &g;
        }
        if num.is_zero() {
            den = Int::one();
        }
        Rat { num, den }
    }

    /// The rational zero.
    pub fn zero() -> Rat {
        Rat {
            num: Int::zero(),
            den: Int::one(),
        }
    }

    /// The rational one.
    pub fn one() -> Rat {
        Rat {
            num: Int::one(),
            den: Int::one(),
        }
    }

    /// Numerator (sign-carrying).
    pub fn numer(&self) -> &Int {
        &self.num
    }

    /// Denominator (always positive).
    pub fn denom(&self) -> &Int {
        &self.den
    }

    /// Returns `true` iff `self == 0`.
    pub fn is_zero(&self) -> bool {
        self.num.is_zero()
    }

    /// Returns `true` iff `self < 0`.
    pub fn is_negative(&self) -> bool {
        self.num.is_negative()
    }

    /// Returns `true` iff `self > 0`.
    pub fn is_positive(&self) -> bool {
        self.num.is_positive()
    }

    /// Returns `true` iff the value is an integer.
    pub fn is_integer(&self) -> bool {
        self.den == Int::one()
    }

    /// Sign as `-1`, `0`, or `1`.
    pub fn signum(&self) -> i32 {
        self.num.signum()
    }

    /// Absolute value.
    pub fn abs(&self) -> Rat {
        Rat {
            num: self.num.abs(),
            den: self.den.clone(),
        }
    }

    /// Multiplicative inverse.
    ///
    /// # Panics
    /// Panics if `self == 0`.
    pub fn recip(&self) -> Rat {
        Rat::new(self.den.clone(), self.num.clone())
    }

    /// Floor of the rational value as an [`Int`].
    pub fn floor(&self) -> Int {
        let (q, r) = self.num.divmod(&self.den);
        if r.is_negative() {
            &q - &Int::one()
        } else {
            q
        }
    }

    /// Ceiling of the rational value as an [`Int`].
    pub fn ceil(&self) -> Int {
        -((-self).floor())
    }

    /// Lossy conversion to `f64` (for display/reporting only).
    pub fn to_f64(&self) -> f64 {
        self.num.to_f64() / self.den.to_f64()
    }

    /// `self^exp` for a (possibly negative) integer exponent.
    ///
    /// # Panics
    /// Panics if `self == 0` and `exp < 0`.
    pub fn pow(&self, exp: i32) -> Rat {
        if exp >= 0 {
            Rat {
                num: self.num.pow(exp as u32),
                den: self.den.pow(exp as u32),
            }
        } else {
            self.recip().pow(-exp)
        }
    }

    /// Exact conversion to `i64` if the value is an integer that fits.
    pub fn to_i64(&self) -> Option<i64> {
        if self.is_integer() {
            self.num.to_i64()
        } else {
            None
        }
    }

    /// The smaller of two rationals.
    pub fn min(self, other: Rat) -> Rat {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// The larger of two rationals.
    pub fn max(self, other: Rat) -> Rat {
        if self >= other {
            self
        } else {
            other
        }
    }
}

impl Default for Rat {
    fn default() -> Self {
        Rat::zero()
    }
}

impl From<i64> for Rat {
    fn from(v: i64) -> Self {
        Rat {
            num: Int::from(v),
            den: Int::one(),
        }
    }
}

impl From<Int> for Rat {
    fn from(v: Int) -> Self {
        Rat {
            num: v,
            den: Int::one(),
        }
    }
}

impl From<u64> for Rat {
    fn from(v: u64) -> Self {
        Rat {
            num: Int::from(v),
            den: Int::one(),
        }
    }
}

impl PartialOrd for Rat {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Rat {
    fn cmp(&self, other: &Self) -> Ordering {
        // a/b vs c/d  <=>  a*d vs c*b   (b, d > 0)
        (&self.num * &other.den).cmp(&(&other.num * &self.den))
    }
}

impl Neg for Rat {
    type Output = Rat;
    fn neg(self) -> Rat {
        Rat {
            num: -self.num,
            den: self.den,
        }
    }
}

impl Neg for &Rat {
    type Output = Rat;
    fn neg(self) -> Rat {
        -self.clone()
    }
}

impl Add for &Rat {
    type Output = Rat;
    fn add(self, rhs: &Rat) -> Rat {
        Rat::new(
            &(&self.num * &rhs.den) + &(&rhs.num * &self.den),
            &self.den * &rhs.den,
        )
    }
}

impl Sub for &Rat {
    type Output = Rat;
    fn sub(self, rhs: &Rat) -> Rat {
        Rat::new(
            &(&self.num * &rhs.den) - &(&rhs.num * &self.den),
            &self.den * &rhs.den,
        )
    }
}

impl Mul for &Rat {
    type Output = Rat;
    fn mul(self, rhs: &Rat) -> Rat {
        Rat::new(&self.num * &rhs.num, &self.den * &rhs.den)
    }
}

impl Div for &Rat {
    type Output = Rat;
    fn div(self, rhs: &Rat) -> Rat {
        assert!(!rhs.is_zero(), "rational division by zero");
        Rat::new(&self.num * &rhs.den, &self.den * &rhs.num)
    }
}

macro_rules! forward_owned_rat {
    ($($trait:ident :: $method:ident),*) => {$(
        impl $trait for Rat {
            type Output = Rat;
            fn $method(self, rhs: Rat) -> Rat {
                $trait::$method(&self, &rhs)
            }
        }
        impl $trait<&Rat> for Rat {
            type Output = Rat;
            fn $method(self, rhs: &Rat) -> Rat {
                $trait::$method(&self, rhs)
            }
        }
        impl $trait<Rat> for &Rat {
            type Output = Rat;
            fn $method(self, rhs: Rat) -> Rat {
                $trait::$method(self, &rhs)
            }
        }
    )*};
}

forward_owned_rat!(Add::add, Sub::sub, Mul::mul, Div::div);

impl AddAssign<&Rat> for Rat {
    fn add_assign(&mut self, rhs: &Rat) {
        *self = &*self + rhs;
    }
}

impl SubAssign<&Rat> for Rat {
    fn sub_assign(&mut self, rhs: &Rat) {
        *self = &*self - rhs;
    }
}

impl MulAssign<&Rat> for Rat {
    fn mul_assign(&mut self, rhs: &Rat) {
        *self = &*self * rhs;
    }
}

impl fmt::Display for Rat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_integer() {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

impl fmt::Debug for Rat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl std::str::FromStr for Rat {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.split_once('/') {
            Some((p, q)) => {
                let num: Int = p.trim().parse()?;
                let den: Int = q.trim().parse()?;
                if den.is_zero() {
                    return Err(format!("zero denominator in {s:?}"));
                }
                Ok(Rat::new(num, den))
            }
            None => Ok(Rat::from(s.trim().parse::<Int>()?)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rat;

    #[test]
    fn normalization() {
        assert_eq!(rat(2, 4), rat(1, 2));
        assert_eq!(rat(-2, -4), rat(1, 2));
        assert_eq!(rat(2, -4), rat(-1, 2));
        assert_eq!(rat(0, 7), Rat::zero());
        assert_eq!(rat(0, 7).denom(), &Int::one());
    }

    #[test]
    fn arithmetic() {
        assert_eq!(&rat(1, 2) + &rat(1, 3), rat(5, 6));
        assert_eq!(&rat(1, 2) - &rat(1, 3), rat(1, 6));
        assert_eq!(&rat(2, 3) * &rat(3, 4), rat(1, 2));
        assert_eq!(&rat(2, 3) / &rat(4, 3), rat(1, 2));
        assert_eq!(-rat(1, 2), rat(-1, 2));
    }

    #[test]
    fn ordering() {
        assert!(rat(1, 3) < rat(1, 2));
        assert!(rat(-1, 2) < rat(-1, 3));
        assert!(rat(7, 7) == Rat::one());
        assert_eq!(rat(3, 2).max(rat(5, 4)), rat(3, 2));
        assert_eq!(rat(3, 2).min(rat(5, 4)), rat(5, 4));
    }

    #[test]
    fn floor_ceil() {
        assert_eq!(rat(7, 2).floor(), Int::from(3i64));
        assert_eq!(rat(7, 2).ceil(), Int::from(4i64));
        assert_eq!(rat(-7, 2).floor(), Int::from(-4i64));
        assert_eq!(rat(-7, 2).ceil(), Int::from(-3i64));
        assert_eq!(rat(6, 2).floor(), Int::from(3i64));
        assert_eq!(rat(6, 2).ceil(), Int::from(3i64));
    }

    #[test]
    fn pow_and_recip() {
        assert_eq!(rat(2, 3).pow(3), rat(8, 27));
        assert_eq!(rat(2, 3).pow(-2), rat(9, 4));
        assert_eq!(rat(2, 3).recip(), rat(3, 2));
        assert_eq!(rat(-2, 3).recip(), rat(-3, 2));
    }

    #[test]
    #[should_panic(expected = "zero denominator")]
    fn zero_denominator_panics() {
        let _ = Rat::new(Int::one(), Int::zero());
    }

    #[test]
    fn display_parse_roundtrip() {
        for s in ["0", "5", "-5", "1/2", "-7/3"] {
            let v: Rat = s.parse().unwrap();
            assert_eq!(v.to_string(), s);
        }
        assert_eq!("4/8".parse::<Rat>().unwrap(), rat(1, 2));
        assert!("1/0".parse::<Rat>().is_err());
    }

    #[test]
    fn to_i64_only_for_integers() {
        assert_eq!(rat(6, 2).to_i64(), Some(3));
        assert_eq!(rat(1, 2).to_i64(), None);
    }
}
