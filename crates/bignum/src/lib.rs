//! Arbitrary-precision signed integers ([`Int`]) and exact rationals
//! ([`Rat`]).
//!
//! The query planner computes polymatroid bounds, fractional edge covers,
//! hypertree widths, and Shannon-flow proof-sequence weights by exact linear
//! programming. Floating point is unacceptable there: a bound that is off by
//! one ulp can mis-rank generalized hypertree decompositions or make a proof
//! sequence appear (in)feasible. This crate provides the minimal exact
//! arithmetic those computations need, implemented from scratch so the
//! workspace stays dependency-free.
//!
//! Design notes:
//! * [`Int`] is sign-magnitude over base-2^64 limbs, little-endian, with the
//!   invariant that the limb vector never has trailing zero limbs and zero is
//!   represented as an empty limb vector with positive sign.
//! * [`Rat`] is a normalized fraction (`gcd(num, den) = 1`, `den > 0`).
//! * Operations are allocation-conscious but tuned for the small values (a
//!   few limbs) that dominate LP pivoting, not for cryptographic sizes.

mod int;
mod rat;

pub use int::Int;
pub use rat::Rat;

/// Convenience constructor for the rational `p / q`.
///
/// # Panics
/// Panics if `q == 0`.
pub fn rat(p: i64, q: i64) -> Rat {
    Rat::new(Int::from(p), Int::from(q))
}
