//! Property-based tests: `Int`/`Rat` must satisfy the usual ring/field laws
//! and agree with `i128` arithmetic on values that fit.

use proptest::prelude::*;
use qec_bignum::{Int, Rat};

fn int_of(v: i128) -> Int {
    let s = v.to_string();
    s.parse().expect("decimal parse")
}

proptest! {
    #[test]
    fn int_matches_i128_add_sub_mul(a in any::<i64>(), b in any::<i64>()) {
        let (ia, ib) = (Int::from(a), Int::from(b));
        prop_assert_eq!(&ia + &ib, int_of(a as i128 + b as i128));
        prop_assert_eq!(&ia - &ib, int_of(a as i128 - b as i128));
        prop_assert_eq!(&ia * &ib, int_of(a as i128 * b as i128));
    }

    #[test]
    fn int_divmod_matches_i128(a in any::<i64>(), b in any::<i64>().prop_filter("nonzero", |v| *v != 0)) {
        let (q, r) = Int::from(a).divmod(&Int::from(b));
        prop_assert_eq!(q, int_of(a as i128 / b as i128));
        prop_assert_eq!(r, int_of(a as i128 % b as i128));
    }

    #[test]
    fn int_divmod_roundtrip_large(a in any::<[u64; 4]>(), b in any::<[u64; 2]>().prop_filter("nonzero", |v| v.iter().any(|&x| x != 0))) {
        // Build multi-limb values deterministically from random limbs.
        let mut big_a = Int::zero();
        for &limb in &a {
            big_a = &(&big_a * &Int::pow2(64)) + &Int::from(limb);
        }
        let mut big_b = Int::zero();
        for &limb in &b {
            big_b = &(&big_b * &Int::pow2(64)) + &Int::from(limb);
        }
        let (q, r) = big_a.divmod(&big_b);
        prop_assert_eq!(&(&q * &big_b) + &r, big_a);
        prop_assert!(r.abs() < big_b.abs());
    }

    #[test]
    fn int_gcd_divides_both(a in any::<i64>(), b in any::<i64>()) {
        let g = Int::from(a).gcd(&Int::from(b));
        if !g.is_zero() {
            prop_assert!((&Int::from(a) % &g).is_zero());
            prop_assert!((&Int::from(b) % &g).is_zero());
        } else {
            prop_assert_eq!(a, 0);
            prop_assert_eq!(b, 0);
        }
    }

    #[test]
    fn int_display_parse_roundtrip(a in any::<[u64; 3]>(), neg in any::<bool>()) {
        let mut v = Int::zero();
        for &limb in &a {
            v = &(&v * &Int::pow2(64)) + &Int::from(limb);
        }
        if neg { v = -v; }
        let s = v.to_string();
        prop_assert_eq!(s.parse::<Int>().unwrap(), v);
    }

    #[test]
    fn rat_field_laws(p1 in -1000i64..1000, q1 in 1i64..1000, p2 in -1000i64..1000, q2 in 1i64..1000, p3 in -1000i64..1000, q3 in 1i64..1000) {
        let a = Rat::new(Int::from(p1), Int::from(q1));
        let b = Rat::new(Int::from(p2), Int::from(q2));
        let c = Rat::new(Int::from(p3), Int::from(q3));
        // commutativity + associativity + distributivity
        prop_assert_eq!(&a + &b, &b + &a);
        prop_assert_eq!(&a * &b, &b * &a);
        prop_assert_eq!(&(&a + &b) + &c, &a + &(&b + &c));
        prop_assert_eq!(&(&a * &b) * &c, &a * &(&b * &c));
        prop_assert_eq!(&a * &(&b + &c), &(&a * &b) + &(&a * &c));
        // inverses
        prop_assert_eq!(&a - &a, Rat::zero());
        if !a.is_zero() {
            prop_assert_eq!(&a / &a, Rat::one());
            prop_assert_eq!(&a * &a.recip(), Rat::one());
        }
    }

    #[test]
    fn rat_ordering_consistent_with_f64(p1 in -10000i64..10000, q1 in 1i64..10000, p2 in -10000i64..10000, q2 in 1i64..10000) {
        let a = Rat::new(Int::from(p1), Int::from(q1));
        let b = Rat::new(Int::from(p2), Int::from(q2));
        let fa = p1 as f64 / q1 as f64;
        let fb = p2 as f64 / q2 as f64;
        if (fa - fb).abs() > 1e-9 {
            prop_assert_eq!(a < b, fa < fb);
        }
    }

    #[test]
    fn rat_floor_ceil_bracket(p in -100000i64..100000, q in 1i64..1000) {
        let a = Rat::new(Int::from(p), Int::from(q));
        let fl = Rat::from(a.floor());
        let ce = Rat::from(a.ceil());
        prop_assert!(fl <= a && a <= ce);
        prop_assert!(&ce - &fl <= Rat::one());
        if a.is_integer() {
            prop_assert_eq!(fl, ce);
        }
    }
}
