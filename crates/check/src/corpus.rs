//! Corpus file format: one [`Case`] per `*.case` text file.
//!
//! ```text
//! qec-case v1
//! seed 42
//! n 4
//! options optimize=1 threads=3 traced=0
//! query Q(a, c) :- R0(a, b), R1(b, c)
//! rel R0 2
//! 0,1
//! 2,3
//! rel R1 0
//! ```
//!
//! `rel <name> <count>` is followed by exactly `count` CSV rows whose
//! columns are in the sorted variable order of that atom in the parsed
//! query (the same convention [`Case::materialize`] uses). Blank lines
//! and `#` comments are ignored between sections. Parsing is strictly
//! error-returning — corpus files come from disk and must never panic
//! the replayer.

use crate::case::{Case, EngineOptions};
use std::path::{Path, PathBuf};

/// Serializes `case` in the corpus format; [`parse_case`] inverts this
/// byte-for-byte modulo insignificant whitespace.
pub fn format_case(case: &Case) -> String {
    let mut out = String::new();
    out.push_str("qec-case v1\n");
    out.push_str(&format!("seed {}\n", case.seed));
    out.push_str(&format!("n {}\n", case.n));
    out.push_str(&format!(
        "options optimize={} threads={} traced={}\n",
        case.options.optimize as u8, case.options.threads, case.options.traced as u8
    ));
    out.push_str(&format!("query {}\n", case.query));
    for (name, rows) in &case.rels {
        out.push_str(&format!("rel {} {}\n", name, rows.len()));
        for row in rows {
            let cells: Vec<String> = row.iter().map(u64::to_string).collect();
            out.push_str(&cells.join(","));
            out.push('\n');
        }
    }
    out
}

fn err(line: usize, msg: impl std::fmt::Display) -> String {
    format!("case line {line}: {msg}")
}

/// Parses the corpus format.
///
/// # Errors
/// Returns `"case line N: <reason>"` on any malformed input.
pub fn parse_case(text: &str) -> Result<Case, String> {
    let mut lines = text
        .lines()
        .enumerate()
        .map(|(i, l)| (i + 1, l.trim()))
        .filter(|(_, l)| !l.is_empty() && !l.starts_with('#'));
    let mut next = |what: &str| {
        lines
            .next()
            .ok_or_else(|| format!("case ended early, expected {what}"))
    };

    let (ln, header) = next("header")?;
    if header != "qec-case v1" {
        return Err(err(
            ln,
            format!("expected \"qec-case v1\", found {header:?}"),
        ));
    }

    let field = |(ln, line): (usize, &str), key: &str| -> Result<String, String> {
        line.strip_prefix(key)
            .and_then(|r| r.strip_prefix(' '))
            .map(str::to_string)
            .ok_or_else(|| err(ln, format!("expected \"{key} ...\", found {line:?}")))
    };
    let parse_u64 = |ln: usize, what: &str, s: &str| -> Result<u64, String> {
        s.parse::<u64>()
            .map_err(|e| err(ln, format!("bad {what} {s:?}: {e}")))
    };

    let at = next("seed")?;
    let seed = parse_u64(at.0, "seed", &field(at, "seed")?)?;
    let at = next("n")?;
    let n = parse_u64(at.0, "n", &field(at, "n")?)?;

    let at = next("options")?;
    let opts_line = field(at, "options")?;
    let mut optimize = None;
    let mut threads = None;
    let mut traced = None;
    for tok in opts_line.split_whitespace() {
        let (key, val) = tok
            .split_once('=')
            .ok_or_else(|| err(at.0, format!("bad option token {tok:?}")))?;
        let v = parse_u64(at.0, key, val)?;
        match key {
            "optimize" => optimize = Some(v != 0),
            "threads" => threads = Some(v as usize),
            "traced" => traced = Some(v != 0),
            _ => return Err(err(at.0, format!("unknown option {key:?}"))),
        }
    }
    let options = EngineOptions {
        optimize: optimize.ok_or_else(|| err(at.0, "missing optimize="))?,
        threads: threads.ok_or_else(|| err(at.0, "missing threads="))?,
        traced: traced.ok_or_else(|| err(at.0, "missing traced="))?,
    };
    if options.threads == 0 || options.threads > 64 {
        return Err(err(
            at.0,
            format!("threads must be in 1..=64, found {}", options.threads),
        ));
    }

    let at = next("query")?;
    let query = field(at, "query")?;

    let mut rels: Vec<(String, Vec<Vec<u64>>)> = Vec::new();
    while let Some((ln, line)) = lines.next() {
        let rest = line.strip_prefix("rel ").ok_or_else(|| {
            err(
                ln,
                format!("expected \"rel <name> <count>\", found {line:?}"),
            )
        })?;
        let mut toks = rest.split_whitespace();
        let name = toks
            .next()
            .ok_or_else(|| err(ln, "missing relation name"))?
            .to_string();
        let count_tok = toks.next().ok_or_else(|| err(ln, "missing row count"))?;
        let count = parse_u64(ln, "row count", count_tok)? as usize;
        if toks.next().is_some() {
            return Err(err(
                ln,
                format!("trailing tokens after \"rel {name} {count_tok}\""),
            ));
        }
        if rels.iter().any(|(n, _)| *n == name) {
            return Err(err(ln, format!("duplicate relation {name:?}")));
        }
        if count > 10_000 {
            return Err(err(ln, format!("implausible row count {count}")));
        }
        let mut rows = Vec::with_capacity(count);
        for _ in 0..count {
            let (rln, rline) = lines.next().ok_or_else(|| {
                err(
                    ln,
                    format!("relation {name} declares {count} rows, file ended early"),
                )
            })?;
            let row: Result<Vec<u64>, String> = rline
                .split(',')
                .map(|cell| parse_u64(rln, "cell", cell.trim()))
                .collect();
            rows.push(row?);
        }
        rels.push((name, rows));
    }

    Ok(Case {
        seed,
        n,
        query,
        rels,
        options,
    })
}

/// Loads every `*.case` file under `dir`, sorted by file name.
///
/// # Errors
/// Returns a description naming the offending file on IO or parse
/// failure.
pub fn load_corpus(dir: &Path) -> Result<Vec<(PathBuf, Case)>, String> {
    let mut paths: Vec<PathBuf> = std::fs::read_dir(dir)
        .map_err(|e| format!("cannot read {}: {e}", dir.display()))?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|ext| ext == "case"))
        .collect();
    paths.sort();
    let mut out = Vec::with_capacity(paths.len());
    for path in paths {
        let text = std::fs::read_to_string(&path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        let case = parse_case(&text).map_err(|e| format!("{}: {e}", path.display()))?;
        out.push((path, case));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Case {
        Case {
            seed: 77,
            n: 3,
            query: "Q(a) :- R0(a, b), R1(b)".to_string(),
            rels: vec![
                ("R0".to_string(), vec![vec![1, 2], vec![0, 0]]),
                ("R1".to_string(), vec![]),
            ],
            options: EngineOptions {
                optimize: true,
                threads: 4,
                traced: false,
            },
        }
    }

    #[test]
    fn format_parse_roundtrip() {
        let case = sample();
        let text = format_case(&case);
        let back = parse_case(&text).unwrap();
        assert_eq!(back.seed, case.seed);
        assert_eq!(back.n, case.n);
        assert_eq!(back.query, case.query);
        assert_eq!(back.rels, case.rels);
        assert_eq!(back.options, case.options);
        // A parsed case must also materialize.
        back.materialize().unwrap();
    }

    #[test]
    fn malformed_files_are_rejected_with_line_numbers() {
        let cases = [
            ("", "ended early"),
            ("qec-case v2\n", "qec-case v1"),
            ("qec-case v1\nseed x\n", "bad seed"),
            ("qec-case v1\nseed 1\nn 2\noptions optimize=1\n", "missing threads"),
            (
                "qec-case v1\nseed 1\nn 2\noptions optimize=1 threads=0 traced=0\n",
                "threads must be",
            ),
            (
                "qec-case v1\nseed 1\nn 2\noptions optimize=1 threads=1 traced=0\nquery Q(a) :- R(a)\nrel R 2\n0\n",
                "ended early",
            ),
            (
                "qec-case v1\nseed 1\nn 2\noptions optimize=1 threads=1 traced=0\nquery Q(a) :- R(a)\nrel R 1\nzz\n",
                "bad cell",
            ),
            (
                "qec-case v1\nseed 1\nn 2\noptions optimize=1 threads=1 traced=0\nquery Q(a) :- R(a)\nrel R 0\nrel R 0\n",
                "duplicate relation",
            ),
        ];
        for (text, needle) in cases {
            let e = parse_case(text).expect_err(text);
            assert!(e.contains(needle), "error {e:?} missing {needle:?}");
        }
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let text = "# corpus case\nqec-case v1\n\nseed 5\nn 2\n# opts\noptions optimize=0 threads=1 traced=0\nquery Q() :- R(a)\nrel R 1\n3\n";
        let case = parse_case(text).unwrap();
        assert_eq!(case.rels[0].1, vec![vec![3]]);
        case.materialize().unwrap();
    }
}
