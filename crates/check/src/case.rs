//! Replayable differential-test cases.
//!
//! A [`Case`] is the unit the whole subsystem revolves around: the
//! generator produces them, the differ runs them, the shrinker minimizes
//! them, and the corpus serializes them (see [`crate::corpus`]). A case
//! is fully self-contained — query text, instance rows, capacity bound,
//! and the engine configuration that exposed the failure — so a bug
//! report is a single small text file.

use qec_circuit::{CompileOptions, Pool};
use qec_obs::Recorder;
use qec_query::{parse_cq, Cq};
use qec_relation::{Database, DcSet, DegreeConstraint, Relation, VarSet};

/// One point in the engine-configuration matrix the differ sweeps:
/// optimizer on/off × worker threads × tracing on/off.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EngineOptions {
    /// Run the word/bit optimizer pipeline.
    pub optimize: bool,
    /// Worker threads for parallel build/lower/optimize stages.
    pub threads: usize,
    /// Attach an enabled [`Recorder`] and collect evaluation metrics.
    pub traced: bool,
}

impl EngineOptions {
    /// The simplest configuration: sequential, unoptimized, untraced.
    pub fn baseline() -> EngineOptions {
        EngineOptions {
            optimize: false,
            threads: 1,
            traced: false,
        }
    }

    /// Translates to driver [`CompileOptions`]. Structural validation is
    /// always on — the differ wants the validator running after every
    /// pipeline stage regardless of the sampled configuration.
    pub fn compile_options(&self) -> CompileOptions {
        let mut opts = CompileOptions::sequential()
            .with_pool(Pool::new(self.threads))
            .with_optimize(self.optimize)
            .with_validate(true);
        if self.traced {
            opts = opts.with_recorder(Recorder::new(true)).with_metrics(true);
        }
        opts
    }
}

/// A self-contained differential test case.
#[derive(Clone, Debug)]
pub struct Case {
    /// Generator seed (provenance only; replay never re-derives from it).
    pub seed: u64,
    /// Uniform cardinality bound: every atom gets `|R| ≤ n`.
    pub n: u64,
    /// Conjunctive query in `parse_cq` syntax.
    pub query: String,
    /// Rows per relation, keyed by atom name, columns in the sorted
    /// variable order of that atom in the parsed `query`.
    pub rels: Vec<(String, Vec<Vec<u64>>)>,
    /// The engine configuration that exposed (or should replay) the
    /// failure; the fuzz loop sweeps a whole matrix around it.
    pub options: EngineOptions,
}

impl Case {
    /// Builds the concrete query, instance, and degree constraints.
    ///
    /// # Errors
    /// Returns a description when the case is internally inconsistent
    /// (unparseable query, missing/mis-shaped relation rows, rows over
    /// the declared bound, reserved values). Corpus files come from
    /// disk, so every malformed input must surface as an error, never a
    /// panic.
    pub fn materialize(&self) -> Result<(Cq, Database, DcSet), String> {
        let cq = parse_cq(&self.query).map_err(|e| format!("query does not parse: {e}"))?;
        let mut db = Database::new();
        let mut seen: Vec<VarSet> = Vec::new();
        let mut cards: Vec<DegreeConstraint> = Vec::new();
        for atom in &cq.atoms {
            let rows = self
                .rels
                .iter()
                .find(|(name, _)| *name == atom.name)
                .map(|(_, rows)| rows.clone())
                .ok_or_else(|| format!("no rows given for atom {}", atom.name))?;
            if rows.len() as u64 > self.n {
                return Err(format!(
                    "relation {} has {} rows, over the declared bound n={}",
                    atom.name,
                    rows.len(),
                    self.n
                ));
            }
            let schema = atom.vars.to_vec();
            for (i, row) in rows.iter().enumerate() {
                if row.len() != schema.len() {
                    return Err(format!(
                        "relation {} row {} has {} columns, atom arity is {}",
                        atom.name,
                        i + 1,
                        row.len(),
                        schema.len()
                    ));
                }
                if row.contains(&u64::MAX) {
                    return Err(format!(
                        "relation {} row {} uses u64::MAX (reserved dummy sentinel)",
                        atom.name,
                        i + 1
                    ));
                }
            }
            db.insert(atom.name.clone(), Relation::from_rows(schema, rows));
            if !seen.contains(&atom.vars) {
                seen.push(atom.vars);
                cards.push(DegreeConstraint::cardinality(atom.vars, self.n));
            }
        }
        Ok((cq, db, DcSet::from_vec(cards)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle_case() -> Case {
        Case {
            seed: 1,
            n: 4,
            query: "Q(a, c) :- R0(a, b), R1(b, c)".to_string(),
            rels: vec![
                ("R0".to_string(), vec![vec![0, 1], vec![2, 1]]),
                ("R1".to_string(), vec![vec![1, 5]]),
            ],
            options: EngineOptions::baseline(),
        }
    }

    #[test]
    fn materialize_builds_query_instance_and_constraints() {
        let (cq, db, dc) = triangle_case().materialize().unwrap();
        assert_eq!(cq.atoms.len(), 2);
        assert_eq!(db.get("R0").unwrap().len(), 2);
        assert_eq!(db.get("R1").unwrap().len(), 1);
        for atom in &cq.atoms {
            assert_eq!(dc.cardinality_of(atom.vars), Some(4));
        }
    }

    #[test]
    fn malformed_cases_error_instead_of_panicking() {
        let mut missing = triangle_case();
        missing.rels.pop();
        assert!(missing.materialize().unwrap_err().contains("no rows"));

        let mut over = triangle_case();
        over.n = 1;
        assert!(over
            .materialize()
            .unwrap_err()
            .contains("over the declared bound"));

        let mut arity = triangle_case();
        arity.rels[0].1[0].push(9);
        assert!(arity.materialize().unwrap_err().contains("columns"));

        let mut reserved = triangle_case();
        reserved.rels[1].1[0][0] = u64::MAX;
        assert!(reserved.materialize().unwrap_err().contains("reserved"));

        let mut bad_query = triangle_case();
        bad_query.query = "Q(a :-".to_string();
        assert!(bad_query
            .materialize()
            .unwrap_err()
            .contains("does not parse"));
    }
}
