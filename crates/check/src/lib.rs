//! Differential fuzzing and validation harness for the circuit
//! pipeline.
//!
//! The paper's central claim is an *equivalence*: the circuits of
//! Sec. 4–6 compute exactly what the RAM-model algorithms compute,
//! within the stated size/depth budgets. This crate tests the
//! reproduction's side of that equivalence end to end:
//!
//! * [`gen`] samples seeded random conjunctive queries with matching
//!   random instances under uniform degree constraints;
//! * [`differ`] compiles each query through the full pipeline under a
//!   matrix of [`CompileOptions`](qec_circuit::CompileOptions) points
//!   (optimizer on/off × thread counts × tracing) and insists every
//!   decoded circuit output equals the RAM references, with the
//!   structural validators ([`qec_circuit::validate`],
//!   [`qec_circuit::validate_bits`]) armed after every stage;
//! * [`shrink`] delta-debugs a divergent case down to a minimal
//!   replayable fragment;
//! * [`corpus`] serializes cases as small text files under
//!   `tests/corpus/` so every past failure becomes a permanent
//!   regression test.
//!
//! The `fuzz` binary drives the loop from CI; experiment X19 reports
//! throughput (cases/sec) and the divergence count.

pub mod case;
pub mod corpus;
pub mod datalog;
pub mod differ;
pub mod gen;
pub mod rng;
pub mod shrink;

pub use case::{Case, EngineOptions};
pub use corpus::{format_case, load_corpus, parse_case};
pub use datalog::{
    format_datalog_case, gen_datalog_case, load_datalog_corpus, parse_datalog_case,
    run_datalog_case, DatalogCase, DatalogOutcome,
};
pub use differ::{
    fuzz_many, mutate_circuit, options_matrix, run_case, CaseOutcome, Divergence, FuzzSummary,
    Mutation,
};
pub use gen::gen_case;
pub use rng::Rng;
pub use shrink::shrink_case;

/// Replays a corpus case through the full differential matrix (the
/// case's own recorded configuration is part of the sweep by
/// construction of [`options_matrix`] plus an explicit extra point).
pub fn replay(case: &Case) -> Result<CaseOutcome, Divergence> {
    let mut matrix = options_matrix(case.seed);
    if !matrix.contains(&case.options) {
        matrix.push(case.options);
    }
    differ::run_case(case, &matrix, None, true, true)
}
