//! The differential driver.
//!
//! [`run_case`] pushes one [`Case`] through every layer of the stack and
//! cross-checks the results:
//!
//! 1. RAM references: `evaluate_pairwise` (ground truth), `generic_join`,
//!    the flat `yannakakis` baseline (acyclic queries), and
//!    `OutputSensitive::evaluate_ram` must all agree.
//! 2. The naive relational circuit's RAM interpreter must match.
//! 3. The lowered word circuit is structurally validated, checked for
//!    parallel-lowering parity and a flat-tape serialize/decode
//!    round-trip (netlist equality), then compiled and evaluated under
//!    every [`EngineOptions`] point in the sweep matrix; each decoded
//!    output must equal the RAM ground truth.
//! 4. Optionally the bit-level lowering and bit optimizer run under the
//!    structural validator as well, plus a bit-tape round-trip, a
//!    streaming-lowering parity check (a spill-forcing window must
//!    reproduce the in-memory lowering byte for byte), and the
//!    bitsliced `BitEngine`: every available kernel, recompiled under
//!    every matrix point, must reproduce per-instance
//!    `BitCircuit::evaluate` lane for lane on a random batch, and its
//!    word-level entry point must match the word interpreter.
//!
//! Any disagreement comes back as a [`Divergence`] naming the stage and
//! configuration, ready for the shrinker.

use crate::case::{Case, EngineOptions};
use qec_circuit::{
    compile_bits_with, decode_relation, lower_streamed, lower_with, optimize_bits_with,
    read_netlist, validate, validate_bits, write_netlist, BitEvalScratch, BitKernel, BitTape,
    Circuit, CompileOptions, CompiledCircuit, Mode, Pool, StreamOptions, WordTape,
};
use qec_core::{naive_circuit, OutputSensitive};
use qec_query::baseline::{evaluate_pairwise, generic_join, yannakakis};
use qec_relation::Relation;
use std::fmt;

/// Why a case failed. Every variant names the stage precisely enough to
/// replay by hand.
#[derive(Clone, Debug)]
pub enum Divergence {
    /// The harness itself could not set the case up (unparseable query,
    /// missing rows, …) — a generator or corpus bug, not an engine bug.
    Harness(String),
    /// Two RAM-level reference evaluators disagree.
    Baseline {
        /// Which reference broke ranks with `evaluate_pairwise`.
        family: &'static str,
        /// Human-readable got/want detail.
        detail: String,
    },
    /// A structural validator rejected a circuit.
    Validator {
        /// Pipeline stage that produced the rejected circuit.
        stage: &'static str,
        /// The validator's error.
        error: String,
    },
    /// Compilation or evaluation errored under one configuration.
    Engine {
        /// The failing configuration.
        options: EngineOptions,
        /// `compile` or `evaluate`.
        stage: &'static str,
        /// The engine's error.
        error: String,
    },
    /// The decoded circuit output differs from the RAM ground truth.
    Output {
        /// The failing configuration.
        options: EngineOptions,
        /// Decoded circuit output.
        got: String,
        /// RAM reference output.
        want: String,
    },
    /// The serving layer (plan cache + request coalescing) returned a
    /// result that differs from direct evaluation, or failed a request
    /// it should have served.
    Serve {
        /// What went wrong, including got/want digests on mismatch.
        detail: String,
    },
    /// The networked two-party GMW session diverged from the in-process
    /// batched reference or from plaintext evaluation, or errored where
    /// the reference did not.
    Mpc {
        /// What went wrong, including got/want digests on mismatch.
        detail: String,
    },
    /// A Datalog fixpoint stage diverged: provenance evaluation,
    /// compilation, or the circuit's RAM interpretation broke ranks
    /// with the semi-naive reference (engine-sweep mismatches reuse
    /// [`Divergence::Engine`]/[`Divergence::Output`]).
    Datalog {
        /// What went wrong, including got/want digests on mismatch.
        detail: String,
    },
}

impl Divergence {
    /// The engine configuration implicated, when the failure is tied to
    /// one; the shrinker pins replay to it.
    pub fn options(&self) -> Option<EngineOptions> {
        match self {
            Divergence::Engine { options, .. } | Divergence::Output { options, .. } => {
                Some(*options)
            }
            _ => None,
        }
    }

    /// True for real engine bugs (anything except a harness setup
    /// failure).
    pub fn is_real(&self) -> bool {
        !matches!(self, Divergence::Harness(_))
    }
}

impl fmt::Display for Divergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Divergence::Harness(msg) => write!(f, "harness error: {msg}"),
            Divergence::Baseline { family, detail } => {
                write!(f, "RAM baseline {family} disagrees: {detail}")
            }
            Divergence::Validator { stage, error } => {
                write!(f, "validator rejected {stage} circuit: {error}")
            }
            Divergence::Engine {
                options,
                stage,
                error,
            } => write!(f, "{stage} failed under {options:?}: {error}"),
            Divergence::Output { options, got, want } => {
                write!(
                    f,
                    "output mismatch under {options:?}: got {got}, want {want}"
                )
            }
            Divergence::Serve { detail } => {
                write!(f, "serving layer diverged from direct evaluation: {detail}")
            }
            Divergence::Mpc { detail } => {
                write!(f, "networked GMW session diverged: {detail}")
            }
            Divergence::Datalog { detail } => {
                write!(f, "Datalog fixpoint diverged: {detail}")
            }
        }
    }
}

impl std::error::Error for Divergence {}

/// Statistics from one passed case.
#[derive(Clone, Copy, Debug, Default)]
pub struct CaseOutcome {
    /// Engine configurations compiled and evaluated.
    pub configs: usize,
    /// Word-level gate count of the lowered circuit.
    pub word_gates: usize,
    /// Bit-level gate count, when the bit pipeline was checked.
    pub bit_gates: usize,
}

/// The sweep matrix for one case: optimizer {off, on} × threads
/// {1, 2 + seed mod 7} × tracing {off, on} — eight configurations, with
/// the thread count varied by seed so the whole 1..=8 range gets
/// exercised across a run.
pub fn options_matrix(seed: u64) -> Vec<EngineOptions> {
    let alt_threads = 2 + (seed % 7) as usize;
    let mut matrix = Vec::with_capacity(8);
    for optimize in [false, true] {
        for threads in [1, alt_threads] {
            for traced in [false, true] {
                matrix.push(EngineOptions {
                    optimize,
                    threads,
                    traced,
                });
            }
        }
    }
    matrix
}

/// Test-only miscompile injection: swaps the opcode of one gate (the
/// `index`-th swappable one, wrapping) so the acceptance check "an
/// injected miscompile is caught and shrunk" has a hook. Goes through
/// the public netlist round-trip on purpose — the mutated circuit is
/// re-parsed and so stays structurally well-formed; only its semantics
/// change, which is exactly what the differential layer must catch.
#[derive(Clone, Copy, Debug)]
pub struct Mutation {
    /// Index into the circuit's swappable gates (taken modulo their
    /// count).
    pub index: usize,
}

const OPCODE_SWAPS: [(&str, &str); 8] = [
    ("add", "sub"),
    ("sub", "add"),
    ("mul", "add"),
    ("eq", "lt"),
    ("lt", "eq"),
    ("and", "or"),
    ("or", "and"),
    ("xor", "or"),
];

/// Applies `m` to `c`; `None` when the circuit has no swappable gate.
pub fn mutate_circuit(c: &Circuit, m: &Mutation) -> Option<Circuit> {
    let text = write_netlist(c);
    let mut lines: Vec<String> = text.lines().map(str::to_string).collect();
    let mut candidates: Vec<(usize, &str)> = Vec::new();
    for (i, line) in lines.iter().enumerate().skip(1) {
        let mut toks = line.split_whitespace();
        let (Some(_id), Some(op)) = (toks.next(), toks.next()) else {
            continue;
        };
        if let Some(&(_, to)) = OPCODE_SWAPS.iter().find(|(from, _)| *from == op) {
            candidates.push((i, to));
        }
    }
    if candidates.is_empty() {
        return None;
    }
    let (line_idx, to) = candidates[m.index % candidates.len()];
    let mut parts: Vec<&str> = lines[line_idx].split_whitespace().collect();
    parts[1] = to;
    lines[line_idx] = parts.join(" ");
    let mutated = lines.join("\n") + "\n";
    read_netlist(&mutated).ok()
}

pub(crate) fn digest(r: &Relation) -> String {
    let rows: Vec<String> = r
        .rows()
        .iter()
        .map(|row| {
            let cells: Vec<String> = row.iter().map(u64::to_string).collect();
            format!("({})", cells.join(","))
        })
        .collect();
    format!("{:?}{{{}}}", r.schema(), rows.join(" "))
}

pub(crate) fn harness(msg: impl fmt::Display) -> Divergence {
    Divergence::Harness(msg.to_string())
}

/// Runs one case through the full differential stack.
///
/// `matrix` is the engine-option sweep; `mutation` optionally injects a
/// miscompile into the word circuit before the sweep; `check_bits` also
/// pushes the circuit through the bit-level lowering and optimizer under
/// the structural validator (markedly slower, so the fuzz loop samples
/// it); `check_serve` replays the case through the `qec-serve` batching
/// server (also sampled — it pays one extra canonical-plan compile) and
/// demands results identical to direct evaluation. `check_serve` is
/// skipped under a mutation: the server compiles from query source, so
/// an injected miscompile of the direct circuit is invisible to it by
/// construction.
pub fn run_case(
    case: &Case,
    matrix: &[EngineOptions],
    mutation: Option<&Mutation>,
    check_bits: bool,
    check_serve: bool,
) -> Result<CaseOutcome, Divergence> {
    let (cq, db, dc) = case.materialize().map_err(harness)?;

    // Stage 1: RAM references against ground truth.
    let expect = evaluate_pairwise(&cq, &db).map_err(harness)?;
    let gj = generic_join(&cq, &db).map_err(harness)?;
    if gj != expect {
        return Err(Divergence::Baseline {
            family: "generic-join",
            detail: format!("got {}, want {}", digest(&gj), digest(&expect)),
        });
    }
    if let Some(y) = yannakakis(&cq, &db).map_err(harness)? {
        if y != expect {
            return Err(Divergence::Baseline {
                family: "yannakakis",
                detail: format!("got {}, want {}", digest(&y), digest(&expect)),
            });
        }
    }
    if let Ok(os) = OutputSensitive::build(&cq, &dc, 8) {
        match os.evaluate_ram(&db) {
            Ok(r) if r != expect => {
                return Err(Divergence::Baseline {
                    family: "output-sensitive-ram",
                    detail: format!("got {}, want {}", digest(&r), digest(&expect)),
                });
            }
            Ok(_) => {}
            Err(e) => {
                return Err(Divergence::Baseline {
                    family: "output-sensitive-ram",
                    detail: format!("evaluation error: {e}"),
                });
            }
        }
    }

    // Stage 2: the naive relational circuit, RAM-interpreted.
    let (rc, _) = naive_circuit(&cq, &dc).map_err(harness)?;
    let ram = rc.evaluate_ram(&db).map_err(|e| Divergence::Baseline {
        family: "naive-ram",
        detail: format!("evaluation error: {e}"),
    })?;
    if ram.len() != 1 || ram[0] != expect {
        let got = ram.first().map(digest).unwrap_or_else(|| "<none>".into());
        return Err(Divergence::Baseline {
            family: "naive-ram",
            detail: format!("got {got}, want {}", digest(&expect)),
        });
    }

    // Stage 3: lower to the word IR, validate, and check that parallel
    // lowering is bit-for-bit equal to sequential lowering.
    let lowered = rc.lower_with(Mode::Build, &CompileOptions::sequential());
    validate(&lowered.circuit).map_err(|e| Divergence::Validator {
        stage: "lower",
        error: e.to_string(),
    })?;
    let max_threads = matrix.iter().map(|o| o.threads).max().unwrap_or(1);
    if max_threads > 1 {
        let par = rc.lower_with(
            Mode::Build,
            &CompileOptions::sequential().with_pool(Pool::new(max_threads)),
        );
        if write_netlist(&par.circuit) != write_netlist(&lowered.circuit) {
            return Err(Divergence::Validator {
                stage: "parallel-lowering-parity",
                error: format!("lowering under {max_threads} threads produced a different netlist"),
            });
        }
    }

    // Stage 3b: flat-tape round-trip — encode the lowered word circuit
    // to an instruction tape, serialize, reload, decode, and demand the
    // exact same netlist back. This is the persistence contract: a tape
    // written today and decoded tomorrow is the circuit, not a
    // semantically-equivalent cousin.
    {
        let tape = WordTape::encode(&lowered.circuit).map_err(|e| Divergence::Validator {
            stage: "word-tape-roundtrip",
            error: format!("encode: {e}"),
        })?;
        let bytes = tape.to_bytes();
        let back = WordTape::from_bytes(&bytes)
            .and_then(|t| t.decode())
            .map_err(|e| Divergence::Validator {
                stage: "word-tape-roundtrip",
                error: format!("reload: {e}"),
            })?;
        if write_netlist(&back) != write_netlist(&lowered.circuit) {
            return Err(Divergence::Validator {
                stage: "word-tape-roundtrip",
                error: "decoded tape produced a different netlist".into(),
            });
        }
    }

    let circuit = match mutation {
        Some(m) => mutate_circuit(&lowered.circuit, m)
            .ok_or_else(|| harness("circuit has no swappable gate to mutate"))?,
        None => lowered.circuit.clone(),
    };
    let inputs = lowered.layout.values(&db).map_err(harness)?;

    // Stage 4: the engine-option sweep.
    let mut outcome = CaseOutcome {
        word_gates: circuit.size() as usize,
        ..CaseOutcome::default()
    };
    for opts in matrix {
        let co = opts.compile_options();
        let (engine, _report) =
            CompiledCircuit::compile_with(&circuit, &co).map_err(|e| Divergence::Engine {
                options: *opts,
                stage: "compile",
                error: e.to_string(),
            })?;
        let raw = engine.evaluate(&inputs).map_err(|e| Divergence::Engine {
            options: *opts,
            stage: "evaluate",
            error: e.to_string(),
        })?;
        for (schema, start, len) in &lowered.outputs {
            let got = decode_relation(schema, &raw[*start..*start + *len]);
            if got != expect {
                return Err(Divergence::Output {
                    options: *opts,
                    got: digest(&got),
                    want: digest(&expect),
                });
            }
        }
        outcome.configs += 1;
    }

    // Stage 4b (sampled): the serving layer. The case goes through the
    // whole serve path — canonicalization, plan cache, capacity
    // bucketing, request coalescing — three times concurrently against
    // one server, and every response must be bit-identical to the RAM
    // ground truth. This is the "coalescing never changes answers"
    // contract, and because the plan is compiled at the *bucketed*
    // capacity it also checks that padding to a larger capacity leaves
    // the decoded relation untouched.
    if check_serve && mutation.is_none() {
        check_serve_stage(case, &expect)?;
    }

    // Stage 5 (sampled): bit-level lowering + optimizer under the
    // structural validator.
    if check_bits {
        let bits = lower_with(&circuit, 64, &CompileOptions::sequential());
        validate_bits(&bits).map_err(|e| Divergence::Validator {
            stage: "bit-lower",
            error: e.to_string(),
        })?;
        let (opt_bits, _) = optimize_bits_with(&bits, &CompileOptions::sequential());
        validate_bits(&opt_bits).map_err(|e| Divergence::Validator {
            stage: "bit-optimize",
            error: e.to_string(),
        })?;
        outcome.bit_gates = opt_bits.gates().len();

        // Stage 5b: bit-tape round-trip, same contract as the word tape.
        let tape = BitTape::encode(&bits);
        let back = BitTape::from_bytes(&tape.to_bytes())
            .and_then(|t| t.decode())
            .map_err(|e| Divergence::Validator {
                stage: "bit-tape-roundtrip",
                error: format!("reload: {e}"),
            })?;
        if back.gates() != bits.gates()
            || back.outputs() != bits.outputs()
            || back.num_inputs() != bits.num_inputs()
        {
            return Err(Divergence::Validator {
                stage: "bit-tape-roundtrip",
                error: "decoded tape produced a different bit circuit".into(),
            });
        }

        // Stage 5c: streaming lowering under an aggressively small window
        // (forcing spills on any non-trivial case) must be byte-identical
        // to the in-memory lowering.
        let stream_opts = StreamOptions {
            chunk_words: 64,
            window_chunks: 1,
            spill_dir: None,
        };
        let (streamed, _stats) =
            lower_streamed(&circuit, 64, &stream_opts).map_err(|e| Divergence::Validator {
                stage: "streaming-lowering-parity",
                error: format!("lower_streamed: {e}"),
            })?;
        let streamed = streamed.decode().map_err(|e| Divergence::Validator {
            stage: "streaming-lowering-parity",
            error: format!("decode: {e}"),
        })?;
        if streamed.gates() != bits.gates()
            || streamed.outputs() != bits.outputs()
            || streamed.num_inputs() != bits.num_inputs()
        {
            return Err(Divergence::Validator {
                stage: "streaming-lowering-parity",
                error: "streamed lowering diverged from in-memory lowering".into(),
            });
        }

        // Stage 5d: the bitsliced BitEngine, riding the options matrix.
        // Reference once: the interpreter per instance (scratch-buffered)
        // over the case's real input plus a word-boundary-straddling
        // random batch; then every matrix point recompiles the tape under
        // its CompileOptions and every available kernel must reproduce
        // the reference lane for lane. The word-level entry point must
        // also match the word interpreter (itself already cross-checked
        // against the engine sweep above).
        let mut brng = crate::rng::Rng::new(case.seed ^ 0xb17_e461);
        let mut instances: Vec<Vec<bool>> = vec![bits.pack_inputs(&inputs)];
        instances.extend((0..67).map(|_| {
            (0..bits.num_inputs())
                .map(|_| brng.next_u64() & 1 == 1)
                .collect::<Vec<bool>>()
        }));
        let mut scratch = BitEvalScratch::default();
        let reference: Vec<_> = instances
            .iter()
            .map(|inst| bits.evaluate_with(inst, &mut scratch).map(<[bool]>::to_vec))
            .collect();
        let word_want = circuit
            .evaluate(&inputs)
            .map_err(|e| Divergence::Validator {
                stage: "bitengine-batch",
                error: format!("word interpreter rejected the case input: {e}"),
            })?;
        for opts in matrix {
            let co = opts.compile_options();
            let (eng, _report) =
                compile_bits_with(&bits, &co).map_err(|e| Divergence::Validator {
                    stage: "bitengine-batch",
                    error: format!("compile ({opts:?}): {e}"),
                })?;
            let mut bscratch = eng.scratch();
            for kernel in BitKernel::available() {
                let got = eng.evaluate_batch_kernel(&instances, kernel, &mut bscratch);
                if got != reference {
                    let lane = got
                        .iter()
                        .zip(&reference)
                        .position(|(g, r)| g != r)
                        .unwrap_or(0);
                    return Err(Divergence::Validator {
                        stage: "bitengine-batch",
                        error: format!(
                            "kernel {} ({opts:?}) diverged from BitCircuit::evaluate at lane {lane}",
                            kernel.name()
                        ),
                    });
                }
            }
            match eng.evaluate_words(std::slice::from_ref(&inputs)).remove(0) {
                Ok(words) if words == word_want => {}
                got => {
                    return Err(Divergence::Validator {
                        stage: "bitengine-words",
                        error: format!(
                            "evaluate_words ({opts:?}) diverged from the word interpreter: \
                             got {got:?}, want {word_want:?}"
                        ),
                    });
                }
            }
        }

        // Stage 5e: the networked two-party GMW session. Two `Session`s
        // wired through a `Duplex` pair on the round-optimal gmw
        // schedule must reproduce the in-process batched reference
        // (`evaluate_shared_batch`) result for result — including which
        // instances fail which assertions — and match plaintext
        // wherever the reference succeeds, at exactly one message per
        // AND-bearing level.
        {
            use qec_mpc::{evaluate_shared_batch, share_instances, Duplex, PackedDealer};
            let eng = qec_circuit::CompiledBitCircuit::compile_gmw(&bits);
            let batch: Vec<Vec<bool>> = instances[..3].to_vec();
            let steps = eng.stats().and_ops as usize;
            let (s0, s1) = share_instances(&batch, case.seed ^ 0x6a3);
            let dealer = PackedDealer::new(steps, 1, case.seed ^ 0x15e);
            let (want, _) =
                evaluate_shared_batch(&eng, &s0, &s1, &dealer).map_err(|e| Divergence::Mpc {
                    detail: format!("in-process reference failed: {e}"),
                })?;
            let (t0, t1) = PackedDealer::new(steps, 1, case.seed ^ 0x15e).split();
            let (d0, d1) = Duplex::pair();
            let (o0, o1) = std::thread::scope(|scope| {
                let eng = &eng;
                let (s1ref, t1m, d1m) = (&s1, t1, d1);
                let h = scope.spawn(move || {
                    qec_mpc::Session::new(eng, qec_mpc::Role::P1, d1m, t1m)
                        .with_words(1)
                        .run(s1ref)
                });
                let o0 = qec_mpc::Session::new(eng, qec_mpc::Role::P0, d0, t0)
                    .with_words(1)
                    .run(&s0);
                (o0, h.join().expect("P1 session thread"))
            });
            let o0 = o0.map_err(|e| Divergence::Mpc {
                detail: format!("party 0 session failed: {e}"),
            })?;
            let o1 = o1.map_err(|e| Divergence::Mpc {
                detail: format!("party 1 session failed: {e}"),
            })?;
            for (party, o) in [(0, &o0), (1, &o1)] {
                if o.results != want {
                    return Err(Divergence::Mpc {
                        detail: format!(
                            "party {party} session results differ from evaluate_shared_batch: \
                             got {:?}, want {want:?}",
                            o.results
                        ),
                    });
                }
                if o.stats.rounds != eng.stats().and_levels as u64 {
                    return Err(Divergence::Mpc {
                        detail: format!(
                            "party {party} used {} rounds for {} AND levels",
                            o.stats.rounds,
                            eng.stats().and_levels
                        ),
                    });
                }
            }
            for (i, want_plain) in reference.iter().take(batch.len()).enumerate() {
                match (want_plain, &o0.results[i]) {
                    (Ok(p), Ok(got)) if got == p => {}
                    (Ok(p), got) => {
                        return Err(Divergence::Mpc {
                            detail: format!(
                                "instance {i}: session got {got:?}, plaintext wants Ok({p:?})"
                            ),
                        });
                    }
                    (Err(_), Err(qec_mpc::MpcError::AssertionFailed(_))) => {}
                    (Err(e), got) => {
                        return Err(Divergence::Mpc {
                            detail: format!(
                                "instance {i}: plaintext rejects with {e} but session got {got:?}"
                            ),
                        });
                    }
                }
            }
        }
    }

    Ok(outcome)
}

/// Replays `case` through a coalescing [`qec_serve::Server`] and
/// compares every response against `expect`.
fn check_serve_stage(case: &Case, expect: &Relation) -> Result<(), Divergence> {
    let mut server = qec_serve::Server::start(qec_serve::ServerConfig {
        workers: 2,
        max_batch: 8,
        flush: std::time::Duration::from_millis(2),
        coalesce: true,
        ..qec_serve::ServerConfig::default()
    });
    let request = qec_serve::Request {
        tenant: "differ".into(),
        query: case.query.clone(),
        n: case.n,
        rels: case.rels.clone(),
    };
    let tickets: Vec<_> = (0..3)
        .map(|i| {
            server
                .submit(request.clone())
                .map_err(|e| Divergence::Serve {
                    detail: format!("submit {i} rejected: {e}"),
                })
        })
        .collect::<Result<_, _>>()?;
    for (i, ticket) in tickets.into_iter().enumerate() {
        let resp = ticket.wait().map_err(|e| Divergence::Serve {
            detail: format!("request {i} failed: {e}"),
        })?;
        for rel in &resp.relations {
            if rel != expect {
                return Err(Divergence::Serve {
                    detail: format!(
                        "request {i} (batch of {}): got {}, want {}",
                        resp.batch_size,
                        digest(rel),
                        digest(expect)
                    ),
                });
            }
        }
    }
    server.shutdown();
    Ok(())
}

/// Aggregate result of a fuzz sweep.
#[derive(Debug, Default)]
pub struct FuzzSummary {
    /// Cases that passed the full matrix.
    pub cases_passed: usize,
    /// Engine configurations compiled+evaluated across all cases.
    pub configs: usize,
    /// Total word gates across lowered circuits (a work proxy).
    pub word_gates: usize,
    /// Datalog fixpoint cases that passed (interleaved sampling).
    pub datalog_passed: usize,
    /// The first failing case, if any, with its divergence.
    pub failure: Option<(Case, Divergence)>,
    /// The first failing Datalog case, if any, with its divergence.
    /// Datalog cases have no shrinker; the serialized case replays it.
    pub datalog_failure: Option<(crate::datalog::DatalogCase, Divergence)>,
}

/// Runs `cases` generated cases starting at `seed`, stopping at the
/// first divergence. Every `bits_every`-th case (0 disables) also runs
/// the bit-level pipeline checks; every `datalog_every`-th case (0
/// disables) additionally pushes a seeded recursive-Datalog fixpoint
/// case through [`crate::datalog::run_datalog_case`].
pub fn fuzz_many(seed: u64, cases: usize, bits_every: usize, datalog_every: usize) -> FuzzSummary {
    let mut summary = FuzzSummary::default();
    for i in 0..cases {
        let case_seed = seed.wrapping_add(i as u64);
        let matrix = options_matrix(case_seed);
        if datalog_every != 0 && i % datalog_every == 0 {
            let dcase = crate::datalog::gen_datalog_case(case_seed);
            match crate::datalog::run_datalog_case(&dcase, &matrix) {
                Ok(o) => {
                    summary.datalog_passed += 1;
                    summary.configs += o.configs;
                    summary.word_gates += o.word_gates;
                }
                Err(d) => {
                    summary.datalog_failure = Some((dcase, d));
                    break;
                }
            }
        }
        let case = crate::gen::gen_case(case_seed);
        let check_bits = bits_every != 0 && i % bits_every == 0;
        // The serve stage rides the same sampling cadence: both pay an
        // extra compile, and both are configuration-independent checks.
        match run_case(&case, &matrix, None, check_bits, check_bits) {
            Ok(o) => {
                summary.cases_passed += 1;
                summary.configs += o.configs;
                summary.word_gates += o.word_gates;
            }
            Err(d) => {
                summary.failure = Some((case, d));
                break;
            }
        }
    }
    summary
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::case::EngineOptions;

    #[test]
    fn matrix_has_eight_distinct_points() {
        let m = options_matrix(3);
        assert_eq!(m.len(), 8);
        for (i, a) in m.iter().enumerate() {
            for b in &m[i + 1..] {
                assert_ne!(a, b);
            }
        }
        assert!(m.iter().any(|o| o.threads > 1));
        assert!(m.iter().any(|o| o.optimize));
        assert!(m.iter().any(|o| o.traced));
    }

    #[test]
    fn a_known_good_case_passes_the_full_matrix() {
        let case = crate::gen::gen_case(11);
        let matrix = options_matrix(11);
        let outcome = run_case(&case, &matrix, None, true, true).unwrap();
        assert_eq!(outcome.configs, 8);
        assert!(outcome.word_gates > 0);
        assert!(outcome.bit_gates > 0);
    }

    #[test]
    fn mutation_produces_a_structurally_valid_different_circuit() {
        let case = crate::gen::gen_case(5);
        let (cq, _db, dc) = case.materialize().unwrap();
        let (rc, _) = naive_circuit(&cq, &dc).unwrap();
        let lowered = rc.lower_with(Mode::Build, &CompileOptions::sequential());
        let mutated = mutate_circuit(&lowered.circuit, &Mutation { index: 0 }).unwrap();
        assert!(validate(&mutated).is_ok());
        assert_ne!(
            write_netlist(&mutated),
            write_netlist(&lowered.circuit),
            "mutation must change the netlist"
        );
    }

    #[test]
    fn divergence_reports_carry_the_failing_options() {
        let opts = EngineOptions {
            optimize: true,
            threads: 3,
            traced: false,
        };
        let d = Divergence::Output {
            options: opts,
            got: "g".into(),
            want: "w".into(),
        };
        assert_eq!(d.options(), Some(opts));
        assert!(d.is_real());
        assert!(!Divergence::Harness("x".into()).is_real());
    }
}
