//! Delta-debugging shrinker for divergent cases.
//!
//! Given a failing [`Case`] and an oracle (`still_fails`), greedily
//! applies reductions and keeps every one the oracle confirms, looping
//! to a fixpoint:
//!
//! 1. simplify the engine options (tracing off, one thread, optimizer
//!    off),
//! 2. drop whole atoms from the query (rebuilding the query text and
//!    permuting stored rows into the renumbered schema),
//! 3. delete relation rows one at a time,
//! 4. lower the capacity bound `n` to the smallest value that still
//!    reproduces.
//!
//! Cases here are tiny (≤ 3 atoms, ≤ 4 rows each), so the greedy
//! one-at-a-time strategy converges in well under a hundred oracle
//! calls — no need for the chunked ddmin schedule.

use crate::case::Case;
use qec_query::{parse_cq, Cq};

/// Shrinks `case` while `still_fails` keeps returning `true`. The
/// oracle must treat harness errors (unparseable candidate, missing
/// rows) as *not failing* so malformed candidates are simply rejected.
pub fn shrink_case(case: &Case, still_fails: &dyn Fn(&Case) -> bool) -> Case {
    let mut cur = case.clone();
    for _round in 0..16 {
        let mut progressed = false;
        progressed |= simplify_options(&mut cur, still_fails);
        progressed |= drop_atoms(&mut cur, still_fails);
        progressed |= drop_rows(&mut cur, still_fails);
        progressed |= lower_n(&mut cur, still_fails);
        if !progressed {
            break;
        }
    }
    cur
}

fn simplify_options(cur: &mut Case, still_fails: &dyn Fn(&Case) -> bool) -> bool {
    let mut progressed = false;
    let try_opts = |cur: &mut Case, f: &dyn Fn(&mut Case)| {
        let mut cand = cur.clone();
        f(&mut cand);
        if cand.options != cur.options && still_fails(&cand) {
            *cur = cand;
            true
        } else {
            false
        }
    };
    progressed |= try_opts(cur, &|c| c.options.traced = false);
    progressed |= try_opts(cur, &|c| c.options.threads = 1);
    progressed |= try_opts(cur, &|c| c.options.optimize = false);
    progressed
}

fn drop_rows(cur: &mut Case, still_fails: &dyn Fn(&Case) -> bool) -> bool {
    let mut progressed = false;
    let mut rel = 0;
    while rel < cur.rels.len() {
        let mut row = 0;
        while row < cur.rels[rel].1.len() {
            let mut cand = cur.clone();
            cand.rels[rel].1.remove(row);
            if still_fails(&cand) {
                *cur = cand;
                progressed = true;
                // same index now names the next row
            } else {
                row += 1;
            }
        }
        rel += 1;
    }
    progressed
}

fn lower_n(cur: &mut Case, still_fails: &dyn Fn(&Case) -> bool) -> bool {
    let floor = cur
        .rels
        .iter()
        .map(|(_, rows)| rows.len() as u64)
        .max()
        .unwrap_or(0)
        .max(1);
    for n in floor..cur.n {
        let mut cand = cur.clone();
        cand.n = n;
        if still_fails(&cand) {
            *cur = cand;
            return true;
        }
    }
    false
}

fn drop_atoms(cur: &mut Case, still_fails: &dyn Fn(&Case) -> bool) -> bool {
    let mut progressed = false;
    loop {
        let Ok(cq) = parse_cq(&cur.query) else {
            return progressed;
        };
        if cq.atoms.len() <= 1 {
            return progressed;
        }
        let mut reduced = false;
        for drop in 0..cq.atoms.len() {
            if let Some(cand) = without_atom(cur, &cq, drop) {
                if still_fails(&cand) {
                    *cur = cand;
                    progressed = true;
                    reduced = true;
                    break; // atom indices shifted; re-parse and restart
                }
            }
        }
        if !reduced {
            return progressed;
        }
    }
}

/// Rebuilds `cur` with atom `drop` removed. The parser renumbers
/// variables from the new text, which can permute each atom's
/// sorted-variable column order, so rows are remapped by *name*: old
/// sorted names → new sorted names.
fn without_atom(cur: &Case, cq: &Cq, drop: usize) -> Option<Case> {
    let kept: Vec<usize> = (0..cq.atoms.len()).filter(|&i| i != drop).collect();
    let covered: Vec<&str> = {
        let mut names: Vec<&str> = Vec::new();
        for &i in &kept {
            for v in cq.atoms[i].vars.iter() {
                let n = cq.var_name(v);
                if !names.contains(&n) {
                    names.push(n);
                }
            }
        }
        names
    };
    let head: Vec<&str> = cq
        .free
        .iter()
        .map(|v| cq.var_name(v))
        .filter(|n| covered.contains(n))
        .collect();
    let body: Vec<String> = kept
        .iter()
        .map(|&i| {
            let args: Vec<&str> = cq.atoms[i].vars.iter().map(|v| cq.var_name(v)).collect();
            format!("{}({})", cq.atoms[i].name, args.join(", "))
        })
        .collect();
    let query = format!("Q({}) :- {}", head.join(", "), body.join(", "));
    let new_cq = parse_cq(&query).ok()?;

    let mut rels = Vec::with_capacity(kept.len());
    for atom in &new_cq.atoms {
        let old_atom = cq.atoms.iter().find(|a| a.name == atom.name)?;
        let old_names: Vec<&str> = old_atom.vars.iter().map(|v| cq.var_name(v)).collect();
        let new_names: Vec<&str> = atom.vars.iter().map(|v| new_cq.var_name(v)).collect();
        let perm: Option<Vec<usize>> = new_names
            .iter()
            .map(|n| old_names.iter().position(|o| o == n))
            .collect();
        let perm = perm?;
        let (_, old_rows) = cur.rels.iter().find(|(name, _)| *name == atom.name)?;
        let rows = old_rows
            .iter()
            .map(|row| perm.iter().map(|&i| row[i]).collect())
            .collect();
        rels.push((atom.name.clone(), rows));
    }
    Some(Case {
        query,
        rels,
        ..cur.clone()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::case::EngineOptions;

    fn base_case() -> Case {
        Case {
            seed: 9,
            n: 4,
            query: "Q(a, c) :- R0(a, b), R1(b, c), R2(c)".to_string(),
            rels: vec![
                ("R0".to_string(), vec![vec![0, 1], vec![2, 3], vec![1, 1]]),
                ("R1".to_string(), vec![vec![1, 5], vec![3, 0]]),
                ("R2".to_string(), vec![vec![5], vec![0]]),
            ],
            options: EngineOptions {
                optimize: true,
                threads: 5,
                traced: true,
            },
        }
    }

    #[test]
    fn shrinks_to_the_minimal_triggering_fragment() {
        // Synthetic oracle: "fails" whenever R0 still contains the row
        // (0, 1) — the shrinker should strip everything else.
        let oracle = |c: &Case| {
            c.materialize().is_ok()
                && c.rels
                    .iter()
                    .any(|(n, rows)| n == "R0" && rows.contains(&vec![0, 1]))
        };
        let small = shrink_case(&base_case(), &oracle);
        assert!(oracle(&small));
        let r0 = small.rels.iter().find(|(n, _)| n == "R0").unwrap();
        assert_eq!(r0.1, vec![vec![0, 1]], "extra rows survived: {small:?}");
        let total_rows: usize = small.rels.iter().map(|(_, r)| r.len()).sum();
        assert_eq!(total_rows, 1, "other relations kept rows: {small:?}");
        assert_eq!(small.n, 1);
        assert_eq!(
            small.options,
            EngineOptions::baseline(),
            "options were not simplified"
        );
        assert!(small.query.contains("R0"));
        assert!(
            !small.query.contains("R2"),
            "droppable atom kept: {}",
            small.query
        );
    }

    #[test]
    fn atom_removal_remaps_columns_by_variable_name() {
        // Head (c) comes before (a, b) in parser numbering; dropping R2
        // renumbers everything. The oracle pins the case to R0 keeping
        // its distinguishable row (7, 8) in (a, b) order.
        let case = Case {
            seed: 1,
            n: 4,
            query: "Q(c) :- R0(a, b), R1(b, c), R2(a, c)".to_string(),
            rels: vec![
                // R0's sorted schema in the original parse: a, b.
                ("R0".to_string(), vec![vec![7, 8]]),
                ("R1".to_string(), vec![vec![8, 2]]),
                ("R2".to_string(), vec![vec![7, 2]]),
            ],
            options: EngineOptions::baseline(),
        };
        let oracle = |c: &Case| {
            let Ok((cq, db, _)) = c.materialize() else {
                return false;
            };
            // The pair (a=7, b=8) must still be a row of R0 under
            // whatever numbering the candidate uses.
            let Some(atom) = cq.atoms.iter().find(|a| a.name == "R0") else {
                return false;
            };
            let rel = db.get("R0").unwrap();
            let names: Vec<&str> = atom.vars.iter().map(|v| cq.var_name(v)).collect();
            let a_col = names.iter().position(|n| *n == "a");
            let b_col = names.iter().position(|n| *n == "b");
            match (a_col, b_col) {
                (Some(a), Some(b)) => rel.rows().iter().any(|r| r[a] == 7 && r[b] == 8),
                _ => false,
            }
        };
        assert!(oracle(&case));
        let small = shrink_case(&case, &oracle);
        assert!(oracle(&small), "shrunk case lost the pinned row: {small:?}");
        assert!(
            !small.query.contains("R2") || !small.query.contains("R1"),
            "nothing was dropped: {}",
            small.query
        );
    }
}
