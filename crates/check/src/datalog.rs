//! Differential checking for recursive Datalog fixpoints.
//!
//! A [`DatalogCase`] is a seeded (program, graph, bounds) triple. The
//! stage runs the RAM semi-naive reference, the provenance extraction
//! (whose evaluation under the concrete semiring must reproduce the
//! reference annotations), the compiled circuit's RAM interpretation,
//! and the lowered word circuit under the full engine-options matrix —
//! every decoded output must be bit-identical to the reference.
//!
//! Cases serialize as `*.dlcase` text files (see [`format_datalog_case`])
//! so failures become permanent corpus regressions, mirroring the CQ
//! corpus format.

use crate::case::EngineOptions;
use crate::differ::{digest, harness, Divergence};
use qec_circuit::{decode_relation, validate, CompileOptions, CompiledCircuit, Mode};
use qec_datalog::{
    compile, database, eval_provenance, provenance, result_relation, seminaive, workloads,
    DatalogProgram, FixpointBounds,
};
use std::path::{Path, PathBuf};

/// A self-contained Datalog differential case.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DatalogCase {
    /// Generator seed (provenance only).
    pub seed: u64,
    /// Key values range over `0..domain`; also the per-EDB row capacity
    /// and (by default) the delta-round count, so Boolean/min-tropical
    /// circuits compute the *true* fixpoint.
    pub domain: u64,
    /// Delta rounds unrolled after round 0.
    pub rounds: usize,
    /// The program, one line of `parse_program` syntax.
    pub program: String,
    /// Rows per EDB predicate (canonical column order: keys, then the
    /// weight column for `*`-annotated predicates).
    pub rels: Vec<(String, Vec<Vec<u64>>)>,
}

/// Statistics from one passed Datalog case.
#[derive(Clone, Copy, Debug, Default)]
pub struct DatalogOutcome {
    /// Engine configurations compiled and evaluated.
    pub configs: usize,
    /// Word-level gate count of the lowered fixpoint circuit.
    pub word_gates: usize,
    /// Provenance DAG nodes over the output predicate.
    pub prov_nodes: usize,
}

/// Generates a seeded case, rotating through the three graph workloads
/// (transitive closure, reachability, shortest path) with a random
/// graph over a small domain.
pub fn gen_datalog_case(seed: u64) -> DatalogCase {
    let mut rng = crate::rng::Rng::new(seed ^ 0x0da7_a106);
    let domain = 3 + rng.below(3); // 3..=5
    let edges = domain as usize + rng.below(domain + 1) as usize;
    match seed % 3 {
        0 => DatalogCase {
            seed,
            domain,
            rounds: domain as usize,
            program: workloads::TRANSITIVE_CLOSURE.to_string(),
            rels: vec![(
                "edge".into(),
                workloads::random_edges(domain, edges, rng.next_u64()),
            )],
        },
        1 => DatalogCase {
            seed,
            domain,
            rounds: domain as usize,
            program: workloads::REACHABILITY.to_string(),
            rels: vec![
                (
                    "edge".into(),
                    workloads::random_edges(domain, edges, rng.next_u64()),
                ),
                ("start".into(), workloads::start_rows(1 + rng.below(2))),
            ],
        },
        _ => DatalogCase {
            seed,
            domain,
            rounds: domain as usize,
            program: workloads::SHORTEST_PATH.to_string(),
            rels: vec![(
                "edge".into(),
                workloads::random_weighted_edges(domain, edges, 6, rng.next_u64()),
            )],
        },
    }
}

/// Runs one Datalog case through reference → provenance → compiled
/// circuit (RAM) → lowered word circuit under every matrix point.
pub fn run_datalog_case(
    case: &DatalogCase,
    matrix: &[EngineOptions],
) -> Result<DatalogOutcome, Divergence> {
    let dp = DatalogProgram::parse(&case.program)
        .map_err(|e| harness(format!("program rejected: {e}")))?;
    let rels: Vec<(&str, Vec<Vec<u64>>)> = case
        .rels
        .iter()
        .map(|(n, r)| (n.as_str(), r.clone()))
        .collect();
    let db = database(&dp, &rels).map_err(|e| harness(format!("bad instance: {e}")))?;
    let edb_rows = case
        .rels
        .iter()
        .map(|(_, r)| r.len() as u64)
        .max()
        .unwrap_or(1)
        .max(1);
    let bounds = FixpointBounds {
        domain: case.domain,
        edb_rows,
        rounds: case.rounds,
    };

    // Stage 1: the RAM semi-naive reference is ground truth.
    let reference =
        seminaive(&dp, &db, bounds.rounds).map_err(|e| harness(format!("reference: {e}")))?;
    let want = result_relation(&dp, &reference);

    // Stage 2: provenance polynomials must evaluate back to the
    // reference annotations under the concrete semiring.
    let pr = provenance(&dp, &db, bounds.rounds).map_err(|e| Divergence::Datalog {
        detail: format!("provenance extraction failed: {e}"),
    })?;
    let back = eval_provenance(&dp, &pr);
    if back != reference.tuples {
        return Err(Divergence::Datalog {
            detail: format!(
                "provenance evaluation disagrees with the reference: got {back:?}, want {:?}",
                reference.tuples
            ),
        });
    }
    let roots: Vec<u32> = pr.outputs.values().copied().collect();

    // Stage 3: the compiled fixpoint circuit, RAM-interpreted.
    let fx = compile(&dp, &bounds).map_err(|e| Divergence::Datalog {
        detail: format!("compile failed: {e}"),
    })?;
    let ram = fx
        .rc
        .evaluate_ram(&db)
        .map_err(|e| Divergence::Datalog {
            detail: format!("circuit RAM interpretation failed: {e}"),
        })?
        .pop()
        .ok_or_else(|| Divergence::Datalog {
            detail: "circuit has no output".into(),
        })?;
    if ram != want {
        return Err(Divergence::Datalog {
            detail: format!(
                "circuit RAM interpretation diverged: got {}, want {}",
                digest(&ram),
                digest(&want)
            ),
        });
    }

    // Stage 4: the lowered word circuit under the options matrix.
    let lowered = fx.rc.lower_with(Mode::Build, &CompileOptions::sequential());
    validate(&lowered.circuit).map_err(|e| Divergence::Validator {
        stage: "datalog-lower",
        error: e.to_string(),
    })?;
    let inputs = lowered
        .layout
        .values(&db)
        .map_err(|e| harness(e.to_string()))?;
    let mut outcome = DatalogOutcome {
        word_gates: lowered.circuit.size() as usize,
        prov_nodes: pr.circuit.dag_size(&roots),
        ..DatalogOutcome::default()
    };
    for opts in matrix {
        let co = opts.compile_options();
        let (engine, _report) =
            CompiledCircuit::compile_with(&lowered.circuit, &co).map_err(|e| {
                Divergence::Engine {
                    options: *opts,
                    stage: "compile",
                    error: e.to_string(),
                }
            })?;
        let raw = engine.evaluate(&inputs).map_err(|e| Divergence::Engine {
            options: *opts,
            stage: "evaluate",
            error: e.to_string(),
        })?;
        for (schema, start, len) in &lowered.outputs {
            let got = decode_relation(schema, &raw[*start..*start + *len]);
            if got != want {
                return Err(Divergence::Output {
                    options: *opts,
                    got: digest(&got),
                    want: digest(&want),
                });
            }
        }
        outcome.configs += 1;
    }
    Ok(outcome)
}

/// Serializes `case` in the `.dlcase` corpus format;
/// [`parse_datalog_case`] inverts this.
///
/// ```text
/// qec-dlcase v1
/// seed 7
/// domain 4
/// rounds 4
/// program path(x, y) :- edge(x, y). path(x, z) :- path(x, y), edge(y, z).
/// rel edge 2
/// 0,1
/// 1,2
/// ```
pub fn format_datalog_case(case: &DatalogCase) -> String {
    let mut out = String::new();
    out.push_str("qec-dlcase v1\n");
    out.push_str(&format!("seed {}\n", case.seed));
    out.push_str(&format!("domain {}\n", case.domain));
    out.push_str(&format!("rounds {}\n", case.rounds));
    out.push_str(&format!("program {}\n", case.program));
    for (name, rows) in &case.rels {
        out.push_str(&format!("rel {} {}\n", name, rows.len()));
        for row in rows {
            let cells: Vec<String> = row.iter().map(u64::to_string).collect();
            out.push_str(&cells.join(","));
            out.push('\n');
        }
    }
    out
}

/// Parses the `.dlcase` corpus format; strictly error-returning, like
/// [`crate::corpus::parse_case`].
pub fn parse_datalog_case(text: &str) -> Result<DatalogCase, String> {
    let err = |line: usize, msg: String| format!("dlcase line {line}: {msg}");
    let mut lines = text
        .lines()
        .enumerate()
        .map(|(i, l)| (i + 1, l.trim()))
        .filter(|(_, l)| !l.is_empty() && !l.starts_with('#'));
    let mut next = |what: &str| {
        lines
            .next()
            .ok_or_else(|| format!("dlcase ended early, expected {what}"))
    };
    let field = |(ln, line): (usize, &str), key: &str| -> Result<String, String> {
        line.strip_prefix(key)
            .and_then(|r| r.strip_prefix(' '))
            .map(str::to_string)
            .ok_or_else(|| err(ln, format!("expected \"{key} ...\", found {line:?}")))
    };
    let parse_u64 = |ln: usize, what: &str, s: &str| -> Result<u64, String> {
        s.parse::<u64>()
            .map_err(|e| err(ln, format!("bad {what} {s:?}: {e}")))
    };

    let (ln, header) = next("header")?;
    if header != "qec-dlcase v1" {
        return Err(err(
            ln,
            format!("expected \"qec-dlcase v1\", found {header:?}"),
        ));
    }
    let at = next("seed")?;
    let seed = parse_u64(at.0, "seed", &field(at, "seed")?)?;
    let at = next("domain")?;
    let domain = parse_u64(at.0, "domain", &field(at, "domain")?)?;
    if domain == 0 || domain > 64 {
        return Err(err(
            at.0,
            format!("domain must be in 1..=64, found {domain}"),
        ));
    }
    let at = next("rounds")?;
    let rounds = parse_u64(at.0, "rounds", &field(at, "rounds")?)? as usize;
    if rounds > 64 {
        return Err(err(at.0, format!("implausible round count {rounds}")));
    }
    let at = next("program")?;
    let program = field(at, "program")?;

    let mut rels: Vec<(String, Vec<Vec<u64>>)> = Vec::new();
    while let Some((ln, line)) = lines.next() {
        let rest = line.strip_prefix("rel ").ok_or_else(|| {
            err(
                ln,
                format!("expected \"rel <name> <count>\", found {line:?}"),
            )
        })?;
        let mut toks = rest.split_whitespace();
        let name = toks
            .next()
            .ok_or_else(|| err(ln, "missing relation name".into()))?
            .to_string();
        let count_tok = toks
            .next()
            .ok_or_else(|| err(ln, "missing row count".into()))?;
        let count = parse_u64(ln, "row count", count_tok)? as usize;
        if count > 10_000 {
            return Err(err(ln, format!("implausible row count {count}")));
        }
        if rels.iter().any(|(n, _)| *n == name) {
            return Err(err(ln, format!("duplicate relation {name:?}")));
        }
        let mut rows = Vec::with_capacity(count);
        for _ in 0..count {
            let (rln, rline) = lines.next().ok_or_else(|| {
                err(
                    ln,
                    format!("relation {name} declares {count} rows, file ended early"),
                )
            })?;
            let row: Result<Vec<u64>, String> = rline
                .split(',')
                .map(|cell| parse_u64(rln, "cell", cell.trim()))
                .collect();
            rows.push(row?);
        }
        rels.push((name, rows));
    }
    Ok(DatalogCase {
        seed,
        domain,
        rounds,
        program,
        rels,
    })
}

/// Loads every `*.dlcase` file under `dir`, sorted by file name.
///
/// # Errors
/// Returns a description naming the offending file on IO or parse
/// failure.
pub fn load_datalog_corpus(dir: &Path) -> Result<Vec<(PathBuf, DatalogCase)>, String> {
    let mut paths: Vec<PathBuf> = std::fs::read_dir(dir)
        .map_err(|e| format!("cannot read {}: {e}", dir.display()))?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|ext| ext == "dlcase"))
        .collect();
    paths.sort();
    let mut out = Vec::with_capacity(paths.len());
    for path in paths {
        let text = std::fs::read_to_string(&path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        let case = parse_datalog_case(&text).map_err(|e| format!("{}: {e}", path.display()))?;
        out.push((path, case));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::differ::options_matrix;

    #[test]
    fn all_three_workloads_pass_the_matrix() {
        for seed in [0u64, 1, 2] {
            let case = gen_datalog_case(seed);
            let outcome = run_datalog_case(&case, &options_matrix(seed))
                .unwrap_or_else(|d| panic!("seed {seed} ({}): {d}", case.program));
            assert_eq!(outcome.configs, 8);
            assert!(outcome.word_gates > 0);
        }
    }

    #[test]
    fn dlcase_format_roundtrips() {
        let case = gen_datalog_case(5);
        let text = format_datalog_case(&case);
        let back = parse_datalog_case(&text).unwrap();
        assert_eq!(back, case);
    }

    #[test]
    fn malformed_dlcase_files_error_with_line_numbers() {
        let cases = [
            ("", "ended early"),
            ("qec-dlcase v2\n", "qec-dlcase v1"),
            ("qec-dlcase v1\nseed x\n", "bad seed"),
            ("qec-dlcase v1\nseed 1\ndomain 0\n", "domain must be"),
            (
                "qec-dlcase v1\nseed 1\ndomain 4\nrounds 4\nprogram p(x) :- e(x).\nrel e 2\n0\n",
                "ended early",
            ),
            (
                "qec-dlcase v1\nseed 1\ndomain 4\nrounds 4\nprogram p(x) :- e(x).\nrel e 1\nzz\n",
                "bad cell",
            ),
        ];
        for (text, needle) in cases {
            let e = parse_datalog_case(text).expect_err(text);
            assert!(e.contains(needle), "error {e:?} missing {needle:?}");
        }
    }

    #[test]
    fn a_broken_instance_is_a_harness_error_not_a_panic() {
        let mut case = gen_datalog_case(0);
        case.rels[0].1[0].push(9); // wrong arity
        let d = run_datalog_case(&case, &options_matrix(0)).unwrap_err();
        assert!(!d.is_real(), "setup failures are harness errors: {d}");
    }
}
