//! Seeded random workload generator.
//!
//! Emits small conjunctive queries with matching random instances. The
//! sampling ranges are deliberately tiny: the naive plan's intermediate
//! capacities grow like `n^{atoms}` and every case is compiled through
//! an 8-point engine-option matrix, so holding `n ≤ 3` and `atoms ≤ 3`
//! keeps a 2000-case CI sweep in the low minutes while still covering
//! cyclic/acyclic shapes, projections, Boolean queries, empty
//! relations, and dangling tuples.

use crate::case::{Case, EngineOptions};
use crate::rng::Rng;

const VAR_NAMES: [&str; 4] = ["a", "b", "c", "d"];

/// Generates the differential case for `seed`. Deterministic: the same
/// seed always yields byte-identical query text and rows.
pub fn gen_case(seed: u64) -> Case {
    let mut rng = Rng::new(seed);
    let num_vars = 2 + rng.below(3) as usize; // 2..=4 variables
    let num_atoms = if rng.chance(1, 4) { 3 } else { 2 }; // mostly 2 atoms

    // Every variable must occur in some atom (else the query is
    // malformed); start from a round-robin coverage assignment and pad
    // with random extras up to arity 3.
    let mut atoms: Vec<Vec<usize>> = vec![Vec::new(); num_atoms];
    for v in 0..num_vars {
        atoms[v % num_atoms].push(v);
    }
    for atom in &mut atoms {
        let target = 1 + rng.below(2) as usize; // aim for arity 1..=2
        while atom.len() < target {
            let v = rng.below(num_vars as u64) as usize;
            if !atom.contains(&v) {
                atom.push(v);
            } else if atom.len() >= num_vars {
                break;
            }
        }
        atom.sort_unstable();
    }

    // Free variables: each covered variable with probability 1/2. An
    // empty head is a Boolean query — a corner worth fuzzing — but keep
    // it rare so most cases exercise real output decoding.
    let mut free: Vec<usize> = (0..num_vars).filter(|_| rng.chance(1, 2)).collect();
    if free.is_empty() && rng.chance(3, 4) {
        free.push(rng.below(num_vars as u64) as usize);
    }

    let head = free
        .iter()
        .map(|&v| VAR_NAMES[v])
        .collect::<Vec<_>>()
        .join(", ");
    let body = atoms
        .iter()
        .enumerate()
        .map(|(i, vars)| {
            let args = vars
                .iter()
                .map(|&v| VAR_NAMES[v])
                .collect::<Vec<_>>()
                .join(", ");
            format!("R{i}({args})")
        })
        .collect::<Vec<_>>()
        .join(", ");
    let query = format!("Q({head}) :- {body}");

    // The parser renumbers variables (head first, then body order of
    // first occurrence), so sample rows *after* fixing the text; column
    // semantics are uniform-random either way.
    let n = 2 + rng.below(2); // capacity bound 2..=3
    let rels = atoms
        .iter()
        .enumerate()
        .map(|(i, vars)| {
            let arity = vars.len();
            let domain = 2 + rng.below(4); // value domain 2..=5
            let row_count = rng.below(n + 1);
            let rows = (0..row_count)
                .map(|_| (0..arity).map(|_| rng.below(domain)).collect())
                .collect();
            (format!("R{i}"), rows)
        })
        .collect();

    let options = EngineOptions {
        optimize: rng.chance(1, 2),
        threads: 1 + rng.below(4) as usize,
        traced: rng.chance(1, 4),
    };

    Case {
        seed,
        n,
        query,
        rels,
        options,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_cases_are_deterministic_and_materializable() {
        for seed in 0..200 {
            let a = gen_case(seed);
            let b = gen_case(seed);
            assert_eq!(a.query, b.query, "seed {seed}");
            assert_eq!(a.rels, b.rels, "seed {seed}");
            let (cq, db, dc) = a
                .materialize()
                .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            assert!(!cq.atoms.is_empty());
            for atom in &cq.atoms {
                assert!(db.get(&atom.name).is_some(), "seed {seed}");
                assert_eq!(dc.cardinality_of(atom.vars), Some(a.n), "seed {seed}");
            }
        }
    }

    #[test]
    fn generator_covers_the_interesting_corners() {
        let mut boolean = 0;
        let mut empty_rel = 0;
        let mut cyclic = 0;
        for seed in 0..500 {
            let c = gen_case(seed);
            let (cq, _, _) = c.materialize().unwrap();
            if cq.free.is_empty() {
                boolean += 1;
            }
            if c.rels.iter().any(|(_, rows)| rows.is_empty()) {
                empty_rel += 1;
            }
            if !cq.hypergraph().is_acyclic() {
                cyclic += 1;
            }
        }
        assert!(boolean > 0, "no Boolean queries sampled");
        assert!(empty_rel > 0, "no empty relations sampled");
        assert!(cyclic > 0, "no cyclic queries sampled");
    }
}
