//! Differential fuzz driver.
//!
//! ```text
//! fuzz [--seed S] [--cases N] [--bits-every K] [--datalog-every K] [--corpus-dir DIR]
//! ```
//!
//! Runs `N` seeded cases through the full engine-option matrix and
//! exits non-zero on the first divergence or validator failure, after
//! shrinking it and (when `--corpus-dir` is given) writing the minimal
//! replayable case there as `shrunk-<seed>.case`.

use qec_check::{fuzz_many, run_case, shrink_case, Case, Divergence};
use std::time::Instant;

struct Args {
    seed: u64,
    cases: usize,
    bits_every: usize,
    datalog_every: usize,
    corpus_dir: Option<std::path::PathBuf>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        seed: 0xC1C0,
        cases: 200,
        bits_every: 16,
        datalog_every: 16,
        corpus_dir: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} needs a value"));
        match flag.as_str() {
            "--seed" => args.seed = parse(&value("--seed")?)?,
            "--cases" => args.cases = parse(&value("--cases")?)? as usize,
            "--bits-every" => args.bits_every = parse(&value("--bits-every")?)? as usize,
            "--datalog-every" => args.datalog_every = parse(&value("--datalog-every")?)? as usize,
            "--corpus-dir" => args.corpus_dir = Some(value("--corpus-dir")?.into()),
            "--help" | "-h" => {
                println!(
                    "usage: fuzz [--seed S] [--cases N] [--bits-every K] \
                     [--datalog-every K] [--corpus-dir DIR]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok(args)
}

fn parse(s: &str) -> Result<u64, String> {
    s.parse().map_err(|e| format!("bad number {s:?}: {e}"))
}

/// The shrink oracle: the candidate still fails (for a real reason)
/// under its own single recorded configuration.
fn still_fails(c: &Case) -> bool {
    matches!(run_case(c, &[c.options], None, false, false), Err(d) if d.is_real())
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("fuzz: {e}");
            std::process::exit(2);
        }
    };

    let start = Instant::now();
    let summary = fuzz_many(args.seed, args.cases, args.bits_every, args.datalog_every);
    let elapsed = start.elapsed();
    let rate = summary.cases_passed as f64 / elapsed.as_secs_f64().max(1e-9);
    println!(
        "fuzz: seed={:#x} cases={} datalog={} configs={} word-gates={} elapsed={:.2}s rate={:.1} cases/s",
        args.seed,
        summary.cases_passed,
        summary.datalog_passed,
        summary.configs,
        summary.word_gates,
        elapsed.as_secs_f64(),
        rate
    );

    if let Some((dcase, d)) = summary.datalog_failure {
        // Datalog cases have no shrinker; the serialized case is small
        // enough to replay directly.
        eprintln!("fuzz: DATALOG DIVERGENCE on seed {}: {d}", dcase.seed);
        if let Some(dir) = &args.corpus_dir {
            if let Err(e) = std::fs::create_dir_all(dir) {
                eprintln!("fuzz: cannot create {}: {e}", dir.display());
            } else {
                let path = dir.join(format!("failed-{}.dlcase", dcase.seed));
                match std::fs::write(&path, qec_check::format_datalog_case(&dcase)) {
                    Ok(()) => eprintln!("fuzz: wrote {}", path.display()),
                    Err(e) => eprintln!("fuzz: cannot write {}: {e}", path.display()),
                }
            }
        }
        std::process::exit(1);
    }

    let Some((case, divergence)) = summary.failure else {
        println!("fuzz: 0 divergences");
        return;
    };

    eprintln!("fuzz: DIVERGENCE on seed {}: {divergence}", case.seed);
    let mut case = case;
    if let Some(opts) = divergence.options() {
        case.options = opts;
    }
    if matches!(divergence, Divergence::Harness(_)) {
        // A harness bug has no engine configuration to pin; report it
        // without shrinking (the shrink oracle only accepts real
        // divergences).
        eprintln!("fuzz: harness error, nothing to shrink");
        std::process::exit(1);
    }

    eprintln!("fuzz: shrinking...");
    let small = shrink_case(&case, &still_fails);
    let replay = run_case(&small, &[small.options], None, false, false);
    eprintln!(
        "fuzz: shrunk to query {:?}, {} rows total, n={}, options {:?}",
        small.query,
        small.rels.iter().map(|(_, r)| r.len()).sum::<usize>(),
        small.n,
        small.options
    );
    if let Err(d) = replay {
        eprintln!("fuzz: shrunk case still fails with: {d}");
    }

    if let Some(dir) = args.corpus_dir {
        if let Err(e) = std::fs::create_dir_all(&dir) {
            eprintln!("fuzz: cannot create {}: {e}", dir.display());
        } else {
            let path = dir.join(format!("shrunk-{}.case", small.seed));
            match std::fs::write(&path, qec_check::format_case(&small)) {
                Ok(()) => eprintln!("fuzz: wrote {}", path.display()),
                Err(e) => eprintln!("fuzz: cannot write {}: {e}", path.display()),
            }
        }
    }
    std::process::exit(1);
}
