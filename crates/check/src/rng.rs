//! Minimal deterministic PRNG (splitmix64).
//!
//! The harness must be reproducible from a single `u64` seed and the
//! crate is dependency-free, so we carry our own generator instead of
//! pulling in the `rand` shim. Splitmix64 passes BigCrush and is the
//! standard choice for seeding; its statistical quality is far beyond
//! what workload sampling needs.

/// Splitmix64 state.
#[derive(Clone, Debug)]
pub struct Rng(u64);

impl Rng {
    /// Creates a generator seeded with `seed`.
    pub fn new(seed: u64) -> Rng {
        Rng(seed)
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, n)`. The modulo bias is irrelevant at the
    /// tiny ranges the generator uses (`n` ≤ a few dozen).
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next_u64() % n
    }

    /// True with probability `num / den`.
    pub fn chance(&mut self, num: u64, den: u64) -> bool {
        self.below(den) < num
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_plausibly_uniform() {
        let a: Vec<u64> = {
            let mut r = Rng::new(7);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = Rng::new(7);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);

        let mut r = Rng::new(42);
        let mut counts = [0usize; 4];
        for _ in 0..4000 {
            counts[r.below(4) as usize] += 1;
        }
        for c in counts {
            assert!((800..1200).contains(&c), "skewed bucket: {counts:?}");
        }
    }
}
