//! Fuzzes the text front ends: `parse_cq` and `read_netlist` must
//! return errors on malformed input, never panic.

use qec_check::Rng;
use qec_circuit::{read_netlist, write_netlist};
use qec_query::{parse_cq, CqError};

/// Random byte soup, lossily decoded. Exercises the lexer's handling of
/// arbitrary garbage.
#[test]
fn parse_cq_survives_random_bytes() {
    let mut rng = Rng::new(0xB17E5);
    for _ in 0..1500 {
        let len = rng.below(64) as usize;
        let bytes: Vec<u8> = (0..len).map(|_| rng.next_u64() as u8).collect();
        let text = String::from_utf8_lossy(&bytes);
        let _ = parse_cq(&text);
    }
}

/// Random strings over the token alphabet — much likelier to get deep
/// into the parser than raw bytes.
#[test]
fn parse_cq_survives_token_soup() {
    const ALPHABET: &[&str] = &[
        "Q", "R", "a", "b", "c", "abc", "R0", "(", ")", ",", ":-", ".", " ", "\t", "\n", "1", "_",
        "é", ":", "-",
    ];
    let mut rng = Rng::new(0x50FA);
    for _ in 0..2000 {
        let len = rng.below(24) as usize;
        let text: String = (0..len)
            .map(|_| ALPHABET[rng.below(ALPHABET.len() as u64) as usize])
            .collect();
        let _ = parse_cq(&text);
    }
}

/// Mutations of valid queries: deletions, duplications, and swaps of
/// single bytes. These reach the error paths closest to accepting
/// states.
#[test]
fn parse_cq_survives_mutated_valid_queries() {
    const SEEDS: &[&str] = &[
        "Q(a, b, c) :- R(a, b), S(b, c), T(a, c).",
        "Q() :- R(a, b), S(b)",
        "Q(x) :- Edge(x, y), Edge(y, z), Edge(z, x)",
    ];
    let mut rng = Rng::new(0xD00D);
    for _ in 0..2000 {
        let base = SEEDS[rng.below(SEEDS.len() as u64) as usize]
            .as_bytes()
            .to_vec();
        let mut bytes = base.clone();
        for _ in 0..1 + rng.below(3) {
            if bytes.is_empty() {
                break;
            }
            let i = rng.below(bytes.len() as u64) as usize;
            match rng.below(3) {
                0 => {
                    bytes.remove(i);
                }
                1 => {
                    let b = bytes[i];
                    bytes.insert(i, b);
                }
                _ => bytes[i] = base[rng.below(base.len() as u64) as usize],
            }
        }
        let text = String::from_utf8_lossy(&bytes);
        let _ = parse_cq(&text);
    }
}

#[test]
fn duplicate_head_variables_are_a_typed_error() {
    let err = parse_cq("Q(a, a) :- R(a, b)").unwrap_err();
    match err {
        CqError::Parse(msg) => assert!(
            msg.contains("repeated head variable a"),
            "unexpected message: {msg}"
        ),
        other => panic!("expected CqError::Parse, got {other:?}"),
    }
}

/// Netlist reader under the same treatment: mutate a real serialized
/// circuit and demand graceful rejection.
#[test]
fn read_netlist_survives_mutated_netlists() {
    let case = qec_check::gen_case(3);
    let (cq, _db, dc) = case.materialize().unwrap();
    let (rc, _) = qec_core::naive_circuit(&cq, &dc).unwrap();
    let lowered = rc.lower_with(
        qec_circuit::Mode::Build,
        &qec_circuit::CompileOptions::sequential(),
    );
    let base = write_netlist(&lowered.circuit);
    assert!(read_netlist(&base).is_ok());

    let mut rng = Rng::new(0x2E7);
    let bytes = base.as_bytes();
    for _ in 0..800 {
        let mut mutated = bytes.to_vec();
        for _ in 0..1 + rng.below(4) {
            let i = rng.below(mutated.len() as u64) as usize;
            match rng.below(3) {
                0 => {
                    mutated.remove(i);
                }
                1 => mutated[i] = rng.next_u64() as u8,
                _ => {
                    // truncate — exercises the "header declares more" path
                    mutated.truncate(i);
                }
            }
            if mutated.is_empty() {
                break;
            }
        }
        let text = String::from_utf8_lossy(&mutated);
        let _ = read_netlist(&text);
    }
}
