//! Acceptance check for the whole harness: an intentionally injected
//! miscompile (the test-only opcode-swap mutation hook) must be caught
//! by the differential layer, shrunk by the delta debugger, and the
//! shrunk case must replay from its corpus serialization.

use qec_check::{
    format_case, gen_case, options_matrix, parse_case, run_case, shrink_case, Case, Mutation,
};

fn fails_with(case: &Case, mutation: &Mutation) -> bool {
    matches!(run_case(case, &[case.options], Some(mutation), false, false), Err(d) if d.is_real())
}

#[test]
fn injected_miscompile_is_caught_shrunk_and_replayable() {
    // Scan a few workloads × mutation sites until the swapped opcode
    // actually changes observable output (some swaps are masked, e.g.
    // a gate whose operands are always equal).
    let mut found = None;
    'outer: for seed in 0..20u64 {
        let case = gen_case(seed);
        for index in 0..12 {
            let mutation = Mutation { index };
            match run_case(&case, &options_matrix(seed), Some(&mutation), false, false) {
                Err(d) if d.is_real() => {
                    found = Some((case, mutation, d));
                    break 'outer;
                }
                _ => {}
            }
        }
    }
    let (mut case, mutation, divergence) =
        found.expect("no mutation site diverged across 20 workloads x 12 sites");

    // Pin the failing engine configuration, as the fuzz driver does.
    if let Some(opts) = divergence.options() {
        case.options = opts;
    }
    assert!(fails_with(&case, &mutation), "pinned config must reproduce");

    // Shrink under the same mutation.
    let small = shrink_case(&case, &|c| fails_with(c, &mutation));
    assert!(fails_with(&small, &mutation), "shrunk case must reproduce");
    let rows = |c: &Case| c.rels.iter().map(|(_, r)| r.len()).sum::<usize>();
    assert!(
        rows(&small) <= rows(&case) && small.query.len() <= case.query.len(),
        "shrinking must not grow the case"
    );

    // Corpus round-trip: serialize, parse back, replay.
    let text = format_case(&small);
    let back =
        parse_case(&text).unwrap_or_else(|e| panic!("shrunk case does not parse: {e}\n{text}"));
    assert!(
        fails_with(&back, &mutation),
        "corpus round-trip lost the failure:\n{text}"
    );

    // And the same case without the mutation is clean — the divergence
    // really was the injected miscompile, not a latent engine bug.
    run_case(&back, &[back.options], None, false, false)
        .unwrap_or_else(|d| panic!("unmutated shrunk case diverges on its own: {d}"));
}
