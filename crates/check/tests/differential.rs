//! Differential smoke: a modest seeded sweep must come back clean.
//! CI's dedicated fuzz step runs the big sweep; this keeps `cargo test`
//! self-contained.

use qec_check::fuzz_many;

#[test]
fn seeded_sweep_has_zero_divergences() {
    let summary = fuzz_many(0x5EED, 40, 8, 10);
    if let Some((case, d)) = &summary.failure {
        panic!("divergence on seed {}: {d}\ncase: {case:?}", case.seed);
    }
    if let Some((dcase, d)) = &summary.datalog_failure {
        panic!(
            "datalog divergence on seed {}: {d}\ncase: {dcase:?}",
            dcase.seed
        );
    }
    assert_eq!(summary.cases_passed, 40);
    assert_eq!(summary.datalog_passed, 4);
    assert_eq!(summary.configs, 40 * 8 + 4 * 8);
}
