//! Property tests: on random bounded LPs the solver must return a feasible
//! primal point whose value matches the dual value (strong duality), and the
//! duals must have the sign dictated by the constraint relation.

use proptest::prelude::*;
use qec_bignum::{rat, Rat};
use qec_lp::{LpBuilder, LpOutcome, Relation};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn float_guided_and_exact_paths_agree(
        n in 1usize..5,
        objs in prop::collection::vec(-9i64..9, 1..5),
        rows in prop::collection::vec(
            (prop::collection::vec(-4i64..5, 1..5), -5i64..20, 0usize..3),
            0..6,
        ),
    ) {
        // mixed Le/Ge/Eq rows, possibly negative rhs
        let mut b = LpBuilder::maximize(n);
        for v in 0..n {
            b.obj(v, rat(objs[v % objs.len()], 1));
            b.constraint(vec![(v, rat(1, 1))], Relation::Le, rat(10, 1));
        }
        for (coeffs, rhs, rel_pick) in &rows {
            let sparse: Vec<(usize, Rat)> =
                coeffs.iter().enumerate().map(|(i, &c)| (i % n, rat(c, 1))).collect();
            let rel = match rel_pick {
                0 => Relation::Le,
                1 => Relation::Ge,
                _ => Relation::Eq,
            };
            b.constraint(sparse, rel, rat(*rhs, 1));
        }
        let lp = qec_lp::Lp {
            num_vars: n,
            sense: qec_lp::Sense::Maximize,
            objective: (0..n).map(|v| (v, rat(objs[v % objs.len()], 1))).collect(),
            constraints: {
                let mut cs = Vec::new();
                for v in 0..n {
                    cs.push(qec_lp::Constraint {
                        coeffs: vec![(v, rat(1, 1))],
                        rel: Relation::Le,
                        rhs: rat(10, 1),
                    });
                }
                for (coeffs, rhs, rel_pick) in &rows {
                    cs.push(qec_lp::Constraint {
                        coeffs: coeffs
                            .iter()
                            .enumerate()
                            .map(|(i, &c)| (i % n, rat(c, 1)))
                            .collect(),
                        rel: match rel_pick {
                            0 => Relation::Le,
                            1 => Relation::Ge,
                            _ => Relation::Eq,
                        },
                        rhs: rat(*rhs, 1),
                    });
                }
                cs
            },
        };
        let fast = lp.solve().unwrap();
        let exact = lp.solve_exact().unwrap();
        match (&fast, &exact) {
            (LpOutcome::Optimal(a), LpOutcome::Optimal(b)) => {
                // optimal value is unique; primal/dual points may differ
                prop_assert_eq!(&a.value, &b.value);
            }
            (LpOutcome::Infeasible, LpOutcome::Infeasible) => {}
            (LpOutcome::Unbounded, LpOutcome::Unbounded) => {}
            other => prop_assert!(false, "paths disagree: {other:?}"),
        }
    }

    #[test]
    fn random_box_lps_satisfy_duality(
        n in 1usize..5,
        objs in prop::collection::vec(-9i64..9, 1..5),
        rows in prop::collection::vec(
            (prop::collection::vec(-4i64..5, 1..5), 0i64..20),
            0..6,
        ),
    ) {
        let mut b = LpBuilder::maximize(n);
        for v in 0..n {
            b.obj(v, rat(objs[v % objs.len()], 1));
            // box: x_v <= 10 keeps everything bounded
            b.constraint(vec![(v, rat(1, 1))], Relation::Le, rat(10, 1));
        }
        let mut rhss = vec![rat(10, 1); n];
        for (coeffs, rhs) in &rows {
            let sparse: Vec<(usize, Rat)> =
                coeffs.iter().enumerate().map(|(i, &c)| (i % n, rat(c, 1))).collect();
            b.constraint(sparse, Relation::Le, rat(*rhs, 1));
            rhss.push(rat(*rhs, 1));
        }
        match b.solve().unwrap() {
            LpOutcome::Optimal(s) => {
                // primal feasibility: x >= 0 and every constraint holds
                for x in &s.primal {
                    prop_assert!(!x.is_negative());
                }
                for v in 0..n {
                    prop_assert!(s.primal[v] <= rat(10, 1));
                }
                for (k, (coeffs, rhs)) in rows.iter().enumerate() {
                    let mut lhs = Rat::zero();
                    for (i, &c) in coeffs.iter().enumerate() {
                        lhs = &lhs + &(&rat(c, 1) * &s.primal[i % n]);
                    }
                    prop_assert!(lhs <= rat(*rhs, 1), "row {k} violated");
                }
                // dual signs for a max problem with Le rows: y >= 0
                for y in &s.dual {
                    prop_assert!(!y.is_negative());
                }
                // strong duality
                let mut dv = Rat::zero();
                for (y, b) in s.dual.iter().zip(rhss.iter()) {
                    dv = &dv + &(y * b);
                }
                prop_assert_eq!(dv, s.value.clone());
                // primal value consistency
                let mut pv = Rat::zero();
                for v in 0..n {
                    pv = &pv + &(&rat(objs[v % objs.len()], 1) * &s.primal[v]);
                }
                prop_assert_eq!(pv, s.value);
            }
            LpOutcome::Infeasible => {
                // x = 0 is feasible iff all rhs >= 0, which holds here.
                prop_assert!(false, "box LP cannot be infeasible");
            }
            LpOutcome::Unbounded => {
                prop_assert!(false, "box LP cannot be unbounded");
            }
        }
    }
}
