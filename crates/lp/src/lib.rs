//! Exact linear programming over rationals.
//!
//! A dense two-phase simplex solver used for every optimization problem in
//! the planner: fractional edge covers (AGM bound), the degree-aware
//! polymatroid bound `LOGDAPB` (Sec. 3.2 of the paper), generalized
//! hypertree widths, and the step-weight LPs behind proof-sequence
//! construction. All arithmetic is exact ([`qec_bignum::Rat`]), so bound
//! comparisons and feasibility checks in the planner are decisions, not
//! approximations.
//!
//! The solver returns **dual values** for every constraint at optimality;
//! Theorem 1 of the paper (existence of a Shannon-flow inequality whose
//! degree-constraint coefficients sum to `LOGDAPB`) is *constructive* here
//! precisely because strong duality hands us the coefficient vector `δ`.
//!
//! Scale expectations: tens-to-hundreds of rows and up to a few thousand
//! columns, solved at query-compile time. Pivoting uses Dantzig's rule with
//! an automatic switch to Bland's rule (guaranteeing termination) once the
//! pivot count suggests degeneracy.

mod simplex;

pub use simplex::{Constraint, Lp, LpError, LpOutcome, Relation, Sense, Solution};

/// Builds an LP incrementally. See [`Lp`] for the solved form.
#[derive(Clone, Debug)]
pub struct LpBuilder {
    num_vars: usize,
    sense: Sense,
    objective: Vec<(usize, qec_bignum::Rat)>,
    constraints: Vec<Constraint>,
}

impl LpBuilder {
    /// Start a maximization problem over `num_vars` non-negative variables.
    pub fn maximize(num_vars: usize) -> Self {
        LpBuilder {
            num_vars,
            sense: Sense::Maximize,
            objective: Vec::new(),
            constraints: Vec::new(),
        }
    }

    /// Start a minimization problem over `num_vars` non-negative variables.
    pub fn minimize(num_vars: usize) -> Self {
        LpBuilder {
            num_vars,
            sense: Sense::Minimize,
            objective: Vec::new(),
            constraints: Vec::new(),
        }
    }

    /// Sets the objective coefficient of variable `var`.
    pub fn obj(&mut self, var: usize, coeff: qec_bignum::Rat) -> &mut Self {
        assert!(var < self.num_vars, "objective variable out of range");
        self.objective.push((var, coeff));
        self
    }

    /// Adds a constraint `Σ coeffs ⋈ rhs`; returns its row index (for dual
    /// lookup in [`Solution::dual`]).
    pub fn constraint(
        &mut self,
        coeffs: Vec<(usize, qec_bignum::Rat)>,
        rel: Relation,
        rhs: qec_bignum::Rat,
    ) -> usize {
        for &(v, _) in &coeffs {
            assert!(v < self.num_vars, "constraint variable out of range");
        }
        self.constraints.push(Constraint { coeffs, rel, rhs });
        self.constraints.len() - 1
    }

    /// Finalizes and solves the program.
    pub fn solve(&self) -> Result<LpOutcome, LpError> {
        self.lp().solve()
    }

    /// Finalizes and solves a program the caller knows to be feasible and
    /// bounded, returning the optimum directly; infeasible/unbounded
    /// outcomes surface as typed [`LpError`]s (see [`Lp::solve_optimal`]).
    pub fn solve_optimal(&self) -> Result<Solution, LpError> {
        self.lp().solve_optimal()
    }

    fn lp(&self) -> Lp {
        Lp {
            num_vars: self.num_vars,
            sense: self.sense,
            objective: self.objective.clone(),
            constraints: self.constraints.clone(),
        }
    }
}
