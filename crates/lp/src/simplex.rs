//! Dense two-phase tableau simplex with exact rational arithmetic.

use qec_bignum::Rat;

/// Optimization direction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Sense {
    /// Maximize the objective.
    Maximize,
    /// Minimize the objective.
    Minimize,
}

/// Constraint relation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Relation {
    /// `Σ a_j x_j ≤ b`
    Le,
    /// `Σ a_j x_j ≥ b`
    Ge,
    /// `Σ a_j x_j = b`
    Eq,
}

/// A single linear constraint in sparse form.
#[derive(Clone, Debug)]
pub struct Constraint {
    /// `(variable, coefficient)` pairs; repeated variables are summed.
    pub coeffs: Vec<(usize, Rat)>,
    /// Relation between the linear form and `rhs`.
    pub rel: Relation,
    /// Right-hand side.
    pub rhs: Rat,
}

/// A linear program over non-negative variables.
#[derive(Clone, Debug)]
pub struct Lp {
    /// Number of decision variables (all constrained `≥ 0`).
    pub num_vars: usize,
    /// Optimization direction.
    pub sense: Sense,
    /// Sparse objective `(variable, coefficient)`.
    pub objective: Vec<(usize, Rat)>,
    /// Constraint rows.
    pub constraints: Vec<Constraint>,
}

/// An optimal solution.
#[derive(Clone, Debug)]
pub struct Solution {
    /// Optimal objective value (in the stated sense).
    pub value: Rat,
    /// Optimal variable assignment.
    pub primal: Vec<Rat>,
    /// One dual multiplier per constraint, in insertion order, satisfying
    /// `Σ_i dual[i]·rhs[i] == value` (strong duality for the stated sense).
    pub dual: Vec<Rat>,
}

/// Result of solving an [`Lp`].
#[derive(Clone, Debug)]
pub enum LpOutcome {
    /// An optimum exists; see [`Solution`].
    Optimal(Solution),
    /// No feasible point.
    Infeasible,
    /// The objective is unbounded in the stated sense.
    Unbounded,
}

/// Solver failure (resource limits or an outcome the caller declared
/// impossible — never silent wrong answers).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LpError {
    /// Pivot limit exceeded (should not happen with Bland's rule; kept as a
    /// hard backstop).
    IterationLimit,
    /// [`Lp::solve_optimal`] was called but the program has no feasible
    /// point.
    Infeasible,
    /// [`Lp::solve_optimal`] was called but the objective is unbounded in
    /// the stated sense.
    Unbounded,
}

impl std::fmt::Display for LpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LpError::IterationLimit => write!(f, "simplex iteration limit exceeded"),
            LpError::Infeasible => write!(f, "expected an optimum, but the LP is infeasible"),
            LpError::Unbounded => write!(f, "expected an optimum, but the LP is unbounded"),
        }
    }
}

impl std::error::Error for LpError {}

struct Tableau {
    /// `rows × (num_cols)` coefficient matrix (basis-reduced).
    a: Vec<Vec<Rat>>,
    /// Right-hand side per row (kept `≥ 0`).
    rhs: Vec<Rat>,
    /// Basic column per row.
    basis: Vec<usize>,
    /// Reduced-cost row `r_j = c_j - z_j` for the current phase.
    reduced: Vec<Rat>,
    /// Current objective value for the current phase.
    value: Rat,
    /// Total number of columns.
    num_cols: usize,
    /// Columns `>= art_start` are artificial.
    art_start: usize,
}

impl Tableau {
    /// Recomputes the reduced-cost row `r = c - c_B B^{-1} A` and the value
    /// `c_B B^{-1} b` for phase costs `c`.
    fn price_out(&mut self, costs: &[Rat]) {
        self.reduced = costs.to_vec();
        self.value = Rat::zero();
        for (row, &b) in self.basis.iter().enumerate() {
            let cb = &costs[b];
            if cb.is_zero() {
                continue;
            }
            for j in 0..self.num_cols {
                if !self.a[row][j].is_zero() {
                    let delta = cb * &self.a[row][j];
                    self.reduced[j] = &self.reduced[j] - &delta;
                }
            }
            self.value = &self.value + &(cb * &self.rhs[row]);
        }
    }

    /// Pivots on `(row, col)`: `col` enters the basis, the old basic of
    /// `row` leaves.
    fn pivot(&mut self, row: usize, col: usize) {
        let pivot = self.a[row][col].clone();
        debug_assert!(!pivot.is_zero());
        let inv = pivot.recip();
        for j in 0..self.num_cols {
            if !self.a[row][j].is_zero() {
                self.a[row][j] = &self.a[row][j] * &inv;
            }
        }
        self.rhs[row] = &self.rhs[row] * &inv;
        for i in 0..self.a.len() {
            if i == row || self.a[i][col].is_zero() {
                continue;
            }
            let factor = self.a[i][col].clone();
            for j in 0..self.num_cols {
                if !self.a[row][j].is_zero() {
                    let delta = &factor * &self.a[row][j];
                    self.a[i][j] = &self.a[i][j] - &delta;
                }
            }
            let delta = &factor * &self.rhs[row];
            self.rhs[i] = &self.rhs[i] - &delta;
        }
        let rc = self.reduced[col].clone();
        if !rc.is_zero() {
            for j in 0..self.num_cols {
                if !self.a[row][j].is_zero() {
                    let delta = &rc * &self.a[row][j];
                    self.reduced[j] = &self.reduced[j] - &delta;
                }
            }
            self.value = &self.value + &(&rc * &self.rhs[row]);
        }
        self.basis[row] = col;
    }

    /// Runs simplex iterations for the current phase until optimal or
    /// unbounded. Columns for which `allowed` is false may not enter.
    ///
    /// Returns `Ok(true)` at optimality, `Ok(false)` if unbounded.
    fn optimize(&mut self, allowed: impl Fn(usize) -> bool) -> Result<bool, LpError> {
        // Dantzig's rule is fast in practice; Bland's rule guarantees
        // termination under degeneracy. Switch permanently once the pivot
        // count exceeds a generous threshold.
        let bland_after = 32 + 8 * (self.a.len() + self.num_cols);
        let hard_limit = 1000 + 200 * (self.a.len() + self.num_cols);
        for iter in 0..hard_limit {
            let bland = iter >= bland_after;
            let mut entering: Option<usize> = None;
            let mut best = Rat::zero();
            for j in 0..self.num_cols {
                if !allowed(j) || !self.reduced[j].is_positive() {
                    continue;
                }
                if bland {
                    entering = Some(j);
                    break;
                }
                if self.reduced[j] > best {
                    best = self.reduced[j].clone();
                    entering = Some(j);
                }
            }
            let Some(col) = entering else {
                return Ok(true);
            };
            // Min-ratio test; ties broken by smallest basic column index
            // (part of Bland's anti-cycling rule, harmless otherwise).
            let mut leave: Option<(usize, Rat)> = None;
            for i in 0..self.a.len() {
                if !self.a[i][col].is_positive() {
                    continue;
                }
                let ratio = &self.rhs[i] / &self.a[i][col];
                match &leave {
                    None => leave = Some((i, ratio)),
                    Some((li, lr)) => {
                        if ratio < *lr || (ratio == *lr && self.basis[i] < self.basis[*li]) {
                            leave = Some((i, ratio));
                        }
                    }
                }
            }
            let Some((row, _)) = leave else {
                return Ok(false);
            };
            self.pivot(row, col);
        }
        Err(LpError::IterationLimit)
    }
}

impl Lp {
    /// Solves the program: a float-guided fast path with exact
    /// verification, falling back to exact two-phase simplex pivoting.
    pub fn solve(&self) -> Result<LpOutcome, LpError> {
        self.solve_with(true)
    }

    /// Solves with exact pivoting only (no float guidance). Slower but
    /// useful for paranoia and for testing that both paths agree.
    pub fn solve_exact(&self) -> Result<LpOutcome, LpError> {
        self.solve_with(false)
    }

    /// Solves a program the caller knows to be feasible and bounded
    /// (e.g. a covering LP with non-empty rows), returning the optimal
    /// solution directly. An infeasible or unbounded outcome becomes a
    /// typed [`LpError`] instead of forcing every such call site to
    /// write its own `unreachable!` arm.
    pub fn solve_optimal(&self) -> Result<Solution, LpError> {
        match self.solve()? {
            LpOutcome::Optimal(s) => Ok(s),
            LpOutcome::Infeasible => Err(LpError::Infeasible),
            LpOutcome::Unbounded => Err(LpError::Unbounded),
        }
    }

    fn solve_with(&self, allow_f64: bool) -> Result<LpOutcome, LpError> {
        let m = self.constraints.len();
        let n = self.num_vars;

        // Objective in max form (dense).
        let mut obj = vec![Rat::zero(); n];
        for (v, c) in &self.objective {
            obj[*v] = &obj[*v] + c;
        }
        if self.sense == Sense::Minimize {
            for c in obj.iter_mut() {
                *c = -c.clone();
            }
        }

        // Normalize rows to rhs >= 0, then lay out columns:
        //   [0, n)            original variables
        //   [n, n + m)        one slack/surplus column per row (0 for Eq)
        //   [art_start, ...)  artificials for Ge/Eq rows
        #[derive(Clone, Copy)]
        struct RowMeta {
            flipped: bool,
            rel: Relation,
            slack_col: Option<usize>,
            art_col: Option<usize>,
        }
        let mut meta = Vec::with_capacity(m);
        let mut dense_rows: Vec<Vec<Rat>> = Vec::with_capacity(m);
        let mut rhs: Vec<Rat> = Vec::with_capacity(m);
        for c in &self.constraints {
            let mut row = vec![Rat::zero(); n];
            for (v, coeff) in &c.coeffs {
                row[*v] = &row[*v] + coeff;
            }
            let mut b = c.rhs.clone();
            let mut rel = c.rel;
            let flipped = b.is_negative();
            if flipped {
                for x in row.iter_mut() {
                    *x = -x.clone();
                }
                b = -b;
                rel = match rel {
                    Relation::Le => Relation::Ge,
                    Relation::Ge => Relation::Le,
                    Relation::Eq => Relation::Eq,
                };
            }
            meta.push(RowMeta {
                flipped,
                rel,
                slack_col: None,
                art_col: None,
            });
            dense_rows.push(row);
            rhs.push(b);
        }

        let mut next_col = n;
        for (i, mt) in meta.iter_mut().enumerate() {
            match mt.rel {
                Relation::Le | Relation::Ge => {
                    mt.slack_col = Some(next_col);
                    next_col += 1;
                }
                Relation::Eq => {}
            }
            let _ = i;
        }
        let art_start = next_col;
        for mt in meta.iter_mut() {
            let needs_art = matches!(mt.rel, Relation::Ge | Relation::Eq);
            if needs_art {
                mt.art_col = Some(next_col);
                next_col += 1;
            }
        }
        let num_cols = next_col;

        let mut a = vec![vec![Rat::zero(); num_cols]; m];
        let mut basis = vec![usize::MAX; m];
        for i in 0..m {
            a[i][..n].clone_from_slice(&dense_rows[i]);
            match meta[i].rel {
                Relation::Le => {
                    let s = meta[i].slack_col.expect("Le has slack");
                    a[i][s] = Rat::one();
                    basis[i] = s;
                }
                Relation::Ge => {
                    let s = meta[i].slack_col.expect("Ge has surplus");
                    a[i][s] = -Rat::one();
                    let t = meta[i].art_col.expect("Ge has artificial");
                    a[i][t] = Rat::one();
                    basis[i] = t;
                }
                Relation::Eq => {
                    let t = meta[i].art_col.expect("Eq has artificial");
                    a[i][t] = Rat::one();
                    basis[i] = t;
                }
            }
        }

        // Fast path: a floating-point simplex proposes an optimal basis;
        // the solution is then reconstructed and *verified* in exact
        // arithmetic (feasibility, optimality, artificial levels). Exact
        // pivoting — immune to degenerate stalling but slow on big
        // rationals — remains as the fallback, so results are always
        // exact regardless of which path ran.
        if allow_f64 {
            if let Some((value, primal_full, y)) =
                f64_guided(&a, &rhs, &obj, num_cols, art_start, n)
            {
                let mut dual = Vec::with_capacity(m);
                for (i, mt) in meta.iter().enumerate() {
                    let yi = y[i].clone();
                    let yi = if mt.flipped { -yi } else { yi };
                    dual.push(if self.sense == Sense::Minimize {
                        -yi
                    } else {
                        yi
                    });
                }
                let value = if self.sense == Sense::Minimize {
                    -value
                } else {
                    value
                };
                return Ok(LpOutcome::Optimal(Solution {
                    value,
                    primal: primal_full,
                    dual,
                }));
            }
        }

        let mut t = Tableau {
            a,
            rhs,
            basis,
            reduced: Vec::new(),
            value: Rat::zero(),
            num_cols,
            art_start,
        };

        // Phase 1: maximize -(sum of artificials).
        if art_start < num_cols {
            let mut costs = vec![Rat::zero(); num_cols];
            for c in costs.iter_mut().skip(art_start) {
                *c = -Rat::one();
            }
            t.price_out(&costs);
            let finished = t.optimize(|_| true)?;
            debug_assert!(finished, "phase 1 is bounded by construction");
            if t.value.is_negative() {
                return Ok(LpOutcome::Infeasible);
            }
            // Drive artificials out of the basis where possible; rows where
            // it is impossible are redundant and stay with a zero artificial.
            for row in 0..m {
                if t.basis[row] < art_start {
                    continue;
                }
                if let Some(col) = (0..art_start).find(|&j| !t.a[row][j].is_zero()) {
                    t.pivot(row, col);
                }
            }
        }

        // Phase 2: the real objective; artificial columns are barred.
        let mut costs = vec![Rat::zero(); num_cols];
        costs[..n].clone_from_slice(&obj);
        t.price_out(&costs);
        let art_start_local = t.art_start;
        let optimal = t.optimize(|j| j < art_start_local)?;
        if !optimal {
            return Ok(LpOutcome::Unbounded);
        }

        let mut primal = vec![Rat::zero(); n];
        for (row, &b) in t.basis.iter().enumerate() {
            if b < n {
                primal[b] = t.rhs[row].clone();
            }
        }

        // Duals from reduced costs of the unit columns introduced per row:
        //   Le slack  (+e_i, cost 0): r = -y_i
        //   Ge surplus (-e_i, cost 0): r = +y_i
        //   artificial (+e_i, cost 0 in phase 2): r = -y_i
        let mut dual = Vec::with_capacity(m);
        for mt in &meta {
            let y = match mt.rel {
                Relation::Le => -t.reduced[mt.slack_col.expect("slack")].clone(),
                Relation::Ge => t.reduced[mt.slack_col.expect("surplus")].clone(),
                Relation::Eq => -t.reduced[mt.art_col.expect("artificial")].clone(),
            };
            // Undo the row flip, then adjust for the stated sense.
            let y = if mt.flipped { -y } else { y };
            dual.push(if self.sense == Sense::Minimize { -y } else { y });
        }

        let value = if self.sense == Sense::Minimize {
            -t.value.clone()
        } else {
            t.value.clone()
        };
        Ok(LpOutcome::Optimal(Solution {
            value,
            primal,
            dual,
        }))
    }
}

/// Runs a floating-point two-phase simplex on the standardized system and,
/// if it terminates optimal, reconstructs the basic solution exactly and
/// verifies primal feasibility, artificial levels, and dual optimality.
/// Returns `(max-form value, primal over original vars, row duals y)` on
/// success; `None` means "fall back to exact pivoting" (also used for
/// claimed infeasible/unbounded outcomes, which the exact path re-derives
/// trustworthily).
#[allow(clippy::needless_range_loop)] // dense kernels index several arrays in lockstep
fn f64_guided(
    a: &[Vec<Rat>],
    rhs: &[Rat],
    obj: &[Rat],
    num_cols: usize,
    art_start: usize,
    n: usize,
) -> Option<(Rat, Vec<Rat>, Vec<Rat>)> {
    const EPS: f64 = 1e-9;
    let m = a.len();
    if m == 0 {
        // trivial: x = 0 is optimal iff no positive objective coefficient
        if obj.iter().any(|c| c.is_positive()) {
            return None; // unbounded; let the exact path report it
        }
        return Some((Rat::zero(), vec![Rat::zero(); n], Vec::new()));
    }

    // f64 copies.
    let fa: Vec<Vec<f64>> = a
        .iter()
        .map(|row| row.iter().map(Rat::to_f64).collect())
        .collect();
    let frhs: Vec<f64> = rhs.iter().map(Rat::to_f64).collect();
    let fobj: Vec<f64> = obj.iter().map(Rat::to_f64).collect();

    // Dense f64 tableau mirroring the exact one.
    let mut t = fa.clone();
    let mut b = frhs.clone();
    let mut basis: Vec<usize> = (0..m)
        .map(|i| {
            // initial basis: slack for Le rows, artificial otherwise —
            // recover it from the standardized matrix (the unit column)
            (n..num_cols)
                .find(|&j| {
                    fa[i][j] > 0.5
                        && fa
                            .iter()
                            .enumerate()
                            .all(|(k, r)| k == i || r[j].abs() < 0.5)
                })
                .expect("standardized rows carry a unit column")
        })
        .collect();

    let run_phase = |t: &mut Vec<Vec<f64>>,
                     b: &mut Vec<f64>,
                     basis: &mut Vec<usize>,
                     costs: &[f64],
                     allowed: &dyn Fn(usize) -> bool|
     -> Option<bool> {
        // price out
        let mut reduced: Vec<f64> = costs.to_vec();
        let mut _value = 0.0;
        for (row, &bi) in basis.iter().enumerate() {
            let cb = costs[bi];
            if cb != 0.0 {
                for j in 0..num_cols {
                    reduced[j] -= cb * t[row][j];
                }
                _value += cb * b[row];
            }
        }
        let limit = 1000 + 60 * (m + num_cols);
        for iter in 0..limit {
            let bland = iter > 200 + 4 * (m + num_cols);
            let mut entering = None;
            let mut best = EPS;
            for j in 0..num_cols {
                if !allowed(j) || reduced[j] <= EPS {
                    continue;
                }
                if bland {
                    entering = Some(j);
                    break;
                }
                if reduced[j] > best {
                    best = reduced[j];
                    entering = Some(j);
                }
            }
            let Some(col) = entering else {
                return Some(true);
            };
            let mut leave: Option<(usize, f64)> = None;
            for i in 0..m {
                if t[i][col] > EPS {
                    let ratio = b[i] / t[i][col];
                    if leave.as_ref().is_none_or(|&(_, lr)| ratio < lr - EPS)
                        || leave.as_ref().is_some_and(|&(li, lr)| {
                            (ratio - lr).abs() <= EPS && basis[i] < basis[li]
                        })
                    {
                        leave = Some((i, ratio));
                    }
                }
            }
            let Some((row, _)) = leave else {
                return Some(false);
            };
            // pivot
            let p = t[row][col];
            for j in 0..num_cols {
                t[row][j] /= p;
            }
            b[row] /= p;
            for i in 0..m {
                if i != row && t[i][col].abs() > 1e-12 {
                    let f = t[i][col];
                    for j in 0..num_cols {
                        t[i][j] -= f * t[row][j];
                    }
                    b[i] -= f * b[row];
                }
            }
            let rc = reduced[col];
            if rc.abs() > 1e-12 {
                for j in 0..num_cols {
                    reduced[j] -= rc * t[row][j];
                }
            }
            basis[row] = col;
        }
        None // iteration limit: bail to exact
    };

    // Phase 1.
    if art_start < num_cols {
        let mut costs = vec![0.0; num_cols];
        for c in costs.iter_mut().skip(art_start) {
            *c = -1.0;
        }
        run_phase(&mut t, &mut b, &mut basis, &costs, &|_| true)?;
        // infeasible if an artificial stays at a meaningfully positive level
        for (i, &bi) in basis.iter().enumerate() {
            if bi >= art_start && b[i] > 1e-7 {
                return None; // probably infeasible: let the exact path decide
            }
        }
    }
    // Phase 2.
    let mut costs = vec![0.0; num_cols];
    costs[..n].copy_from_slice(&fobj[..n]);
    let optimal = run_phase(&mut t, &mut b, &mut basis, &costs, &|j| j < art_start)?;
    if !optimal {
        return None; // claimed unbounded: exact path confirms
    }

    // ---- exact reconstruction from the proposed basis ----
    // B x_B = rhs  and  Bᵀ y = c_B, both solved in rationals.
    let bmat: Vec<Vec<Rat>> = (0..m)
        .map(|i| basis.iter().map(|&c| a[i][c].clone()).collect())
        .collect();
    let x_b = solve_linear(bmat.clone(), rhs.to_vec())?;
    // feasibility + artificial levels
    for (k, v) in x_b.iter().enumerate() {
        if v.is_negative() {
            return None;
        }
        if basis[k] >= art_start && !v.is_zero() {
            return None;
        }
    }
    let cost_of = |j: usize| -> Rat {
        if j < n {
            obj[j].clone()
        } else {
            Rat::zero()
        }
    };
    let c_b: Vec<Rat> = basis.iter().map(|&j| cost_of(j)).collect();
    let bt: Vec<Vec<Rat>> = (0..m)
        .map(|i| (0..m).map(|k| bmat[k][i].clone()).collect())
        .collect();
    let y = solve_linear(bt, c_b.clone())?;
    // dual optimality: reduced cost of every admissible column ≤ 0
    let in_basis: std::collections::HashSet<usize> = basis.iter().copied().collect();
    for j in 0..art_start {
        if in_basis.contains(&j) {
            continue;
        }
        let mut z = Rat::zero();
        for i in 0..m {
            if !a[i][j].is_zero() {
                z = &z + &(&y[i] * &a[i][j]);
            }
        }
        if cost_of(j) > z {
            return None; // not optimal: fall back
        }
    }
    // assemble
    let mut primal = vec![Rat::zero(); n];
    for (k, &j) in basis.iter().enumerate() {
        if j < n {
            primal[j] = x_b[k].clone();
        }
    }
    let mut value = Rat::zero();
    for (k, v) in x_b.iter().enumerate() {
        value = &value + &(&c_b[k] * v);
    }
    Some((value, primal, y))
}

/// Gaussian elimination with partial (first-nonzero) pivoting over exact
/// rationals; returns `None` for singular systems.
#[allow(clippy::needless_range_loop)] // Gaussian elimination over a square matrix
fn solve_linear(mut m: Vec<Vec<Rat>>, mut rhs: Vec<Rat>) -> Option<Vec<Rat>> {
    let n = m.len();
    for col in 0..n {
        let pivot_row = (col..n).find(|&r| !m[r][col].is_zero())?;
        m.swap(col, pivot_row);
        rhs.swap(col, pivot_row);
        let inv = m[col][col].recip();
        for j in col..n {
            if !m[col][j].is_zero() {
                m[col][j] = &m[col][j] * &inv;
            }
        }
        rhs[col] = &rhs[col] * &inv;
        for r in 0..n {
            if r != col && !m[r][col].is_zero() {
                let f = m[r][col].clone();
                for j in col..n {
                    if !m[col][j].is_zero() {
                        let d = &f * &m[col][j];
                        m[r][j] = &m[r][j] - &d;
                    }
                }
                let d = &f * &rhs[col];
                rhs[r] = &rhs[r] - &d;
            }
        }
    }
    Some(rhs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LpBuilder;
    use qec_bignum::rat;

    #[test]
    fn textbook_max() {
        // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18  => 36 at (2, 6).
        let mut b = LpBuilder::maximize(2);
        b.obj(0, rat(3, 1)).obj(1, rat(5, 1));
        b.constraint(vec![(0, rat(1, 1))], Relation::Le, rat(4, 1));
        b.constraint(vec![(1, rat(2, 1))], Relation::Le, rat(12, 1));
        b.constraint(
            vec![(0, rat(3, 1)), (1, rat(2, 1))],
            Relation::Le,
            rat(18, 1),
        );
        let s = b.solve_optimal().unwrap();
        assert_eq!(s.value, rat(36, 1));
        assert_eq!(s.primal, vec![rat(2, 1), rat(6, 1)]);
        // strong duality
        let dual_val = &(&s.dual[0] * &rat(4, 1))
            + &(&(&s.dual[1] * &rat(12, 1)) + &(&s.dual[2] * &rat(18, 1)));
        assert_eq!(dual_val, rat(36, 1));
    }

    #[test]
    fn textbook_min_with_ge() {
        // min 2x + 3y s.t. x + y >= 10, x >= 2  => 20 + ... at (10, 0): 20.
        let mut b = LpBuilder::minimize(2);
        b.obj(0, rat(2, 1)).obj(1, rat(3, 1));
        b.constraint(
            vec![(0, rat(1, 1)), (1, rat(1, 1))],
            Relation::Ge,
            rat(10, 1),
        );
        b.constraint(vec![(0, rat(1, 1))], Relation::Ge, rat(2, 1));
        let s = b.solve_optimal().unwrap();
        assert_eq!(s.value, rat(20, 1));
        assert_eq!(s.primal[0], rat(10, 1));
        // duality: y1*10 + y2*2 == 20
        let dv = &(&s.dual[0] * &rat(10, 1)) + &(&s.dual[1] * &rat(2, 1));
        assert_eq!(dv, rat(20, 1));
    }

    #[test]
    fn equality_constraints() {
        // max x + y s.t. x + 2y = 4, x - y = 1  => x = 2, y = 1, value 3.
        let mut b = LpBuilder::maximize(2);
        b.obj(0, rat(1, 1)).obj(1, rat(1, 1));
        b.constraint(
            vec![(0, rat(1, 1)), (1, rat(2, 1))],
            Relation::Eq,
            rat(4, 1),
        );
        b.constraint(
            vec![(0, rat(1, 1)), (1, rat(-1, 1))],
            Relation::Eq,
            rat(1, 1),
        );
        let s = b.solve_optimal().unwrap();
        assert_eq!(s.value, rat(3, 1));
        assert_eq!(s.primal, vec![rat(2, 1), rat(1, 1)]);
        let dv = &(&s.dual[0] * &rat(4, 1)) + &(&s.dual[1] * &rat(1, 1));
        assert_eq!(dv, rat(3, 1));
    }

    #[test]
    fn infeasible() {
        let mut b = LpBuilder::maximize(1);
        b.obj(0, rat(1, 1));
        b.constraint(vec![(0, rat(1, 1))], Relation::Le, rat(1, 1));
        b.constraint(vec![(0, rat(1, 1))], Relation::Ge, rat(2, 1));
        assert!(matches!(b.solve().unwrap(), LpOutcome::Infeasible));
        assert_eq!(b.solve_optimal().unwrap_err(), LpError::Infeasible);
    }

    #[test]
    fn unbounded() {
        let mut b = LpBuilder::maximize(2);
        b.obj(0, rat(1, 1));
        b.constraint(vec![(1, rat(1, 1))], Relation::Le, rat(5, 1));
        assert!(matches!(b.solve().unwrap(), LpOutcome::Unbounded));
        assert_eq!(b.solve_optimal().unwrap_err(), LpError::Unbounded);
    }

    #[test]
    fn negative_rhs_normalization() {
        // max -x s.t. -x <= -3  (i.e. x >= 3)  => x = 3, value -3.
        let mut b = LpBuilder::maximize(1);
        b.obj(0, rat(-1, 1));
        b.constraint(vec![(0, rat(-1, 1))], Relation::Le, rat(-3, 1));
        let s = b.solve_optimal().unwrap();
        assert_eq!(s.value, rat(-3, 1));
        assert_eq!(s.primal[0], rat(3, 1));
        let dv = &s.dual[0] * &rat(-3, 1);
        assert_eq!(dv, rat(-3, 1));
    }

    #[test]
    fn fractional_edge_cover_triangle() {
        // min u1+u2+u3 s.t. each vertex covered: AB+AC >= 1, AB+BC >= 1,
        // BC+AC >= 1  => 3/2 with u = (1/2, 1/2, 1/2).
        let mut b = LpBuilder::minimize(3);
        for v in 0..3 {
            b.obj(v, rat(1, 1));
        }
        b.constraint(
            vec![(0, rat(1, 1)), (1, rat(1, 1))],
            Relation::Ge,
            rat(1, 1),
        );
        b.constraint(
            vec![(0, rat(1, 1)), (2, rat(1, 1))],
            Relation::Ge,
            rat(1, 1),
        );
        b.constraint(
            vec![(1, rat(1, 1)), (2, rat(1, 1))],
            Relation::Ge,
            rat(1, 1),
        );
        let s = b.solve_optimal().unwrap();
        assert_eq!(s.value, rat(3, 2));
    }

    #[test]
    fn degenerate_lp_terminates() {
        // A classically degenerate instance (Beale-like); Bland fallback
        // must terminate with the right optimum.
        let mut b = LpBuilder::maximize(4);
        b.obj(0, rat(3, 4))
            .obj(1, rat(-150, 1))
            .obj(2, rat(1, 50))
            .obj(3, rat(-6, 1));
        b.constraint(
            vec![
                (0, rat(1, 4)),
                (1, rat(-60, 1)),
                (2, rat(-1, 25)),
                (3, rat(9, 1)),
            ],
            Relation::Le,
            rat(0, 1),
        );
        b.constraint(
            vec![
                (0, rat(1, 2)),
                (1, rat(-90, 1)),
                (2, rat(-1, 50)),
                (3, rat(3, 1)),
            ],
            Relation::Le,
            rat(0, 1),
        );
        b.constraint(vec![(2, rat(1, 1))], Relation::Le, rat(1, 1));
        let s = b.solve_optimal().unwrap();
        assert_eq!(s.value, rat(1, 20));
    }

    #[test]
    fn duplicate_variable_coefficients_are_summed() {
        // max x with x/2 + x/2 <= 3.
        let mut b = LpBuilder::maximize(1);
        b.obj(0, rat(1, 1));
        b.constraint(
            vec![(0, rat(1, 2)), (0, rat(1, 2))],
            Relation::Le,
            rat(3, 1),
        );
        let s = b.solve_optimal().unwrap();
        assert_eq!(s.value, rat(3, 1));
    }

    #[test]
    fn redundant_equality_rows() {
        // x + y = 2 stated twice; max x + 2y => (0,2) value 4.
        let mut b = LpBuilder::maximize(2);
        b.obj(0, rat(1, 1)).obj(1, rat(2, 1));
        b.constraint(
            vec![(0, rat(1, 1)), (1, rat(1, 1))],
            Relation::Eq,
            rat(2, 1),
        );
        b.constraint(
            vec![(0, rat(1, 1)), (1, rat(1, 1))],
            Relation::Eq,
            rat(2, 1),
        );
        let s = b.solve_optimal().unwrap();
        assert_eq!(s.value, rat(4, 1));
    }

    #[test]
    fn zero_variable_problem() {
        let b = LpBuilder::maximize(0);
        let s = b.solve_optimal().unwrap();
        assert_eq!(s.value, rat(0, 1));
    }
}
