//! Pipeline observability: hierarchical spans, named counters/gauges,
//! and two exporters (a versioned JSON metrics document and Chrome
//! `chrome://tracing` trace-event format), with zero dependencies.
//!
//! The compile pipeline (build → optimize → lower → tape → evaluate) is
//! instrumented against a [`Recorder`]: each stage opens a [`Span`]
//! (monotonic wall-clock timing, per-thread nesting) and flushes named
//! counters (gates emitted, gates folded/CSE'd/DCE'd, cons-table shard
//! hit rates, pool task/steal counts, per-worker busy time). A recorder
//! is either *enabled* — everything is kept under one mutex — or
//! *disabled*, in which case every call returns after one unsynchronized
//! field read. Disabled is the default ([`TRACE_ENV`] = `QEC_TRACE`
//! unset or `0`), so the untraced pipeline pays a branch per *stage*,
//! never per gate.
//!
//! Two sinks exist:
//!
//! * an explicit recorder handed around by the driver layer
//!   (`qec-circuit`'s `CompileOptions`), which owns the stage spans; and
//! * the process-global recorder ([`global`]/[`install`]), which the
//!   low-level layers (the `qec-par` pool, the builder's hash-cons
//!   tables) flush into, because threading a handle through every
//!   worker closure would put observability into hot signatures.
//!
//! With `QEC_TRACE=1` the driver layer defaults to the global recorder,
//! so both sinks are the same object and one export contains the whole
//! pipeline. A programmatically created recorder can opt into the same
//! unification via [`install`].

use std::borrow::Cow;
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

pub mod json;

/// Environment variable that enables the process-global recorder:
/// anything other than unset, empty, or `0` turns tracing on.
pub const TRACE_ENV: &str = "QEC_TRACE";

/// Version of the metrics-document schema emitted by
/// [`Recorder::metrics_json`] (and embedded by downstream artifacts such
/// as the bench harness's `BENCH_*.json`).
pub const METRICS_SCHEMA_VERSION: u32 = 1;

/// One closed (or still-open) span as stored by the recorder.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanRec {
    /// Span name, e.g. `"build"`, `"optimize"`, `"tape"`.
    pub name: Cow<'static, str>,
    /// Dense per-recorder thread index (0 = first thread seen).
    pub tid: u32,
    /// Index of the enclosing span on the same thread, if any.
    pub parent: Option<u32>,
    /// Nanoseconds since the recorder's epoch at span open.
    pub start_ns: u64,
    /// Span duration in nanoseconds (`0` while still open).
    pub dur_ns: u64,
}

/// A point-in-time copy of everything a recorder has collected.
#[derive(Clone, Debug, Default)]
pub struct Snapshot {
    /// All spans in open order.
    pub spans: Vec<SpanRec>,
    /// Counter/gauge values, sorted by name (a `BTreeMap`, so exporter
    /// key order is stable by construction).
    pub counters: BTreeMap<String, u64>,
}

impl Snapshot {
    /// Sum of the durations of all spans named `name`.
    pub fn span_total_ns(&self, name: &str) -> u64 {
        self.spans
            .iter()
            .filter(|s| s.name == name)
            .map(|s| s.dur_ns)
            .sum()
    }

    /// A counter's value (0 when never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }
}

#[derive(Default)]
struct State {
    spans: Vec<SpanRec>,
    counters: BTreeMap<String, u64>,
    /// OS thread id → dense tid, in first-seen order.
    threads: Vec<std::thread::ThreadId>,
    /// Per-dense-tid stack of open span indices (the nesting structure).
    stacks: Vec<Vec<u32>>,
}

impl State {
    fn tid(&mut self) -> u32 {
        let id = std::thread::current().id();
        if let Some(i) = self.threads.iter().position(|&t| t == id) {
            return i as u32;
        }
        self.threads.push(id);
        self.stacks.push(Vec::new());
        (self.threads.len() - 1) as u32
    }
}

struct Inner {
    /// Immutable after construction: the no-op fast path is one plain
    /// `bool` read, no atomics, no lock.
    enabled: bool,
    epoch: Instant,
    state: Mutex<State>,
}

/// A thread-safe span/counter recorder. Cheap to clone (an `Arc`); all
/// clones observe and feed the same store. A disabled recorder turns
/// every method into a near-free early return.
#[derive(Clone)]
pub struct Recorder {
    inner: Arc<Inner>,
}

impl std::fmt::Debug for Recorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Recorder")
            .field("enabled", &self.inner.enabled)
            .finish_non_exhaustive()
    }
}

impl Recorder {
    /// A recorder that is collecting (`enabled = true`) or permanently
    /// inert (`enabled = false`).
    pub fn new(enabled: bool) -> Recorder {
        Recorder {
            inner: Arc::new(Inner {
                enabled,
                epoch: Instant::now(),
                state: Mutex::new(State::default()),
            }),
        }
    }

    /// The always-inert recorder.
    pub fn disabled() -> Recorder {
        Recorder::new(false)
    }

    /// Enabled iff [`TRACE_ENV`] (`QEC_TRACE`) is set to something other
    /// than empty or `0`.
    pub fn from_env() -> Recorder {
        Recorder::new(env_wants_trace())
    }

    /// Whether this recorder collects anything at all.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.enabled
    }

    /// Opens a span; it closes (records its duration) when the returned
    /// guard drops. Spans opened while another span from this recorder
    /// is open **on the same thread** become its children.
    #[inline]
    pub fn span(&self, name: impl Into<Cow<'static, str>>) -> Span {
        if !self.inner.enabled {
            return Span { rec: None };
        }
        self.span_slow(name.into())
    }

    fn span_slow(&self, name: Cow<'static, str>) -> Span {
        let start_ns = self.inner.epoch.elapsed().as_nanos() as u64;
        let mut st = self.inner.state.lock().expect("recorder poisoned");
        let tid = st.tid();
        let parent = st.stacks[tid as usize].last().copied();
        let idx = st.spans.len() as u32;
        st.spans.push(SpanRec {
            name,
            tid,
            parent,
            start_ns,
            dur_ns: 0,
        });
        st.stacks[tid as usize].push(idx);
        Span {
            rec: Some((self.clone(), idx)),
        }
    }

    fn close_span(&self, idx: u32) {
        let end_ns = self.inner.epoch.elapsed().as_nanos() as u64;
        let mut st = self.inner.state.lock().expect("recorder poisoned");
        let tid = st.spans[idx as usize].tid as usize;
        let span = &mut st.spans[idx as usize];
        span.dur_ns = end_ns.saturating_sub(span.start_ns);
        // Guards normally drop in LIFO order; tolerate leaks by removing
        // the index wherever it sits on the stack.
        if let Some(pos) = st.stacks[tid].iter().rposition(|&i| i == idx) {
            st.stacks[tid].remove(pos);
        }
    }

    /// Records one already-timed span (used by pool workers, which
    /// measure their busy window without holding the recorder lock).
    pub fn record_span(&self, name: impl Into<Cow<'static, str>>, start: Instant, dur_ns: u64) {
        if !self.inner.enabled {
            return;
        }
        let start_ns = start.saturating_duration_since(self.inner.epoch).as_nanos() as u64;
        let mut st = self.inner.state.lock().expect("recorder poisoned");
        let tid = st.tid();
        let parent = st.stacks[tid as usize].last().copied();
        st.spans.push(SpanRec {
            name: name.into(),
            tid,
            parent,
            start_ns,
            dur_ns,
        });
    }

    /// Adds `delta` to the named counter.
    #[inline]
    pub fn add(&self, name: &str, delta: u64) {
        if !self.inner.enabled || delta == 0 {
            return;
        }
        let mut st = self.inner.state.lock().expect("recorder poisoned");
        *st.counters.entry(name.to_string()).or_insert(0) += delta;
    }

    /// Raises the named gauge to `value` if it is below it (peak-style
    /// gauges: peak live registers, widest level, …).
    #[inline]
    pub fn gauge_max(&self, name: &str, value: u64) {
        if !self.inner.enabled {
            return;
        }
        let mut st = self.inner.state.lock().expect("recorder poisoned");
        let g = st.counters.entry(name.to_string()).or_insert(0);
        *g = (*g).max(value);
    }

    /// Sets the named gauge to `value` unconditionally.
    #[inline]
    pub fn gauge_set(&self, name: &str, value: u64) {
        if !self.inner.enabled {
            return;
        }
        let mut st = self.inner.state.lock().expect("recorder poisoned");
        st.counters.insert(name.to_string(), value);
    }

    /// A counter's current value (0 when disabled or never touched).
    pub fn counter(&self, name: &str) -> u64 {
        if !self.inner.enabled {
            return 0;
        }
        let st = self.inner.state.lock().expect("recorder poisoned");
        st.counters.get(name).copied().unwrap_or(0)
    }

    /// Sum of the durations of all closed spans named `name`.
    pub fn span_total_ns(&self, name: &str) -> u64 {
        self.snapshot().span_total_ns(name)
    }

    /// Copies out everything collected so far.
    pub fn snapshot(&self) -> Snapshot {
        if !self.inner.enabled {
            return Snapshot::default();
        }
        let st = self.inner.state.lock().expect("recorder poisoned");
        Snapshot {
            spans: st.spans.clone(),
            counters: st.counters.clone(),
        }
    }

    /// The versioned JSON metrics document:
    ///
    /// ```json
    /// {"schema_version":1,
    ///  "counters":{"build.gates":123,...},
    ///  "spans":[{"name":"build","tid":0,"parent":null,
    ///            "start_ns":12,"dur_ns":3456},...]}
    /// ```
    ///
    /// Counter keys are sorted (the store is a `BTreeMap`) and spans are
    /// emitted in open order, so the document is deterministic up to the
    /// recorded values.
    pub fn metrics_json(&self) -> String {
        self.metrics_json_capped(usize::MAX)
    }

    /// [`metrics_json`] with a span budget: at most `max_spans` spans
    /// (kept in open order, so the leading pipeline spans survive) and,
    /// when anything was cut, a trailing `"spans_dropped":N` key. The
    /// key is omitted at zero so uncapped documents stay byte-identical
    /// to [`metrics_json`] output. Fuzzing sweeps record millions of
    /// pool spans; artifacts that get committed need this bound.
    pub fn metrics_json_capped(&self, max_spans: usize) -> String {
        let snap = self.snapshot();
        let kept = snap.spans.len().min(max_spans);
        let dropped = snap.spans.len() - kept;
        let mut out = String::with_capacity(256 + kept * 96);
        out.push_str(&format!(
            "{{\"schema_version\":{METRICS_SCHEMA_VERSION},\"counters\":{{"
        ));
        let mut first = true;
        for (k, v) in &snap.counters {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&json::escape(k));
            out.push(':');
            out.push_str(&v.to_string());
        }
        out.push_str("},\"spans\":[");
        for (i, s) in snap.spans.iter().take(kept).enumerate() {
            if i > 0 {
                out.push(',');
            }
            let parent = match s.parent {
                Some(p) => p.to_string(),
                None => "null".into(),
            };
            out.push_str(&format!(
                "{{\"name\":{},\"tid\":{},\"parent\":{},\"start_ns\":{},\"dur_ns\":{}}}",
                json::escape(&s.name),
                s.tid,
                parent,
                s.start_ns,
                s.dur_ns
            ));
        }
        out.push(']');
        if dropped > 0 {
            out.push_str(&format!(",\"spans_dropped\":{dropped}"));
        }
        out.push('}');
        out
    }

    /// The Chrome trace-event document (load it at `chrome://tracing`
    /// or <https://ui.perfetto.dev>): one `"X"` (complete) event per
    /// span with microsecond timestamps, plus one `"C"` (counter) event
    /// per counter so the totals show up in the same view.
    pub fn chrome_trace(&self) -> String {
        let snap = self.snapshot();
        let mut events: Vec<String> = Vec::with_capacity(snap.spans.len() + snap.counters.len());
        for s in &snap.spans {
            events.push(format!(
                "{{\"name\":{},\"cat\":\"qec\",\"ph\":\"X\",\"pid\":1,\"tid\":{},\"ts\":{:.3},\"dur\":{:.3}}}",
                json::escape(&s.name),
                s.tid,
                s.start_ns as f64 / 1e3,
                s.dur_ns as f64 / 1e3
            ));
        }
        let end_ts = snap
            .spans
            .iter()
            .map(|s| s.start_ns + s.dur_ns)
            .max()
            .unwrap_or(0) as f64
            / 1e3;
        for (k, v) in &snap.counters {
            events.push(format!(
                "{{\"name\":{},\"ph\":\"C\",\"pid\":1,\"tid\":0,\"ts\":{end_ts:.3},\"args\":{{\"value\":{v}}}}}",
                json::escape(k)
            ));
        }
        format!(
            "{{\"traceEvents\":[{}],\"displayTimeUnit\":\"ms\",\"otherData\":{{\"schema_version\":{METRICS_SCHEMA_VERSION}}}}}",
            events.join(",")
        )
    }
}

/// An RAII span guard from [`Recorder::span`]; records the span's
/// duration on drop. A guard from a disabled recorder is a no-op shell.
#[must_use = "a span measures the scope it lives in; bind it to a `_guard`"]
pub struct Span {
    rec: Option<(Recorder, u32)>,
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some((rec, idx)) = self.rec.take() {
            rec.close_span(idx);
        }
    }
}

fn env_wants_trace() -> bool {
    match std::env::var(TRACE_ENV) {
        Ok(v) => {
            let v = v.trim();
            !v.is_empty() && v != "0"
        }
        Err(_) => false,
    }
}

static GLOBAL: OnceLock<Mutex<Recorder>> = OnceLock::new();

fn global_slot() -> &'static Mutex<Recorder> {
    GLOBAL.get_or_init(|| Mutex::new(Recorder::from_env()))
}

/// The process-global recorder. Initialized from [`TRACE_ENV`] on first
/// touch (so `QEC_TRACE=1` traces every pipeline in the process without
/// code changes); replaceable with [`install`]. Low-level layers (the
/// worker pool, the builders' cons tables) flush here.
pub fn global() -> Recorder {
    global_slot()
        .lock()
        .expect("global recorder poisoned")
        .clone()
}

/// Replaces the process-global recorder, returning the previous one.
/// Lets a caller that created an enabled [`Recorder`] programmatically
/// (rather than via `QEC_TRACE`) route the low-level layers into it for
/// the duration of a measurement; restore the returned recorder after.
pub fn install(rec: Recorder) -> Recorder {
    std::mem::replace(
        &mut *global_slot().lock().expect("global recorder poisoned"),
        rec,
    )
}

/// Peak resident set size of this process in bytes (`VmHWM` from
/// `/proc/self/status`), or `None` off Linux / when procfs is
/// unreadable. The streaming lowering and the X20 bench use this to
/// report the bounded-memory window actually achieved; it is a
/// high-water mark, so it only ever grows within a process.
pub fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kb: u64 = rest.trim().trim_end_matches("kB").trim().parse().ok()?;
            return Some(kb * 1024);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_records_nothing() {
        let r = Recorder::disabled();
        {
            let _g = r.span("x");
            r.add("c", 5);
            r.gauge_max("g", 9);
        }
        assert!(!r.is_enabled());
        let snap = r.snapshot();
        assert!(snap.spans.is_empty());
        assert!(snap.counters.is_empty());
        assert_eq!(r.counter("c"), 0);
    }

    #[test]
    fn spans_nest_per_thread_and_time_monotonically() {
        let r = Recorder::new(true);
        {
            let _a = r.span("outer");
            {
                let _b = r.span("inner");
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
        }
        let snap = r.snapshot();
        assert_eq!(snap.spans.len(), 2);
        let outer = &snap.spans[0];
        let inner = &snap.spans[1];
        assert_eq!(outer.name, "outer");
        assert_eq!(outer.parent, None);
        assert_eq!(inner.parent, Some(0));
        assert!(inner.dur_ns > 0);
        assert!(outer.dur_ns >= inner.dur_ns);
        assert!(inner.start_ns >= outer.start_ns);
    }

    #[test]
    fn sibling_threads_get_distinct_tids_and_no_false_nesting() {
        let r = Recorder::new(true);
        let _root = r.span("root");
        std::thread::scope(|s| {
            for _ in 0..2 {
                let r = r.clone();
                s.spawn(move || {
                    let _w = r.span("worker");
                });
            }
        });
        let snap = r.snapshot();
        let workers: Vec<_> = snap.spans.iter().filter(|s| s.name == "worker").collect();
        assert_eq!(workers.len(), 2);
        for w in &workers {
            assert_ne!(w.tid, 0, "worker threads are not the root thread");
            assert_eq!(w.parent, None, "no cross-thread nesting");
        }
        assert_ne!(workers[0].tid, workers[1].tid);
    }

    #[test]
    fn counters_and_gauges_accumulate() {
        let r = Recorder::new(true);
        r.add("hits", 3);
        r.add("hits", 4);
        r.gauge_max("peak", 10);
        r.gauge_max("peak", 7);
        r.gauge_set("exact", 42);
        assert_eq!(r.counter("hits"), 7);
        assert_eq!(r.counter("peak"), 10);
        assert_eq!(r.counter("exact"), 42);
        assert_eq!(r.counter("absent"), 0);
    }

    #[test]
    fn metrics_json_roundtrips_through_the_parser() {
        let r = Recorder::new(true);
        r.add("a\"quoted\"", 1);
        r.add("z.last", 2);
        {
            let _g = r.span("stage");
        }
        let doc = r.metrics_json();
        let v = json::parse(&doc).expect("valid JSON");
        assert_eq!(
            v.get("schema_version").and_then(json::Value::as_f64),
            Some(METRICS_SCHEMA_VERSION as f64)
        );
        let counters = v.get("counters").expect("counters object");
        assert_eq!(
            counters.get("a\"quoted\"").and_then(json::Value::as_f64),
            Some(1.0)
        );
        let spans = v
            .get("spans")
            .and_then(json::Value::as_array)
            .expect("spans");
        assert_eq!(spans.len(), 1);
        assert_eq!(
            spans[0].get("name").and_then(json::Value::as_str),
            Some("stage")
        );
    }

    #[test]
    fn chrome_trace_roundtrips_through_the_parser() {
        let r = Recorder::new(true);
        {
            let _g = r.span("build");
        }
        r.add("gates", 12);
        let doc = r.chrome_trace();
        let v = json::parse(&doc).expect("valid JSON");
        let events = v
            .get("traceEvents")
            .and_then(json::Value::as_array)
            .expect("traceEvents");
        assert_eq!(events.len(), 2, "one X event + one C event");
        let x = &events[0];
        assert_eq!(x.get("ph").and_then(json::Value::as_str), Some("X"));
        assert_eq!(x.get("name").and_then(json::Value::as_str), Some("build"));
        assert!(x.get("ts").and_then(json::Value::as_f64).is_some());
        assert!(x.get("dur").and_then(json::Value::as_f64).is_some());
        let c = &events[1];
        assert_eq!(c.get("ph").and_then(json::Value::as_str), Some("C"));
    }

    #[test]
    fn record_span_attaches_preclosed_spans() {
        let r = Recorder::new(true);
        let t0 = Instant::now();
        r.record_span("pool.worker", t0, 1234);
        let snap = r.snapshot();
        assert_eq!(snap.spans.len(), 1);
        assert_eq!(snap.span_total_ns("pool.worker"), 1234);
    }

    #[test]
    fn install_swaps_the_global_recorder() {
        let mine = Recorder::new(true);
        let old = install(mine.clone());
        global().add("swapped", 1);
        assert_eq!(mine.counter("swapped"), 1);
        install(old);
    }
}
