//! A minimal JSON reader/escaper, just enough to round-trip-validate the
//! exporter formats (and for downstream tests to pick fields out of
//! `BENCH_*.json` artifacts) without an external dependency.
//!
//! Numbers are parsed as `f64` — exact for every value the exporters
//! emit (counters fit in 2⁵³ in practice; timestamps are already
//! rounded to fixed decimals).

use std::collections::BTreeMap;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Value>),
    /// Object entries in source order (duplicate keys keep the last).
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Member lookup on an object (first match), `None` otherwise.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(m) => m.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Object keys in source order (empty for non-objects).
    pub fn keys(&self) -> Vec<&str> {
        match self {
            Value::Obj(m) => m.iter().map(|(k, _)| k.as_str()).collect(),
            _ => Vec::new(),
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(a) => Some(a),
            _ => None,
        }
    }

    /// Object view as a map (empty for non-objects).
    pub fn as_map(&self) -> BTreeMap<&str, &Value> {
        match self {
            Value::Obj(m) => m.iter().map(|(k, v)| (k.as_str(), v)).collect(),
            _ => BTreeMap::new(),
        }
    }
}

/// A parse failure: byte offset plus message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    pub offset: usize,
    pub message: &'static str,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parses a complete JSON document (trailing whitespace allowed,
/// trailing garbage rejected).
pub fn parse(text: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(v)
}

/// Escapes `s` as a JSON string literal (with quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &'static str) -> ParseError {
        ParseError {
            offset: self.pos,
            message,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8, message: &'static str) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(message))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{', "expected '{'")?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':', "expected ':' after object key")?;
            self.skip_ws();
            let val = self.value()?;
            members.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"', "expected '\"'")?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            if self.pos + 4 > self.bytes.len() {
                                return Err(self.err("short \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                                .map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogates are not emitted by our exporters;
                            // map unpaired ones to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => {
                    // consume one UTF-8 scalar
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid UTF-8"))?;
                    let c = s.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse("true").unwrap(), Value::Bool(true));
        assert_eq!(parse(" -12.5e2 ").unwrap(), Value::Num(-1250.0));
        assert_eq!(parse(r#""a\nb""#).unwrap(), Value::Str("a\nb".into()));
    }

    #[test]
    fn parses_nested_structures_and_preserves_key_order() {
        let v = parse(r#"{"b":[1,2,{"x":null}],"a":"s"}"#).unwrap();
        assert_eq!(v.keys(), vec!["b", "a"]);
        let arr = v.get("b").unwrap().as_array().unwrap();
        assert_eq!(arr[1], Value::Num(2.0));
        assert_eq!(arr[2].get("x"), Some(&Value::Null));
        assert_eq!(v.get("a").unwrap().as_str(), Some("s"));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "12x",
            "\"unterminated",
            "{} trailing",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn escape_roundtrips() {
        for s in [
            "plain",
            "with \"quotes\"",
            "tab\there\nnewline",
            "bs\\slash",
            "\u{1}ctl",
        ] {
            let lit = escape(s);
            assert_eq!(parse(&lit).unwrap(), Value::Str(s.to_string()), "{s:?}");
        }
    }

    #[test]
    fn unicode_escapes_decode() {
        assert_eq!(
            parse("\"\\u0041\\u00e9\"").unwrap(),
            Value::Str("Aé".into())
        );
    }
}
