//! Outsourced query processing (Sec. 1, Sec. 6 of the paper): a client
//! uploads encrypted data; the server evaluates circuits obliviously —
//! its access pattern cannot depend on the plaintext. Output-sensitive
//! circuits make this practical: first a small circuit computes
//! `OUT = |Q(D)|` (revealing only the result size, which is part of the
//! answer anyway); then a second circuit sized `Õ(N + 2^{da-fhtw} + OUT)`
//! computes the result — instead of paying the worst case every time.
//!
//! The demo runs a projective path query (find user→region pairs through
//! a bound intermediary) and a semiring aggregate (cheapest 3-hop route).
//!
//! ```text
//! cargo run --release --example outsourced_analytics
//! ```

use query_circuits::circuit::Mode;
use query_circuits::core::{naive_circuit, paper_cost, AggregateQuery, OutputSensitive, Semiring};
use query_circuits::query::{baseline::evaluate_pairwise, parse_cq};
use query_circuits::relation::{random_relation, Database, DcSet, DegreeConstraint, Relation, Var};

fn main() {
    // Q(user, region) :- Visits(user, page), Links(page, site), Hosted(site, region)
    // parser indices: user=0, region=1 (free), page=2, site=3 (bound)
    let q =
        parse_cq("Q(user, region) :- Visits(user, page), Links(page, site), Hosted(site, region)")
            .expect("well-formed");
    let n = 64u64;
    let dc = DcSet::from_vec(
        q.atoms
            .iter()
            .map(|a| DegreeConstraint::cardinality(a.vars, n))
            .collect(),
    );

    let mut db = Database::new();
    db.insert("Visits", random_relation(vec![Var(0), Var(2)], 60, 4));
    db.insert("Links", random_relation(vec![Var(2), Var(3)], 60, 6));
    db.insert("Hosted", random_relation(vec![Var(3), Var(1)], 60, 5));

    // Family 1: compute OUT (this is the only thing revealed beyond the
    // encrypted result).
    let os = OutputSensitive::build(&q, &dc, 5_000).expect("free-connex GHD exists");
    println!("da-fhtw  : {} (log₂ units)", os.width);
    let count_rc = os.count_circuit().expect("count circuit");
    let out = os.count_ram(&db).expect("count");
    println!(
        "family 1 : cost {} — computes OUT = {out}",
        paper_cost(&count_rc)
    );

    // Family 2: parameterized by OUT; far below the worst-case circuit.
    let query_rc = os.query_circuit(out).expect("query circuit");
    let (worst, _) = naive_circuit(&q, &dc).expect("naive");
    println!(
        "family 2 : cost {} at OUT={out} — worst-case circuit would cost {}",
        paper_cost(&query_rc),
        paper_cost(&worst)
    );

    // The server would evaluate the lowered oblivious circuit; we do both
    // and check.
    let lowered = query_rc.lower(Mode::Build);
    let result = &lowered.run(&db).expect("conforming")[0];
    let expected = evaluate_pairwise(&q, &db).expect("baseline");
    assert_eq!(*result, expected);
    println!(
        "result   : {} (user, region) pairs — oblivious circuit agrees with RAM",
        result.len()
    );

    // Bonus: a semiring aggregate on the same data — cheapest 3-hop route
    // where each edge carries a cost annotation (MinTropical: ⊕ = min,
    // ⊗ = +). Annotations live in an extra column of the stored relations.
    let annotate = |rel: &Relation, var: Var, salt: u64| -> Relation {
        let mut schema = rel.schema().to_vec();
        schema.push(var);
        let rows = rel
            .iter()
            .enumerate()
            .map(|(i, r)| {
                let mut t = r.clone();
                t.push(1 + ((i as u64 * 7 + salt) % 9));
                t
            })
            .collect();
        Relation::from_rows(schema, rows)
    };
    let mut adb = Database::new();
    adb.insert("Visits", annotate(db.get("Visits").unwrap(), Var(40), 1));
    adb.insert("Links", annotate(db.get("Links").unwrap(), Var(41), 3));
    adb.insert("Hosted", annotate(db.get("Hosted").unwrap(), Var(42), 2));

    let aq = AggregateQuery::new(
        &q,
        &dc,
        Semiring::MinTropical,
        vec![Some(Var(40)), Some(Var(41)), Some(Var(42))],
        5_000,
    )
    .expect("builds");
    // OUT for the aggregate comes from the counting family over the plain
    // relations (Sec. 6.4), not from peeking at the answer
    let out_bound = aq.output_bound_ram(&adb).expect("count");
    let rc = aq.circuit(out_bound.max(1)).expect("circuit");
    let got = rc.evaluate_ram(&adb).expect("evaluates");
    let reference = aq.reference(&adb).expect("reference");
    assert_eq!(got[0], reference);
    println!(
        "aggregate: cheapest-route costs computed for {} pairs over the MinTropical semiring",
        got[0].len()
    );
}
