//! Secure two-party query evaluation (Sec. 1 of the paper): two parties
//! hold private relations; they count triangles across their joint data
//! without revealing the relations to each other.
//!
//! Party 0 owns the follower graph `R(a,b)`; party 1 owns `S(b,c)` and
//! `T(a,c)`. The query circuit is public (it depends only on the query
//! and the agreed degree constraints), and it is evaluated gate-by-gate
//! under XOR secret sharing — GMW-style, with a trusted dealer for the
//! multiplication triples. Communication ∝ AND gates, rounds ∝ AND depth:
//! exactly the quantities the paper's circuit sizes control.
//!
//! ```text
//! cargo run --release --example secure_triangle
//! ```

use query_circuits::circuit::Mode;
use query_circuits::circuit::{lower_with, CompileOptions};
use query_circuits::core::compile_fcq;
use query_circuits::mpc::{evaluate_shared, share_bits, Dealer};
use query_circuits::query::{baseline::evaluate_pairwise, parse_cq};
use query_circuits::relation::{
    random_relation_with_domain, Database, DcSet, DegreeConstraint, Var,
};

fn main() {
    let q = parse_cq("Q(a, b, c) :- R(a, b), S(b, c), T(a, c)").expect("well-formed");
    let n = 10u64;
    let dc = DcSet::from_vec(
        q.atoms
            .iter()
            .map(|a| DegreeConstraint::cardinality(a.vars, n))
            .collect(),
    );

    // The public circuit: PANDA-C, lowered all the way to AND/XOR/NOT.
    let compiled = compile_fcq(&q, &dc).expect("compiles");
    let lowered = compiled.rc.lower(Mode::Build);
    let boolean = lower_with(&lowered.circuit, 16, &CompileOptions::from_env());
    println!(
        "public circuit: {} word gates → {} boolean gates ({} AND, AND-depth {})",
        lowered.circuit.size(),
        boolean.gate_count(),
        boolean.and_count(),
        boolean.and_depth()
    );

    // Private inputs (simulated): each party fills its relations' slots;
    // the joint input vector is secret-shared bit by bit.
    let mut db = Database::new();
    db.insert(
        "R",
        random_relation_with_domain(vec![Var(0), Var(1)], 9, 5, 7),
    ); // party 0
    db.insert(
        "S",
        random_relation_with_domain(vec![Var(1), Var(2)], 9, 5, 8),
    ); // party 1
    db.insert(
        "T",
        random_relation_with_domain(vec![Var(0), Var(2)], 9, 5, 9),
    ); // party 1
    let words = lowered.layout.values(&db).expect("conforming");
    let bits = boolean.pack_inputs(&words);
    let (share0, share1) = share_bits(&bits, 0xC0FFEE);

    // Offline phase: the dealer hands out Beaver triples; online phase:
    // the two parties evaluate, exchanging two masked bits per AND gate.
    let dealer = Dealer::new(boolean.and_count() as usize, 0xDEA1);
    let (output_bits, stats) =
        evaluate_shared(&boolean, &share0, &share1, dealer).expect("protocol");
    println!(
        "protocol: {} triples consumed, {} bits exchanged, {} free (XOR/NOT) gates",
        stats.and_gates, stats.messages_bits, stats.free_gates
    );

    // Reconstruct and verify against a plaintext RAM evaluation.
    let out_words = boolean.unpack_outputs(&output_bits);
    let (schema, start, len) = &lowered.outputs[0];
    let result = query_circuits::circuit::decode_relation(schema, &out_words[*start..start + len]);
    let expected = evaluate_pairwise(&q, &db).expect("baseline");
    assert_eq!(result, expected);
    println!(
        "secure result: {} triangles — matches the plaintext evaluation",
        result.len()
    );
}
