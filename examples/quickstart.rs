//! Quickstart: parse a conjunctive query, state degree constraints,
//! compile it with PANDA-C into an oblivious circuit, and evaluate it.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use query_circuits::circuit::Mode;
use query_circuits::core::{compile_fcq, paper_cost};
use query_circuits::query::{baseline::evaluate_pairwise, parse_cq};
use query_circuits::relation::{
    random_relation_with_domain, Database, DcSet, DegreeConstraint, Var,
};

fn main() {
    // 1. A query: the triangle, the paper's running example.
    let q = parse_cq("Q(a, b, c) :- R(a, b), S(b, c), T(a, c)").expect("well-formed query");
    println!("query     : {q}");

    // 2. Degree constraints — the only thing circuits may depend on
    //    besides the query itself (Sec. 4.3: bounded wires).
    let n = 64u64;
    let dc = DcSet::from_vec(
        q.atoms
            .iter()
            .map(|a| DegreeConstraint::cardinality(a.vars, n))
            .collect(),
    );

    // 3. Compile: polymatroid bound → proof sequence → PANDA-C.
    let compiled = compile_fcq(&q, &dc).expect("compiles");
    println!(
        "LOGDAPB   : {} (output ≤ 2^{} = N^1.5)",
        compiled.bound.log_value, compiled.bound.log_value
    );
    println!(
        "proof     : {} steps over order {:?}",
        compiled.proof.steps.len(),
        compiled
            .proof
            .order
            .iter()
            .map(|v| v.to_string())
            .collect::<Vec<_>>()
    );
    println!(
        "rel. circ : {} gates, {} parallel branches, paper cost {}",
        compiled.rc.nodes.len(),
        compiled.branches,
        paper_cost(&compiled.rc)
    );

    // 4. Lower to a word-level oblivious circuit. Its topology depends
    //    only on `dc` — the same circuit evaluates *any* conforming
    //    database.
    let lowered = compiled.rc.lower(Mode::Build);
    println!(
        "word circ : {} gates, depth {}",
        lowered.circuit.size(),
        lowered.circuit.depth()
    );

    // 5. Evaluate on a random instance and check against a RAM join.
    let mut db = Database::new();
    // a dense-ish domain so some triangles actually close
    db.insert(
        "R",
        random_relation_with_domain(vec![Var(0), Var(1)], 60, 12, 1),
    );
    db.insert(
        "S",
        random_relation_with_domain(vec![Var(1), Var(2)], 60, 12, 2),
    );
    db.insert(
        "T",
        random_relation_with_domain(vec![Var(0), Var(2)], 60, 12, 3),
    );

    let from_circuit = &lowered.run(&db).expect("conforming instance")[0];
    let from_ram = evaluate_pairwise(&q, &db).expect("baseline");
    assert_eq!(*from_circuit, from_ram);
    println!(
        "result    : {} triangles — circuit and RAM baseline agree",
        from_circuit.len()
    );
}
