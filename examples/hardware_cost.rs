//! Query evaluation by hardware (Sec. 1 of the paper): when a frequently
//! asked query is burned into an FPGA/ASIC, the circuit **size** is the
//! fabrication cost and power budget, and the **depth** is the query
//! latency. This example prints the budget sheet for the triangle query
//! at several capacity points, compares PANDA-C against the classical
//! construction, and shows Brent-scheduled latency on a fixed number of
//! parallel lanes.
//!
//! ```text
//! cargo run --release --example hardware_cost
//! ```

use query_circuits::circuit::{brent_steps, Mode};
use query_circuits::core::{compile_fcq, naive_circuit, paper_cost};
use query_circuits::query::triangle;
use query_circuits::relation::{DcSet, DegreeConstraint};

fn main() {
    let q = triangle();
    println!("budget sheet for {q}\n");
    println!(
        "{:>6} {:>12} {:>14} {:>9} {:>13} {:>9}",
        "N", "panda cost", "naive cost", "speedup", "panda gates", "depth"
    );
    for e in [4u32, 5, 6, 7] {
        let n = 1u64 << e;
        let dc = DcSet::from_vec(
            q.atoms
                .iter()
                .map(|a| DegreeConstraint::cardinality(a.vars, n))
                .collect(),
        );
        let p = compile_fcq(&q, &dc).expect("compiles");
        // gate counts scale with the Sec. 4.3 cost model times the same
        // polylog lowering factor for both designs, so the cost ratio is
        // the silicon ratio; the lowered count is shown for PANDA-C only
        // (lowering the naive N³ circuit at N=128 would need ~10^10 gates)
        let pc = paper_cost(&p.rc).to_f64();
        let (naive, _) = naive_circuit(&q, &dc).expect("naive");
        let nc = paper_cost(&naive).to_f64();
        let lowered = p.rc.lower(Mode::Count);
        println!(
            "{:>6} {:>12} {:>14} {:>8.1}x {:>13} {:>9}",
            n,
            pc,
            nc,
            nc / pc,
            lowered.circuit.size(),
            lowered.circuit.depth()
        );
    }

    // Latency on P parallel lanes (Brent's theorem, Sec. 1): W/P + D.
    let n = 1u64 << 6;
    let dc = DcSet::from_vec(
        q.atoms
            .iter()
            .map(|a| DegreeConstraint::cardinality(a.vars, n))
            .collect(),
    );
    let p = compile_fcq(&q, &dc).expect("compiles");
    let lowered = p.rc.lower(Mode::Count);
    let c = &lowered.circuit;
    println!(
        "\nlatency at N={n}: W = {} gates, D = {} levels",
        c.size(),
        c.depth()
    );
    println!("{:>8} {:>12} {:>14}", "lanes", "cycles", "vs W/P + D");
    for lanes in [1u64, 16, 256, 4096, 1 << 20] {
        let steps = brent_steps(c, lanes);
        let bound = c.size() / lanes + u64::from(c.depth());
        println!(
            "{:>8} {:>12} {:>13.2}x",
            lanes,
            steps,
            steps as f64 / bound as f64
        );
    }
    println!(
        "\ngoing wide pays until the depth floor: at ≥4096 lanes the query runs in ~D cycles."
    );
}
